//! Wire-protocol robustness: hostile or broken clients get typed errors and
//! never take the server down or poison other connections.

use std::io::Write;
use std::net::TcpStream;

use tofu_serve::client::{ClientError, PlanClient};
use tofu_serve::protocol::{read_frame, write_frame, ErrorCode, Response};
use tofu_serve::server::{PlanServer, ServeConfig};

fn small_server() -> PlanServer {
    PlanServer::bind(
        "127.0.0.1:0",
        ServeConfig { solver_threads: 1, queue_cap: 8, max_frame: 64 * 1024, ..Default::default() },
    )
    .expect("bind")
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = read_frame(stream, 1 << 20).expect("read frame").expect("response frame");
    Response::from_bytes(&payload).expect("parse response")
}

#[test]
fn oversized_length_prefix_gets_typed_error_then_close() {
    let server = small_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Advertise a 1 GiB payload; send nothing else.
    stream.write_all(&(1u32 << 30).to_be_bytes()).expect("write header");
    match read_response(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected oversized error, got {other:?}"),
    }
    // The connection is closed afterwards (stream cannot be resynced)…
    assert!(read_frame(&mut stream, 1 << 20).expect("clean close").is_none());
    // …but the server still serves new connections.
    PlanClient::connect(server.addr()).expect("reconnect").ping().expect("ping after abuse");
    server.shutdown();
}

#[test]
fn malformed_json_gets_typed_error_and_connection_survives() {
    let server = small_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, b"{this is not json").expect("send garbage");
    match read_response(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Same connection still answers ping: frame boundaries were preserved.
    write_frame(&mut stream, br#"{"type":"ping","id":9}"#).expect("send ping");
    match read_response(&mut stream) {
        Response::Pong { id } => assert_eq!(id, 9),
        other => panic!("expected pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_request_type_echoes_id() {
    let server = small_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, br#"{"type":"frobnicate","id":1234}"#).expect("send");
    match read_response(&mut stream) {
        Response::Error { id, code, message } => {
            assert_eq!(id, 1234, "error must echo the request id");
            assert_eq!(code, ErrorCode::UnknownType);
            assert!(message.contains("frobnicate"), "message was {message:?}");
        }
        other => panic!("expected unknown_type error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn truncated_frame_does_not_kill_the_server() {
    let server = small_server();
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Promise 100 bytes, deliver 3, hang up.
        stream.write_all(&100u32.to_be_bytes()).expect("header");
        stream.write_all(b"abc").expect("partial payload");
    } // dropped: connection dies mid-frame
    PlanClient::connect(server.addr()).expect("reconnect").ping().expect("server survived");
    server.shutdown();
}

#[test]
fn malformed_partition_request_is_bad_request() {
    let server = small_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Structurally valid JSON, but the graph references a tensor that does
    // not exist yet.
    let req = br#"{"type":"partition","id":7,"tenant":"t","workers":4,"graph":{"tensors":[{"io":"op","shape":[2,2],"node":{"op":"relu","name":"r","inputs":[5]}}]}}"#;
    write_frame(&mut stream, req).expect("send");
    match read_response(&mut stream) {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 7);
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Zero workers is also structural nonsense.
    write_frame(
        &mut stream,
        br#"{"type":"partition","id":8,"tenant":"t","workers":0,"graph":{"tensors":[]}}"#,
    )
    .expect("send");
    match read_response(&mut stream) {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 8);
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn client_surfaces_server_errors_typed() {
    let server = small_server();
    let mut client = PlanClient::connect(server.addr()).expect("connect");
    // A graph the registry rejects (matmul of mismatched shapes) travels as
    // a bad_request all the way into the typed client error.
    let mut g = tofu_graph::Graph::new();
    g.add_input("x", tofu_tensor::Shape::new(vec![3, 5]));
    let opts = tofu_core::recursive::PartitionOptions { workers: 3, ..Default::default() };
    // 3 workers over a 3×5 input with no ops: the search itself fails
    // (nothing to partition is fine, but odd shapes may be) — accept either
    // a served plan or a typed error; what must NOT happen is a transport
    // error or hang.
    match client.partition("t", &g, &opts, None) {
        Ok(_) | Err(ClientError::Server { .. }) => {}
        Err(other) => panic!("expected typed outcome, got {other}"),
    }
    client.ping().expect("connection still healthy");
    server.shutdown();
}
