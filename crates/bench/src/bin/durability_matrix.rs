//! Durability matrix sweep: crashes a whole process at early / mid / late
//! durable commits, corrupts its checkpoint files with every disk-fault
//! family, and restarts — alternating between the original and half the
//! worker count — recording write / validate / restore latencies and
//! whether recovery was bit-identical, written to `BENCH_durability.json`.
//!
//! Matrix:
//! - crash after the early / mid / late durable commit
//!   × {clean, torn-write, bit-flip, missing-shard, stale-manifest} on the
//!   checkpoint the process died at,
//! - plus two crashes *before* a commit (the shard files exist but the
//!   manifest — the commit point — never did).
//!
//! Gates (exit 1 on violation):
//! - every restart finishes bit-identical to an undisturbed run at the
//!   restart width resumed from the same snapshot,
//! - every injected corruption is detected with a typed rejection — never
//!   silently resumed from,
//! - clean rows reject nothing.

use std::collections::BTreeMap;
use std::sync::Arc;

use tofu_bench::{bench_report, feeds, write_report, Json};
use tofu_core::{PartitionOptions, SearchCaches};
use tofu_graph::TensorId;
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    resume_from_snapshot, run_with_durable_recovery, run_with_options, CheckpointPolicy,
    CrashPoint, DirStore, DiskFault, DurableOptions, DurableReport, FaultPlan, RunOptions,
};
use tofu_tensor::Tensor;

fn bit_identical(a: &BTreeMap<TensorId, Tensor>, b: &BTreeMap<TensorId, Tensor>) -> bool {
    a.len() == b.len()
        && a.iter().all(|(t, va)| {
            b.get(t).is_some_and(|vb| {
                va.data().iter().map(|x| x.to_bits()).eq(vb.data().iter().map(|x| x.to_bits()))
            })
        })
}

/// An undisturbed run at the restart width, resumed from the recovered
/// snapshot when there is one, from scratch otherwise.
fn baseline_values(
    report: &DurableReport,
    full_feeds: &[(TensorId, Tensor)],
) -> BTreeMap<TensorId, Tensor> {
    let clean = RunOptions::default();
    match &report.snapshot {
        Some(snap) => resume_from_snapshot(&report.sharded, &[], &clean, snap)
            .expect("baseline resume")
            .values,
        None => {
            let mut sf = Vec::new();
            for (t, v) in full_feeds {
                sf.extend(report.sharded.scatter(*t, v).expect("scatter"));
            }
            run_with_options(&report.sharded, &sf, &clean).expect("baseline run").values
        }
    }
}

struct Row {
    label: String,
    crash: String,
    fault: &'static str,
    restart_workers: usize,
    resumed_from: Option<usize>,
    rejected: Vec<String>,
    written: usize,
    written_bytes: u64,
    write_us: u128,
    validate_us: u128,
    restore_us: u128,
    restore_bytes: u64,
    recovered_exact: bool,
}

fn main() {
    let workers = 4usize;
    let model = mlp(&MlpConfig { batch: 16, dims: vec![64, 64], classes: 16, with_updates: true })
        .expect("mlp builds");
    let g = &model.graph;
    let full_feeds = feeds(g);
    let part = PartitionOptions { workers, ..Default::default() };
    let every = (g.num_nodes() / 4).max(1);
    let mut caches = SearchCaches::default();

    // A checkpoint the crash targets for early / mid / late; the cadence
    // above yields at least four barriers on this model.
    let fault_at = |k: usize| -> Vec<(&'static str, Option<DiskFault>)> {
        vec![
            ("clean", None),
            ("torn-write", Some(DiskFault::TornWrite { ckpt: k as u64, shard: 0, keep: 9 })),
            ("bit-flip", Some(DiskFault::BitFlip { ckpt: k as u64, shard: 0, bit: 123 })),
            ("missing-shard", Some(DiskFault::MissingShard { ckpt: k as u64, shard: 1 })),
            ("stale-manifest", Some(DiskFault::StaleManifest { ckpt: k as u64 })),
        ]
    };
    let mut cases: Vec<(String, CrashPoint, &'static str, Option<DiskFault>)> = Vec::new();
    for (tag, k) in [("early", 1usize), ("mid", 2), ("late", 3)] {
        for (fault_tag, fault) in fault_at(k) {
            cases.push((
                format!("crash after commit {k} ({tag}), {fault_tag}"),
                CrashPoint::AfterCommit(k),
                fault_tag,
                fault,
            ));
        }
    }
    for k in [1usize, 2] {
        cases.push((
            format!("crash before commit {k}, clean"),
            CrashPoint::BeforeCommit(k),
            "clean",
            None,
        ));
    }

    println!(
        "{:<42} {:>7} {:>7} {:>9} {:>11} {:>11} {:>11} {:>6}",
        "scenario", "restart", "resume", "rejected", "write µs", "validate µs", "restore µs",
        "exact"
    );
    println!("{}", "-".repeat(112));
    let root = std::env::temp_dir()
        .join(format!("tofu-durability-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut rows: Vec<Row> = Vec::new();
    for (i, (label, crash, fault_tag, fault)) in cases.into_iter().enumerate() {
        // Alternate the restart width: even rows restart at the original
        // width, odd rows reshard the checkpoint onto half the fleet.
        let restart = if i % 2 == 0 { workers } else { workers / 2 };
        let dir = root.join(format!("row-{i:02}"));
        let store = Arc::new(DirStore::open(&dir).expect("open DirStore"));
        let mut faults = FaultPlan::none();
        if let Some(f) = fault {
            faults = faults.with_disk(f);
        }
        let opts = RunOptions {
            faults,
            checkpoint: Some(CheckpointPolicy::every_original(every)),
            ..Default::default()
        };
        let durable = DurableOptions {
            crash: Some(crash),
            restart_workers: Some(restart),
            ..DurableOptions::new(store)
        };
        let report =
            run_with_durable_recovery(g, &full_feeds, &part, &opts, &durable, &mut caches)
                .unwrap_or_else(|e| panic!("{label}: durable run failed: {e}"));
        let recovered_exact =
            bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
        let row = Row {
            label,
            crash: format!("{crash:?}"),
            fault: fault_tag,
            restart_workers: restart,
            resumed_from: report.resumed_from,
            rejected: report.rejected.iter().map(|r| r.reason.to_string()).collect(),
            written: report.written,
            written_bytes: report.written_bytes,
            write_us: report.write_wall.as_micros(),
            validate_us: report.validate_wall.as_micros(),
            restore_us: report.restore_wall.as_micros(),
            restore_bytes: report.restore_bytes,
            recovered_exact,
        };
        println!(
            "{:<42} {:>7} {:>7} {:>9} {:>11} {:>11} {:>11} {:>6}",
            row.label,
            row.restart_workers,
            row.resumed_from.map(|k| k.to_string()).unwrap_or_else(|| "-".into()),
            row.rejected.len(),
            row.write_us,
            row.validate_us,
            row.restore_us,
            row.recovered_exact
        );
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&root);

    let results = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("scenario", Json::from(r.label.as_str())),
                ("crash", Json::from(r.crash.as_str())),
                ("fault", Json::from(r.fault)),
                ("restart_workers", Json::from(r.restart_workers)),
                (
                    "resumed_from",
                    r.resumed_from.map(Json::from).unwrap_or(Json::Null),
                ),
                (
                    "rejected",
                    Json::Arr(r.rejected.iter().map(|s| Json::from(s.as_str())).collect()),
                ),
                ("checkpoints_written", Json::from(r.written)),
                ("written_bytes", Json::from(r.written_bytes as f64)),
                ("write_us", Json::from(r.write_us as f64)),
                ("validate_us", Json::from(r.validate_us as f64)),
                ("restore_us", Json::from(r.restore_us as f64)),
                ("restore_bytes", Json::from(r.restore_bytes as f64)),
                ("recovered_exact", Json::Bool(r.recovered_exact)),
            ])
        })
        .collect();
    let doc = bench_report(
        "durability_matrix",
        vec![
            ("workers", Json::from(workers)),
            ("nodes", Json::from(g.num_nodes())),
            ("checkpoint_every", Json::from(every)),
        ],
        results,
    );
    write_report("BENCH_durability.json", &doc);

    let all_exact = rows.iter().all(|r| r.recovered_exact);
    let faults_detected = rows.iter().filter(|r| r.fault != "clean").all(|r| !r.rejected.is_empty());
    let clean_quiet = rows.iter().filter(|r| r.fault == "clean").all(|r| r.rejected.is_empty());
    println!(
        "({} rows; all exact: {all_exact}, corruption detected: {faults_detected}, \
         clean rows quiet: {clean_quiet})",
        rows.len()
    );
    if !(all_exact && faults_detected && clean_quiet) {
        std::process::exit(1);
    }
}
