//! The `serve` binary: run a plan service, or demo it end to end.
//!
//! ```text
//! serve listen [--addr 127.0.0.1:7070] [--solvers N] [--queue-cap N]
//! serve demo
//! ```
//!
//! `listen` runs until killed. `demo` starts an ephemeral server on a free
//! port, partitions a small MLP through it twice (cold then cached) and
//! prints the stats document — a smoke test and a quickstart in one.

use tofu_core::recursive::PartitionOptions;
use tofu_graph::{autodiff, Attrs, Graph};
use tofu_serve::client::PlanClient;
use tofu_serve::server::{PlanServer, ServeConfig};
use tofu_tensor::Shape;

fn usage() -> ! {
    eprintln!("usage: serve listen [--addr A] [--solvers N] [--queue-cap N]");
    eprintln!("       serve demo");
    std::process::exit(2);
}

fn demo_model() -> Graph {
    let mut g = Graph::new();
    let mut t = g.add_input("x", Shape::new(vec![64, 256]));
    let dims = [256usize, 256, 64];
    let mut weights = Vec::new();
    for (i, w) in dims.windows(2).enumerate() {
        let wt = g.add_weight(&format!("w{i}"), Shape::new(vec![w[0], w[1]]));
        weights.push(wt);
        t = g.add_op("matmul", &format!("fc{i}"), &[t, wt], Attrs::new()).expect("matmul");
        t = g.add_op("relu", &format!("act{i}"), &[t], Attrs::new()).expect("relu");
    }
    let labels = g.add_input("labels", Shape::new(vec![64]));
    let loss = g.add_op("softmax_ce", "loss", &[t, labels], Attrs::new()).expect("loss");
    let info = autodiff::backward(&mut g, loss, &weights).expect("autodiff");
    for (i, &w) in weights.iter().enumerate() {
        let gw = info.grad(w).expect("grad");
        g.add_op("sgd_update", &format!("upd{i}"), &[w, gw], Attrs::new()).expect("sgd");
    }
    g
}

fn run_demo() {
    let server =
        PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind demo server");
    let addr = server.addr();
    println!("demo server on {addr}");

    let mut client = PlanClient::connect(addr).expect("connect");
    client.ping().expect("ping");

    let g = demo_model();
    let opts = PartitionOptions { workers: 8, ..Default::default() };

    let cold = client.partition("demo-tenant", &g, &opts, None).expect("cold partition");
    println!("cold:   cached={} fingerprint={}", cold.cached, cold.fingerprint);
    let warm = client.partition("demo-tenant", &g, &opts, None).expect("warm partition");
    println!("warm:   cached={} fingerprint={}", warm.cached, warm.fingerprint);
    assert!(!cold.cached && warm.cached, "second identical request must hit the cache");
    assert_eq!(
        cold.plan.to_json(),
        warm.plan.to_json(),
        "cached plan must be byte-identical"
    );

    let stats = client.stats().expect("stats");
    println!("stats:  {}", stats.to_json_pretty());
    server.shutdown();
}

fn run_listen(args: &[String]) {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            }).clone()
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--solvers" => {
                cfg.solver_threads = value("--solvers").parse().unwrap_or_else(|_| usage())
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    let server = PlanServer::bind(addr.as_str(), cfg).expect("bind");
    println!("tofu plan service listening on {}", server.addr());
    // Run until killed.
    loop {
        std::thread::park();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => run_demo(),
        Some("listen") => run_listen(&args[1..]),
        _ => usage(),
    }
}
