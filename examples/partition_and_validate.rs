//! Transparency check (§2): the same training program, run on one device and
//! as a Tofu-partitioned 8-worker graph, computes identical losses and
//! gradients.
//!
//! Run with: `cargo run --release --example partition_and_validate`

use std::collections::BTreeMap;

use tofu::core::{generate, partition, GenOptions, PartitionOptions};
use tofu::graph::{Executor, TensorKind};
use tofu::models::{mlp, MlpConfig};
use tofu::tensor::Tensor;

fn main() {
    let model = mlp(&MlpConfig {
        batch: 32,
        dims: vec![64, 128, 128],
        classes: 16,
        with_updates: false,
    })
    .expect("model builds");
    let g = &model.graph;

    let plan = partition(g, &PartitionOptions { workers: 8, ..Default::default() })
        .expect("partition succeeds");
    let sharded = generate(g, &plan, &GenOptions::default()).expect("generation succeeds");
    println!(
        "original graph: {} nodes; 8-worker graph: {} nodes ({} of them remote fetches)",
        g.num_nodes(),
        sharded.graph.num_nodes(),
        sharded
            .graph
            .node_ids()
            .filter(|&n| sharded.graph.node(n).op == "multi_fetch")
            .count()
    );

    // Feed both executions identically: the sharded one gets each tensor
    // scattered into per-worker shards.
    let mut base = Executor::new();
    let mut part = Executor::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            Tensor::from_vec(meta.shape.clone(), (0..32).map(|i| (i % 16) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 7, 0.5)
        };
        base.feed(t, v.clone());
        for (shard, piece) in sharded.scatter(t, &v).expect("scatter") {
            part.feed(shard, piece);
        }
    }

    let base_vals = base.run(g).expect("single-device run");
    let part_vals: BTreeMap<_, _> = part.run(&sharded.graph).expect("partitioned run");

    // Compare the loss and every weight gradient.
    let mut checked = 0;
    for (fw, grad) in model
        .grads
        .iter()
        .copied()
        .chain(std::iter::once((model.loss, model.loss)))
    {
        let _ = fw;
        let expect = &base_vals[&grad];
        let got = sharded
            .gather(grad, expect.shape(), &part_vals)
            .expect("gather");
        assert!(
            got.allclose(expect, 1e-4),
            "divergence on {}",
            g.tensor(grad).name
        );
        checked += 1;
    }
    println!(
        "loss and {} weight gradients match across 1-device and 8-device execution",
        checked - 1
    );
    println!(
        "single-device loss = {:.6}, 8-worker loss = {:.6}",
        base_vals[&model.loss].data()[0],
        sharded
            .gather(model.loss, base_vals[&model.loss].shape(), &part_vals)
            .unwrap()
            .data()[0]
    );
}
