//! Runtime error type and the structured failure record of an aborted run.
//!
//! Every variant that can originate on a worker thread carries the worker id,
//! so a multi-worker failure is attributable from the `Display` output alone.
//! A run that aborts cooperatively returns [`RuntimeError::Failed`] wrapping a
//! [`RunFailure`]: the first-failing worker, the node it was executing, the
//! typed root cause, how fast every healthy peer observed the abort, and the
//! partial [`RunTrace`](crate::RunTrace) preserved for post-mortem analysis.

use std::fmt;
use std::time::Duration;

use tofu_core::CoreError;
use tofu_graph::{GraphError, NodeId};

use crate::trace::RunTrace;

/// Anything that can go wrong executing a sharded graph across workers.
#[derive(Debug)]
pub enum RuntimeError {
    /// A kernel or graph lookup failed on a worker.
    Exec {
        /// Worker the kernel ran on.
        worker: usize,
        /// The underlying graph/kernel error.
        source: GraphError,
    },
    /// Scatter/gather bookkeeping failed.
    Core(CoreError),
    /// A leaf shard owned by a worker was not fed.
    MissingFeed {
        /// Worker that owns the missing shard.
        worker: usize,
        /// Name of the unfed tensor.
        tensor: String,
    },
    /// A cross-worker transfer failed: peer died, stalled, or the link
    /// integrity checks (sequence number, checksum, expected piece) tripped.
    Comm {
        /// Worker that detected the violation.
        worker: usize,
        /// What exactly was violated.
        detail: String,
    },
    /// The planner-seeded buffer pool and the plan disagreed, or a configured
    /// byte budget was exceeded.
    Pool {
        /// Worker whose pool diverged.
        worker: usize,
        /// What diverged.
        detail: String,
    },
    /// A worker thread panicked; the payload message is preserved.
    WorkerPanic {
        /// Worker that panicked.
        worker: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A worker stopped because a *peer* tripped the shared abort token.
    Aborted {
        /// Worker that observed the abort.
        worker: usize,
        /// Worker that tripped the token.
        by: usize,
    },
    /// A fault injected by the configured [`FaultPlan`](crate::FaultPlan).
    Injected {
        /// Worker the fault was injected into.
        worker: usize,
        /// Which fault fired.
        detail: String,
    },
    /// A checkpoint snapshot contained a non-finite value; the checkpoint
    /// was *not* committed, so recovery can never resume from a numerically
    /// poisoned state.
    PoisonedCheckpoint {
        /// Worker whose snapshot held the poisoned tensor.
        worker: usize,
        /// Name of the node that produced the tensor (`None` for a leaf).
        node: Option<String>,
        /// Name of the poisoned tensor.
        tensor: String,
    },
    /// A checkpoint snapshot no longer hashes to the checksum recorded when
    /// its tensor was produced — some buffer aliased or scribbled over the
    /// live value after the fact. The checkpoint was *not* committed.
    CorruptSnapshot {
        /// Worker whose snapshot failed verification.
        worker: usize,
        /// Name of the tensor whose payload changed.
        tensor: String,
    },
    /// The durable checkpoint store failed (I/O error writing a shard or
    /// manifest, or reading one back during recovery).
    Durable {
        /// Worker whose commit hit the store failure (`usize::MAX` when the
        /// failure happened outside any worker, e.g. during discovery).
        worker: usize,
        /// The underlying store failure.
        detail: String,
    },
    /// Elastic recovery exhausted its `ElasticPolicy`: every attempted
    /// worker count failed and no further shrink is permitted.
    Unrecoverable {
        /// Physical devices classified as permanently lost, in loss order.
        lost: Vec<usize>,
        /// Worker counts attempted, ladder order (full width first).
        widths: Vec<usize>,
        /// Why the last width could not proceed.
        cause: Box<RuntimeError>,
    },
    /// `RunOptions` (or the sharded graph itself) failed up-front validation.
    InvalidOptions(String),
    /// The run aborted; the boxed record names the first failure and keeps
    /// the partial traces.
    Failed(Box<RunFailure>),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Exec { worker, source } => {
                write!(f, "worker {worker}: execution failed: {source}")
            }
            RuntimeError::Core(e) => write!(f, "partition bookkeeping failed: {e}"),
            RuntimeError::MissingFeed { worker, tensor } => {
                write!(f, "worker {worker}: leaf shard not fed: {tensor}")
            }
            RuntimeError::Comm { worker, detail } => {
                write!(f, "worker {worker}: cross-worker transfer failed: {detail}")
            }
            RuntimeError::Pool { worker, detail } => {
                write!(f, "worker {worker}: buffer pool diverged from plan: {detail}")
            }
            RuntimeError::WorkerPanic { worker, message } => {
                write!(f, "worker {worker}: panicked: {message}")
            }
            RuntimeError::Aborted { worker, by } => {
                write!(f, "worker {worker}: aborted (worker {by} failed first)")
            }
            RuntimeError::Injected { worker, detail } => {
                write!(f, "worker {worker}: injected fault: {detail}")
            }
            RuntimeError::PoisonedCheckpoint { worker, node, tensor } => {
                write!(f, "worker {worker}: checkpoint poisoned: tensor {tensor:?}")?;
                if let Some(n) = node {
                    write!(f, " (produced by node {n:?})")?;
                }
                write!(f, " contains a non-finite value")
            }
            RuntimeError::CorruptSnapshot { worker, tensor } => {
                write!(
                    f,
                    "worker {worker}: checkpoint integrity: tensor {tensor:?} no longer \
                     matches the checksum recorded when it was produced (aliased buffer?)"
                )
            }
            RuntimeError::Durable { worker, detail } => {
                if *worker == usize::MAX {
                    write!(f, "durable checkpoint store failed: {detail}")
                } else {
                    write!(f, "worker {worker}: durable checkpoint store failed: {detail}")
                }
            }
            RuntimeError::Unrecoverable { lost, widths, cause } => {
                // Render the whole ladder, not just the last attempt:
                // "unrecoverable after ladder 8 → 7 → 6 (lost devices 3, 5);
                //  terminal cause: ...".
                write!(f, "unrecoverable after ladder ")?;
                if widths.is_empty() {
                    write!(f, "(no worker count ran)")?;
                } else {
                    for (i, w) in widths.iter().enumerate() {
                        if i > 0 {
                            write!(f, " \u{2192} ")?;
                        }
                        write!(f, "{w}")?;
                    }
                    write!(f, " worker(s)")?;
                }
                if lost.is_empty() {
                    write!(f, " (no device lost)")?;
                } else {
                    write!(f, " (lost device")?;
                    if lost.len() > 1 {
                        write!(f, "s")?;
                    }
                    for (i, d) in lost.iter().enumerate() {
                        write!(f, "{} {d}", if i > 0 { "," } else { "" })?;
                    }
                    write!(f, ")")?;
                }
                write!(f, "; terminal cause: {cause}")
            }
            RuntimeError::InvalidOptions(m) => write!(f, "invalid run options: {m}"),
            RuntimeError::Failed(failure) => failure.fmt(f),
            RuntimeError::Internal(m) => write!(f, "internal runtime error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Exec { source, .. } => Some(source),
            RuntimeError::Core(e) => Some(e),
            RuntimeError::Failed(failure) => Some(&*failure.cause),
            RuntimeError::Unrecoverable { cause, .. } => Some(&**cause),
            _ => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

/// Post-mortem record of an aborted multi-worker run.
#[derive(Debug)]
pub struct RunFailure {
    /// The first worker that failed (tripped the shared abort token).
    pub worker: usize,
    /// The node that worker was executing when it failed, if any.
    pub node: Option<NodeId>,
    /// That node's position in the worker's serial schedule.
    pub pos: Option<usize>,
    /// The first failure's typed root cause (never `Aborted` or `Failed`).
    pub cause: Box<RuntimeError>,
    /// Per healthy worker: time from the token tripping to that worker
    /// observing it and stopping. Workers already finished do not appear.
    pub detection: Vec<(usize, Duration)>,
    /// Partial traces of every worker that got far enough to produce one
    /// (a panicking worker loses its trace to the unwind).
    pub trace: RunTrace,
}

impl RunFailure {
    /// The slowest abort observation among healthy workers, if any observed.
    pub fn max_detection(&self) -> Option<Duration> {
        self.detection.iter().map(|&(_, d)| d).max()
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run aborted: worker {} failed", self.worker)?;
        if let Some(n) = self.node {
            write!(f, " at node {}", n.0)?;
        }
        if let Some(p) = self.pos {
            write!(f, " (schedule step {p})")?;
        }
        write!(f, ": {}", self.cause)?;
        if let Some(d) = self.max_detection() {
            write!(f, "; {} peer(s) aborted within {d:?}", self.detection.len())?;
        }
        Ok(())
    }
}
