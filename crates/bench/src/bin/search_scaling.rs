//! Partition-search scaling bench: wall-clock and states-explored of the
//! optimized DP engine (strategy cache + dominance pruning + plan cache)
//! against the reference `unoptimized_search`, for an MLP and WResNet-50 at
//! 2/4/8 workers, written to `BENCH_search.json`.
//!
//! This is also a correctness gate: the process exits nonzero when the
//! optimized engine's total plan cost is not bit-identical to the
//! reference's, or when it explores at least as many states — the two
//! properties the optimization work is contractually required to hold
//! (see DESIGN.md "Search performance").

use std::time::Instant;

use tofu_bench::{bench_report, write_report, Json};
use tofu_core::recursive::{partition_cached, partition_with_obs, PartitionOptions};
use tofu_core::{SearchCaches, SearchTuning};
use tofu_graph::Graph;
use tofu_models::{mlp, wresnet, MlpConfig, WResNetConfig};
use tofu_obs::Collector;

const WORKERS: [usize; 3] = [2, 4, 8];

/// Repeated-hit samples for the warm-cache p50: enough to make the median
/// robust against scheduler noise, cheap because every call is a cache hit.
const WARM_HIT_SAMPLES: usize = 32;

struct Row {
    model: &'static str,
    workers: usize,
    ref_seconds: f64,
    opt_seconds: f64,
    warm_seconds: f64,
    warm_hit_p50: f64,
    ref_states: f64,
    opt_states: f64,
    prune_dominated: f64,
    prune_beam: f64,
    strategy_hits: f64,
    plan_hits_warm: f64,
    cost: f64,
    identical: bool,
}

fn total(c: &Collector, key: &str) -> f64 {
    c.totals().get(key).copied().unwrap_or(0.0)
}

fn measure(
    model: &'static str,
    g: &Graph,
    workers: usize,
    warm: &mut SearchCaches,
) -> Row {
    let reference_opts =
        PartitionOptions { workers, tuning: SearchTuning::reference(), ..Default::default() };
    let optimized_opts = PartitionOptions { workers, ..Default::default() };

    let ref_obs = Collector::new();
    let t0 = Instant::now();
    let ref_plan = partition_with_obs(g, &reference_opts, Some(&ref_obs)).expect("reference");
    let ref_seconds = t0.elapsed().as_secs_f64();

    let opt_obs = Collector::new();
    let t0 = Instant::now();
    let opt_plan = partition_with_obs(g, &optimized_opts, Some(&opt_obs)).expect("optimized");
    let opt_seconds = t0.elapsed().as_secs_f64();

    // Warm row: same query against a caches object shared across the whole
    // (model, workers) sweep — measures cross-call plan-cache reuse. The
    // first call may still solve unseen step fingerprints; the p50 below is
    // taken over repeated calls that are guaranteed plan-cache hits.
    let warm_obs = Collector::new();
    let t0 = Instant::now();
    let warm_plan =
        partition_cached(g, &optimized_opts, warm, Some(&warm_obs)).expect("warm optimized");
    let warm_seconds = t0.elapsed().as_secs_f64();

    let cost = ref_plan.total_comm_bytes();
    let mut hit_samples = Vec::with_capacity(WARM_HIT_SAMPLES);
    let mut hits_identical = true;
    for _ in 0..WARM_HIT_SAMPLES {
        let t0 = Instant::now();
        let hit_plan = partition_cached(g, &optimized_opts, warm, None).expect("warm hit");
        hit_samples.push(t0.elapsed().as_secs_f64());
        hits_identical &= hit_plan.total_comm_bytes().to_bits() == cost.to_bits();
    }
    hit_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let warm_hit_p50 = hit_samples[hit_samples.len() / 2];

    let identical = opt_plan.total_comm_bytes().to_bits() == cost.to_bits()
        && warm_plan.total_comm_bytes().to_bits() == cost.to_bits()
        && hits_identical;
    Row {
        model,
        workers,
        ref_seconds,
        opt_seconds,
        warm_seconds,
        warm_hit_p50,
        ref_states: total(&ref_obs, "dp/states_explored"),
        opt_states: total(&opt_obs, "dp/states_explored"),
        prune_dominated: total(&opt_obs, "dp/prune_dominated"),
        prune_beam: total(&opt_obs, "dp/prune_beam"),
        strategy_hits: total(&opt_obs, "cache/strategy_hit"),
        plan_hits_warm: total(&warm_obs, "cache/plan_hit"),
        cost,
        identical,
    }
}

fn main() {
    let mlp_model =
        mlp(&MlpConfig { batch: 64, dims: vec![256, 256], classes: 64, with_updates: true })
            .expect("mlp builds");
    let wres_model = wresnet(&WResNetConfig {
        layers: 50,
        width: 1,
        batch: 8,
        image: 16,
        classes: 8,
        with_updates: true,
    })
    .expect("wresnet builds");

    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    for (name, g) in [
        ("mlp-256x2 (batch 64)", &mlp_model.graph),
        ("wresnet-50-1 (batch 8)", &wres_model.graph),
    ] {
        // One warm cache per model: worker counts share 2-way step
        // fingerprints, which is exactly the reuse the plan cache targets.
        let mut warm = SearchCaches::new();
        println!("\n{name} — reference vs optimized search");
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>10} {:>8} {:>12} {:>12} {:>10} {:>6}",
            "workers", "ref s", "opt s", "warm s", "hit p50 µs", "speedup", "ref states", "opt states",
            "pruned", "ident"
        );
        println!("{}", "-".repeat(103));
        for workers in WORKERS {
            let r = measure(name, g, workers, &mut warm);
            println!(
                "{:<8} {:>9.3} {:>9.3} {:>9.3} {:>10.1} {:>7.2}x {:>12.0} {:>12.0} {:>10.0} {:>6}",
                r.workers,
                r.ref_seconds,
                r.opt_seconds,
                r.warm_seconds,
                r.warm_hit_p50 * 1e6,
                r.ref_seconds / r.opt_seconds.max(1e-12),
                r.ref_states,
                r.opt_states,
                r.prune_dominated + r.prune_beam,
                r.identical,
            );
            if !r.identical {
                eprintln!(
                    "FAIL: {name} w={workers}: optimized cost differs from reference ({})",
                    r.cost
                );
                failed = true;
            }
            // Tiny searches (the MLP) give pruning nothing to remove, so
            // equality is legitimate there; on any nontrivial search the
            // optimized engine must visit strictly fewer states.
            let strict = r.ref_states > 100_000.0;
            if r.opt_states > r.ref_states || (strict && r.opt_states >= r.ref_states) {
                eprintln!(
                    "FAIL: {name} w={workers}: optimized explored {} states, reference {}",
                    r.opt_states, r.ref_states
                );
                failed = true;
            }
            rows.push(r);
        }
    }

    let results = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("model", Json::from(r.model)),
                ("workers", Json::from(r.workers)),
                ("reference_seconds", Json::from(r.ref_seconds)),
                ("optimized_seconds", Json::from(r.opt_seconds)),
                ("warm_cache_seconds", Json::from(r.warm_seconds)),
                ("warm_hit_p50_seconds", Json::from(r.warm_hit_p50)),
                ("speedup", Json::from(r.ref_seconds / r.opt_seconds.max(1e-12))),
                ("reference_states_explored", Json::from(r.ref_states)),
                ("optimized_states_explored", Json::from(r.opt_states)),
                ("prune_dominated", Json::from(r.prune_dominated)),
                ("prune_beam", Json::from(r.prune_beam)),
                ("strategy_cache_hits", Json::from(r.strategy_hits)),
                ("warm_plan_cache_hits", Json::from(r.plan_hits_warm)),
                ("total_comm_bytes", Json::from(r.cost)),
                ("cost_identical", Json::Bool(r.identical)),
            ])
        })
        .collect();
    let doc = bench_report("search_scaling", Vec::new(), results);
    write_report("BENCH_search.json", &doc);

    if failed {
        eprintln!("search_scaling: optimized engine violated its contract (see FAIL lines)");
        std::process::exit(1);
    }
}
