//! Side-by-side comparison of a *measured* runtime trace with the
//! simulator's *predictions* for the same sharded graph.
//!
//! Two of the columns are exactly checkable and anchor the simulator's
//! fidelity claims:
//!
//! - **communication bytes** — both sides count the `multi_fetch` piece
//!   bytes, so measured traffic must equal the prediction bit for bit;
//! - **per-device memory** — the runtime's pool replays the same static
//!   planner the simulator consults, so the measured footprint must land
//!   within a whisker of `per_device_memory` (the tests pin 10%).
//!
//! Time columns (makespan vs. wall clock, busy seconds) are *not* expected
//! to agree in absolute terms: the simulator models K80s, the runtime runs
//! naive CPU kernels. They are reported side by side for shape comparison.

use std::time::Duration;

use tofu_core::ShardedGraph;
use tofu_runtime::RunTrace;

use crate::event::simulate_with_leaf_devices;
use crate::machine::Machine;
use crate::memory::per_device_memory;

/// One device's predicted-vs-measured row.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Logical device id.
    pub device: usize,
    /// `per_device_memory` peak (no optimizer copies — the runtime holds
    /// exactly what the plan models).
    pub predicted_memory_bytes: u64,
    /// Measured pool high-water plus resident leaf shards.
    pub measured_memory_bytes: u64,
    /// Simulated busy compute seconds (K80 cost model).
    pub predicted_busy_seconds: f64,
    /// Measured wall time spent inside ops (CPU kernels).
    pub measured_busy: Duration,
    /// Nodes executed.
    pub ops: usize,
    /// False when the worker stopped early (abort post-mortem trace); the
    /// measured columns then cover only the executed prefix.
    pub completed: bool,
}

impl DeviceReport {
    /// Relative error of the measured footprint against the prediction.
    pub fn memory_error(&self) -> f64 {
        if self.predicted_memory_bytes == 0 {
            return if self.measured_memory_bytes == 0 { 0.0 } else { f64::INFINITY };
        }
        let p = self.predicted_memory_bytes as f64;
        (self.measured_memory_bytes as f64 - p).abs() / p
    }
}

/// The full predicted-vs-measured report of one run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Simulated iteration time (seconds, K80 model).
    pub predicted_makespan_seconds: f64,
    /// Measured wall-clock time of the run.
    pub measured_wall: Duration,
    /// Simulated bytes moved between devices.
    pub predicted_comm_bytes: f64,
    /// Measured bytes moved over the channels.
    pub measured_comm_bytes: u64,
    /// Per-device rows, indexed by device.
    pub devices: Vec<DeviceReport>,
}

impl TraceReport {
    /// True when the measured trace is an abort post-mortem: some worker
    /// stopped early, so the exact-match columns (comm bytes, memory) only
    /// reflect the executed prefix and are not expected to line up.
    pub fn is_partial(&self) -> bool {
        self.devices.iter().any(|d| !d.completed)
    }

    /// True when measured traffic equals the simulator's count exactly.
    pub fn comm_bytes_match(&self) -> bool {
        self.predicted_comm_bytes == self.measured_comm_bytes as f64
    }

    /// True when every device's measured footprint is within `frac`
    /// (e.g. `0.10`) of the prediction.
    pub fn memory_within(&self, frac: f64) -> bool {
        self.devices.iter().all(|d| d.memory_error() <= frac)
    }

    /// A compact human-readable table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "makespan: simulated {:.3} ms (K80 model) | measured {:?} (CPU kernels)",
            self.predicted_makespan_seconds * 1e3,
            self.measured_wall
        );
        let _ = writeln!(
            s,
            "comm:     simulated {} B | measured {} B | {}",
            self.predicted_comm_bytes as u64,
            self.measured_comm_bytes,
            if self.comm_bytes_match() {
                "exact match"
            } else if self.is_partial() {
                "partial trace (not comparable)"
            } else {
                "MISMATCH"
            }
        );
        for d in &self.devices {
            let _ = writeln!(
                s,
                "device {}: memory predicted {} B, measured {} B ({:+.2}%) | busy sim {:.3} ms, measured {:?} | {} ops{}",
                d.device,
                d.predicted_memory_bytes,
                d.measured_memory_bytes,
                d.memory_error() * 1e2,
                d.predicted_busy_seconds * 1e3,
                d.measured_busy,
                d.ops,
                if d.completed { "" } else { " [ABORTED]" }
            );
        }
        s
    }
}

/// Builds the report: simulates `sharded` on `machine` and lines the
/// prediction up against the measured `trace` (produced by
/// `tofu_runtime::run` with the same `buffer_reuse` setting).
pub fn compare_trace(
    sharded: &ShardedGraph,
    machine: &Machine,
    trace: &RunTrace,
    buffer_reuse: bool,
) -> TraceReport {
    let sim = simulate_with_leaf_devices(
        &sharded.graph,
        &sharded.device_of_node,
        &sharded.device_of_tensor,
        machine,
        false,
    );
    let mems = per_device_memory(
        &sharded.graph,
        &sharded.device_of_node,
        sharded.workers,
        buffer_reuse,
        0.0,
    );
    let devices = trace
        .workers
        .iter()
        .map(|w| DeviceReport {
            device: w.device,
            predicted_memory_bytes: mems[w.device].peak_bytes,
            measured_memory_bytes: w.peak_memory_bytes(),
            predicted_busy_seconds: sim.compute_busy.get(w.device).copied().unwrap_or(0.0),
            measured_busy: w.busy,
            ops: w.ops.len(),
            completed: w.completed,
        })
        .collect();
    TraceReport {
        predicted_makespan_seconds: sim.makespan,
        measured_wall: trace.wall,
        predicted_comm_bytes: sim.comm_bytes,
        measured_comm_bytes: trace.comm_bytes(),
        devices,
    }
}
