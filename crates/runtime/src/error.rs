//! Runtime error type.

use std::fmt;

use tofu_core::CoreError;
use tofu_graph::GraphError;

/// Anything that can go wrong executing a sharded graph across workers.
#[derive(Debug)]
pub enum RuntimeError {
    /// A kernel or graph lookup failed on some worker.
    Exec(GraphError),
    /// Scatter/gather bookkeeping failed.
    Core(CoreError),
    /// A leaf shard owned by a worker was not fed.
    MissingFeed(String),
    /// A cross-worker transfer failed (peer died or stalled).
    Comm(String),
    /// The planner-seeded buffer pool and the plan disagreed.
    Pool(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Exec(e) => write!(f, "execution failed: {e}"),
            RuntimeError::Core(e) => write!(f, "partition bookkeeping failed: {e}"),
            RuntimeError::MissingFeed(t) => write!(f, "leaf shard not fed: {t}"),
            RuntimeError::Comm(m) => write!(f, "cross-worker transfer failed: {m}"),
            RuntimeError::Pool(m) => write!(f, "buffer pool diverged from plan: {m}"),
            RuntimeError::Internal(m) => write!(f, "internal runtime error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Exec(e) => Some(e),
            RuntimeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Exec(e)
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}
