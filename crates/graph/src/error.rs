//! Error type for graph construction, autodiff and execution.

use std::fmt;

/// Errors produced by the dataflow graph layer.
#[derive(Debug, Clone)]
pub enum GraphError {
    /// The operator name is not registered.
    UnknownOp(String),
    /// An input tensor id does not exist in the graph.
    UnknownTensor(usize),
    /// Shape inference failed for a node.
    ShapeInference {
        /// Node instance name.
        node: String,
        /// Operator name.
        op: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Autodiff could not differentiate the graph.
    Autodiff(String),
    /// The CPU executor failed.
    Exec(String),
    /// A TDL analysis error surfaced through the graph layer.
    Tdl(tofu_tdl::TdlError),
    /// A tensor kernel error surfaced through the executor.
    Tensor(tofu_tensor::TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownOp(op) => write!(f, "unknown operator {op:?}"),
            GraphError::UnknownTensor(t) => write!(f, "unknown tensor id {t}"),
            GraphError::ShapeInference { node, op, detail } => {
                write!(f, "shape inference failed for node {node:?} (op {op}): {detail}")
            }
            GraphError::Autodiff(msg) => write!(f, "autodiff: {msg}"),
            GraphError::Exec(msg) => write!(f, "execution: {msg}"),
            GraphError::Tdl(e) => write!(f, "tdl: {e}"),
            GraphError::Tensor(e) => write!(f, "tensor: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<tofu_tdl::TdlError> for GraphError {
    fn from(e: tofu_tdl::TdlError) -> Self {
        GraphError::Tdl(e)
    }
}

impl From<tofu_tensor::TensorError> for GraphError {
    fn from(e: tofu_tensor::TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::UnknownOp("frobnicate".into()).to_string().contains("frobnicate"));
        assert!(GraphError::UnknownTensor(7).to_string().contains('7'));
        let e = GraphError::ShapeInference {
            node: "fc1".into(),
            op: "matmul".into(),
            detail: "inner dims".into(),
        };
        assert!(e.to_string().contains("fc1"));
        assert!(GraphError::Autodiff("no grad".into()).to_string().contains("no grad"));
    }

    #[test]
    fn conversions() {
        let t: GraphError = tofu_tensor::TensorError::Incompatible("x".into()).into();
        assert!(matches!(t, GraphError::Tensor(_)));
        let d: GraphError = tofu_tdl::TdlError::Invalid("y".into()).into();
        assert!(matches!(d, GraphError::Tdl(_)));
    }
}
