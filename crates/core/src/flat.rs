//! Search-space accounting for the non-recursive ("flat") DP — Table 1.
//!
//! Without recursion, each tensor of a `2^m`-worker plan may be partitioned
//! along any *multiset* of `m` dimensions (a 4-D tensor has `C(4+3-1, 3) =
//! 20` distinct ways for 8 workers — the number quoted in §5.2). A group's
//! configuration count is the product over its touched tensors, e.g.
//! `20⁶ = 6.4·10⁷` for a 2-D-convolution group. This module counts those
//! configurations and extrapolates the flat DP's running time from a
//! measured evaluation rate, reproducing the "8 hours / >24 hours" rows of
//! Table 1 without actually burning a day of compute.

use std::time::{Duration, Instant};

use tofu_graph::Graph;

use crate::coarsen::CoarseGraph;
use crate::strategies::ShapeView;

/// Number of multisets of size `m` over `rank` dimensions:
/// `C(rank + m - 1, m)`.
pub fn tensor_configs(rank: usize, m: usize) -> u128 {
    if rank == 0 {
        return 1;
    }
    // Binomial C(rank + m - 1, m).
    let n = (rank + m - 1) as u128;
    let k = m as u128;
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 0..k {
        num = num.saturating_mul(n - i);
        den = den.saturating_mul(i + 1);
    }
    num / den
}

/// Per-group configuration counts of the flat DP.
pub fn group_configs(g: &Graph, cg: &CoarseGraph, view: &ShapeView, workers: usize) -> Vec<u128> {
    let m = workers.trailing_zeros() as usize; // steps for powers of two
    cg.groups
        .iter()
        .map(|group| {
            let mut tensors: Vec<tofu_graph::TensorId> = Vec::new();
            for &n in &group.nodes {
                let node = g.node(n);
                tensors.push(node.output);
                tensors.extend(node.inputs.iter().copied());
            }
            tensors.sort_unstable();
            tensors.dedup();
            let mut configs: u128 = 1;
            for t in tensors {
                configs =
                    configs.saturating_mul(tensor_configs(view.shape(t).rank(), m));
            }
            configs
        })
        .collect()
}

/// Total flat-DP configuration count over all groups.
pub fn total_configs(g: &Graph, cg: &CoarseGraph, view: &ShapeView, workers: usize) -> u128 {
    group_configs(g, cg, view, workers).iter().fold(0u128, |a, &b| a.saturating_add(b))
}

/// Result of the flat-DP time extrapolation.
#[derive(Debug, Clone, Copy)]
pub struct FlatDpEstimate {
    /// Total configurations the flat DP must evaluate.
    pub configs: u128,
    /// Measured evaluation rate (configurations per second).
    pub rate_per_sec: f64,
    /// Extrapolated total search time.
    pub estimated: Duration,
}

/// Measures a realistic per-configuration evaluation rate by timing the cost
/// arithmetic on synthetic configurations, then extrapolates the flat DP's
/// total running time.
pub fn estimate_flat_dp_time(
    g: &Graph,
    cg: &CoarseGraph,
    view: &ShapeView,
    workers: usize,
    probe: Duration,
) -> FlatDpEstimate {
    let configs = total_configs(g, cg, view, workers);

    // Probe: evaluate a representative cost expression in a tight loop. Each
    // flat-DP configuration requires scoring every member operator against
    // the multi-dimensional tensor tilings, which costs on the order of a
    // few hundred nanoseconds; we measure rather than guess.
    let start = Instant::now();
    let mut evaluated: u64 = 0;
    let mut sink = 0.0f64;
    let sizes: Vec<f64> =
        g.tensor_ids().take(64).map(|t| view.shape(t).bytes() as f64).collect();
    while start.elapsed() < probe {
        for _ in 0..1024 {
            // A stand-in for one configuration's cost evaluation: a handful
            // of per-tensor mismatch terms.
            for &s in &sizes {
                sink += s * 0.5 + (sink * 1e-12).min(s);
            }
            evaluated += 1;
        }
    }
    std::hint::black_box(sink);
    let rate = evaluated as f64 / start.elapsed().as_secs_f64().max(1e-9);
    let secs = configs as f64 / rate.max(1e-9);
    FlatDpEstimate {
        configs,
        rate_per_sec: rate,
        estimated: Duration::from_secs_f64(secs.min(1e15)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::coarsen;
    use tofu_graph::{autodiff, Attrs};
    use tofu_tensor::Shape;

    #[test]
    fn multiset_counts_match_the_paper() {
        // §5.2: "for each 4D tensor ... there are in total 20 different ways
        // to partition it evenly across 8 workers".
        assert_eq!(tensor_configs(4, 3), 20);
        assert_eq!(tensor_configs(2, 3), 4);
        assert_eq!(tensor_configs(1, 3), 1);
        assert_eq!(tensor_configs(0, 3), 1);
        // And a 2-D tensor split across 2 workers: 2 ways.
        assert_eq!(tensor_configs(2, 1), 2);
    }

    #[test]
    fn conv_group_scale_matches_206_example() {
        // A group touching six 4-D tensors: 20^6 = 6.4e7 (§5.2).
        let per_tensor = tensor_configs(4, 3);
        assert_eq!(per_tensor.pow(6), 64_000_000);
    }

    #[test]
    fn flat_counts_blow_up_relative_to_recursion() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![8, 3, 16, 16]));
        let f = g.add_weight("f", Shape::new(vec![3, 8, 3, 3]));
        let labels = g.add_input("labels", Shape::new(vec![8]));
        let c = g
            .add_op("conv2d", "conv", &[x, f], Attrs::new().with_int("pad", 1))
            .unwrap();
        let p = g.add_op("global_avg_pool", "gap", &[c], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[p, labels], Attrs::new()).unwrap();
        autodiff::backward(&mut g, loss, &[f]).unwrap();
        let cg = coarsen(&g);
        let view = ShapeView::from_graph(&g);
        let flat = total_configs(&g, &cg, &view, 8);
        // The recursion enumerates per step at most rank^|tensors| per group;
        // the flat count must be orders of magnitude beyond the graph size.
        assert!(flat > 1_000_000, "flat configs only {flat}");
    }

    #[test]
    fn estimate_produces_positive_rate() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 4]));
        let _ = g.add_op("relu", "r", &[x], Attrs::new()).unwrap();
        let cg = coarsen(&g);
        let view = ShapeView::from_graph(&g);
        let est = estimate_flat_dp_time(&g, &cg, &view, 8, Duration::from_millis(20));
        assert!(est.rate_per_sec > 0.0);
        assert!(est.configs >= 1);
    }
}
