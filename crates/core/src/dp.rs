//! The dynamic-programming search for one basic partition step (§5).
//!
//! The DP walks the coarsened groups in forward order and tracks, as its
//! state, the partition spec of every *bundle* crossing the current cut. A
//! bundle is a set of tensors forced to share one spec: the outputs of one
//! strategy class (all timestep instances of a cell operator, or a coalesced
//! element-wise run), or a single leaf tensor. For the chain-like coarsened
//! graphs of MLPs, CNNs and RNNs the cut width is tiny (one activation
//! tensor-group, i.e. a forward tensor and its gradient), which is what makes
//! the search fast; fork-join regions (residual blocks) briefly widen the
//! frontier and are handled by the same machinery.
//!
//! Within a group the member classes are searched combinatorially (§5.1
//! "brute-force combinatorial search among all member operators/tensors"):
//! once every touched bundle's spec is fixed, each class independently picks
//! its cheapest strategy, so the brute force ranges only over the group's
//! internal bundles (weights, weight gradients, temporaries).
//!
//! Two engines implement the same recurrence:
//!
//! * [`unoptimized_search`] — the straightforward seed implementation, kept
//!   alive as the differential-testing reference (select it with
//!   [`SearchTuning::reference`]);
//! * the default optimized engine — packed integer memo keys, per-combo
//!   precomputation, dominated-state pruning and strategy/plan caches (see
//!   DESIGN.md "Search performance" for the soundness argument).
//!
//! The `crates/core/tests` differential harness asserts that both return
//! bit-identical total costs on randomized graphs.

use std::collections::BTreeMap;

use tofu_graph::{Graph, NodeId, TensorId};
use tofu_obs::{Collector, Track};
use tofu_tensor::Shape;

use crate::cache::{step_fingerprint, FastMap, SearchCaches};
use crate::coarsen::CoarseGraph;
use crate::error::CoreError;
use crate::spec::{
    input_fetch_bytes, legal_specs, output_bytes, respec_bytes, ConcreteOut, ConcreteReq,
    TensorSpec,
};
use crate::strategies::{
    node_strategies, strategy_feasible, strategy_signature, NodeStrategy, ShapeView,
};
use crate::Result;

/// Extra leaf inputs attached to nodes by earlier recursion steps (the
/// remote-fetch buffers of Fig. 6). `for_input` names the node input whose
/// required region the buffer carries.
#[derive(Debug, Clone, Default)]
pub struct ExtraInputs {
    entries: Vec<(NodeId, usize, TensorId)>,
}

impl ExtraInputs {
    /// Creates an empty table.
    pub fn new() -> ExtraInputs {
        ExtraInputs::default()
    }

    /// Registers a fetch buffer for `(node, for_input)`.
    pub fn push(&mut self, node: NodeId, for_input: usize, tensor: TensorId) {
        self.entries.push((node, for_input, tensor));
    }

    /// Buffers attached to one node.
    pub fn of_node(&self, node: NodeId) -> impl Iterator<Item = (usize, TensorId)> + '_ {
        self.entries
            .iter()
            .filter(move |(n, _, _)| *n == node)
            .map(|&(_, i, t)| (i, t))
    }

    /// All registered buffer tensors.
    pub fn tensors(&self) -> impl Iterator<Item = TensorId> + '_ {
        self.entries.iter().map(|&(_, _, t)| t)
    }

    /// All `(node, for_input, tensor)` entries in registration order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, usize, TensorId)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no buffers are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Which search engine and which of its optimizations to use.
///
/// The default enables everything; [`SearchTuning::reference`] selects the
/// unoptimized seed implementation that the differential test harness
/// compares against. Every flag is answer-preserving: any combination
/// returns a plan with a bit-identical total cost (enforced by
/// `crates/core/tests/differential.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchTuning {
    /// Run the unoptimized reference engine instead of the optimized one.
    pub reference: bool,
    /// Memoize strategy enumeration by (op, attrs, shapes) signature.
    pub strategy_cache: bool,
    /// Prune dominated DP states (see DESIGN.md "Search performance").
    pub dominance: bool,
    /// Reuse finished step plans keyed by a structural fingerprint.
    pub plan_cache: bool,
}

impl Default for SearchTuning {
    fn default() -> Self {
        SearchTuning { reference: false, strategy_cache: true, dominance: true, plan_cache: true }
    }
}

impl SearchTuning {
    /// The unoptimized reference engine (differential-testing baseline).
    pub fn reference() -> SearchTuning {
        SearchTuning {
            reference: true,
            strategy_cache: false,
            dominance: false,
            plan_cache: false,
        }
    }
}

/// Search options.
#[derive(Debug, Clone, Copy)]
pub struct DpOptions {
    /// Number of worker groups this step splits into (2 for powers of two).
    pub ways: usize,
    /// When false, Case-2 (output-reduction) strategies are excluded —
    /// modeling the ICML18 baseline of §7.3.
    pub allow_reduce: bool,
    /// Upper bound on DP states per cut before the search aborts.
    pub state_bound: usize,
    /// Upper bound on enumerated internal-bundle assignments per group;
    /// beyond it, internal specs are optimized by coordinate descent.
    pub internal_bound: usize,
    /// Beam width: at most this many DP states are kept per cut (the best
    /// ones by cost). Wide fork-join frontiers are pruned to the beam, which
    /// preserves optimality on chain-shaped coarsened graphs and is a
    /// high-quality approximation elsewhere.
    pub beam: usize,
    /// Engine selection and optimization flags.
    pub tuning: SearchTuning,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions {
            ways: 2,
            allow_reduce: true,
            state_bound: 200_000,
            internal_bound: 1024,
            beam: 512,
            tuning: SearchTuning::default(),
        }
    }
}

/// How one node is executed under the chosen basic plan.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeChoice {
    /// A discovered strategy (with concrete requirements).
    Strategy(NodeStrategy),
    /// An element-wise (or coalesced) node: everything follows the class
    /// spec.
    Ewise(TensorSpec),
}

/// The basic partition plan of one step.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// Group count of this step.
    pub ways: usize,
    /// Spec per tensor (graph tensors first, then extra-input tensors).
    pub tensor_spec: Vec<TensorSpec>,
    /// Execution choice per node.
    pub node_choice: Vec<NodeChoice>,
    /// Total communication bytes incurred by this step (per worker-group
    /// pair; the recursion scales it by the number of groups).
    pub comm_bytes: f64,
}

impl StepPlan {
    /// Spec of a tensor.
    pub fn spec(&self, t: TensorId) -> TensorSpec {
        self.tensor_spec[t.0]
    }
}

type StateKey = Vec<(usize, TensorSpec)>; // sorted (bundle, spec)

struct Bundles {
    /// Bundle id per tensor (graph + extra tensors).
    of_tensor: Vec<usize>,
    /// Representative shapes per bundle (for legal-spec computation the
    /// intersection over members is used).
    legal: Vec<Vec<TensorSpec>>,
    /// First and last group touching each bundle.
    first: Vec<usize>,
    last: Vec<usize>,
    count: usize,
}

fn build_bundles(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    ways: usize,
) -> Bundles {
    let total_tensors = view.len();
    let mut of_tensor = vec![usize::MAX; total_tensors];
    let mut members: Vec<Vec<TensorId>> = Vec::new();

    // Class-keyed bundles for produced tensors.
    let mut class_bundle: BTreeMap<usize, usize> = BTreeMap::new();
    for id in g.node_ids() {
        let out = g.node(id).output;
        let class = cg.class_of[id.0];
        let b = *class_bundle.entry(class).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        of_tensor[out.0] = b;
        members[b].push(out);
    }
    // Leaf bundles for everything else (inputs, weights, extra buffers).
    for (t, bundle) in of_tensor.iter_mut().enumerate() {
        if *bundle == usize::MAX {
            members.push(vec![TensorId(t)]);
            *bundle = members.len() - 1;
        }
    }

    let count = members.len();
    // Legal specs: intersection over member tensors.
    let mut legal: Vec<Vec<TensorSpec>> = Vec::with_capacity(count);
    for m in &members {
        let mut acc: Option<Vec<TensorSpec>> = None;
        for &t in m {
            let specs = legal_specs(view.shape(t), ways);
            acc = Some(match acc {
                None => specs,
                Some(prev) => prev.into_iter().filter(|s| specs.contains(s)).collect(),
            });
        }
        let mut specs = acc.unwrap_or_default();
        if specs.is_empty() {
            specs.push(TensorSpec::Replicated);
        }
        legal.push(specs);
    }

    // Group touch ranges.
    let mut first = vec![usize::MAX; count];
    let mut last = vec![0usize; count];
    let mut touch = |b: usize, gi: usize| {
        if first[b] == usize::MAX || gi < first[b] {
            first[b] = gi;
        }
        if gi > last[b] {
            last[b] = gi;
        }
    };
    for id in g.node_ids() {
        let gi = cg.group_of[id.0];
        let node = g.node(id);
        touch(of_tensor[node.output.0], gi);
        for &t in &node.inputs {
            touch(of_tensor[t.0], gi);
        }
        for (_, t) in extra.of_node(id) {
            touch(of_tensor[t.0], gi);
        }
    }
    // Untouched bundles (dangling tensors): pin to group 0.
    for b in 0..count {
        if first[b] == usize::MAX {
            first[b] = 0;
            last[b] = 0;
        }
    }

    Bundles { of_tensor, legal, first, last, count }
}

/// Per-class preprocessed data.
struct ClassInfo {
    rep: NodeId,
    members: Vec<NodeId>,
    is_ewise: bool,
    /// Feasible strategies of the representative (empty for ewise classes).
    strategies: Vec<NodeStrategy>,
    /// Bundle of the class's outputs.
    own_bundle: usize,
    /// Every bundle this class touches, sorted — the memoization key domain.
    touched: Vec<usize>,
}

/// Preprocesses every strategy class: enumerates (optionally through the
/// strategy cache), filters for feasibility, and records touched bundles.
/// Shared by both search engines so they see byte-identical strategy lists.
#[allow(clippy::too_many_arguments)]
fn build_classes(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    bundles: &Bundles,
    opts: &DpOptions,
    caches: Option<&SearchCaches>,
    obs: Option<&Collector>,
) -> Result<Vec<Option<ClassInfo>>> {
    let mut classes: Vec<Option<ClassInfo>> = Vec::with_capacity(cg.class_nodes.len());
    for (ci, members) in cg.class_nodes.iter().enumerate() {
        if members.is_empty() {
            classes.push(None);
            continue;
        }
        let rep = members[0];
        let is_ewise = cg.class_is_ewise[ci];
        let strategies = if is_ewise {
            Vec::new()
        } else {
            let out_shape = view.shape(g.node(rep).output).clone();
            let enumerated = match caches.filter(|_| opts.tuning.strategy_cache) {
                Some(cache) => {
                    let sig = strategy_signature(g, rep, view);
                    match cache.strategies_get(&sig) {
                        Some(hit) => {
                            if let Some(c) = obs {
                                c.add_total("cache/strategy_hit", 1.0);
                            }
                            hit
                        }
                        None => {
                            if let Some(c) = obs {
                                c.add_total("cache/strategy_miss", 1.0);
                            }
                            let fresh = node_strategies(g, rep, view)?;
                            cache.strategies_put(sig, fresh.clone());
                            fresh
                        }
                    }
                }
                None => node_strategies(g, rep, view)?,
            };
            if let Some(c) = obs {
                c.add_total("dp/strategies_enumerated", enumerated.len() as f64);
            }
            let feasible: Vec<NodeStrategy> = enumerated
                .into_iter()
                .filter(|s| strategy_feasible(s, &out_shape, opts.ways))
                .collect();
            let filtered: Vec<NodeStrategy> = feasible
                .iter()
                .filter(|s| opts.allow_reduce || !matches!(s.out, ConcreteOut::Reduce))
                .cloned()
                .collect();
            // The ICML18 baseline lacks output-reduction as an *option*; an
            // operator whose only strategies are reductions (e.g. the scalar
            // loss) is still computed, just not partitioned differently.
            let kept = if filtered.is_empty() { feasible } else { filtered };
            if let Some(c) = obs {
                c.add_total("dp/strategies_feasible", kept.len() as f64);
            }
            kept
        };
        let mut touched: Vec<usize> = Vec::new();
        for &m in members {
            let node = g.node(m);
            touched.push(bundles.of_tensor[node.output.0]);
            for &t in &node.inputs {
                touched.push(bundles.of_tensor[t.0]);
            }
            for (_, t) in extra.of_node(m) {
                touched.push(bundles.of_tensor[t.0]);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        classes.push(Some(ClassInfo {
            rep,
            members: members.clone(),
            is_ewise,
            strategies,
            own_bundle: bundles.of_tensor[g.node(rep).output.0],
            touched,
        }));
    }
    Ok(classes)
}

/// Runs the DP for one basic step, returning the optimal [`StepPlan`].
pub fn search(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
) -> Result<StepPlan> {
    search_with_obs(g, view, cg, extra, opts, None)
}

/// [`search`] that additionally reports its statistics into `obs`: running
/// totals `dp/strategies_enumerated`, `dp/strategies_feasible`,
/// `dp/states_explored`, `dp/frontier_width_max`, the pruning totals
/// `dp/prune_dominated` and `dp/prune_beam`, cache totals
/// `cache/{strategy,plan}_{hit,miss}`, plus per-cut `dp/frontier states` and
/// `dp/frontier width` counter samples on [`Track::search`] (frontier width
/// = bundles crossing the cut, the quantity §5 argues stays tiny on
/// chain-like coarsened graphs).
pub fn search_with_obs(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
    obs: Option<&Collector>,
) -> Result<StepPlan> {
    if opts.tuning.reference {
        unoptimized_search(g, view, cg, extra, opts, obs)
    } else {
        let caches = SearchCaches::new();
        search_with_caches(g, view, cg, extra, opts, &caches, obs)
    }
}

/// The unoptimized seed implementation of the DP, kept alive as the
/// differential-testing reference. Explores the full `states × combos`
/// product at every cut with no dominance pruning, `Vec`-keyed memo maps
/// and no cross-invocation caching. Selected by [`SearchTuning::reference`]
/// (through [`search_with_obs`]) or called directly by tests.
pub fn unoptimized_search(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
    obs: Option<&Collector>,
) -> Result<StepPlan> {
    if opts.ways < 2 {
        return Err(CoreError::BadWorkerCount(opts.ways));
    }
    let bundles = build_bundles(g, view, cg, extra, opts.ways);
    let classes = build_classes(g, view, cg, extra, &bundles, opts, None, obs)?;

    // Class-cost memoization: specs of a class's touched bundles fully
    // determine its cost, so (class, spec-key) results are cached across the
    // state x combo product.
    type ClassCostCache =
        std::collections::HashMap<(usize, Vec<u8>), Option<(f64, Option<usize>)>>;
    let mut cost_cache: ClassCostCache = ClassCostCache::new();
    const REP: u8 = u8::MAX;
    let enc = TensorSpec::enc;
    let dec = TensorSpec::dec;

    // DP over groups.
    let mut states: BTreeMap<StateKey, (f64, usize)> = BTreeMap::new();
    states.insert(Vec::new(), (0.0, usize::MAX));
    // Backtracking: per group, per resulting state key, the winning local
    // assignment (bundle -> spec for every bundle resolved at this group)
    // plus per-class strategy indices, plus predecessor state key.
    struct Trace {
        prev: StateKey,
        resolved: Vec<(usize, TensorSpec)>,
        class_choice: Vec<(usize, usize)>, // (class, strategy index)
    }
    let mut traces: Vec<BTreeMap<StateKey, Trace>> = Vec::with_capacity(cg.groups.len());

    for (gi, group) in cg.groups.iter().enumerate() {
        let mut touched: Vec<usize> = Vec::new();
        for &n in &group.nodes {
            let node = g.node(n);
            touched.push(bundles.of_tensor[node.output.0]);
            for &t in &node.inputs {
                touched.push(bundles.of_tensor[t.0]);
            }
            for (_, t) in extra.of_node(n) {
                touched.push(bundles.of_tensor[t.0]);
            }
        }
        touched.sort_unstable();
        touched.dedup();

        // Bundles resolved at this group: those first touched here.
        let fresh: Vec<usize> =
            touched.iter().copied().filter(|&b| bundles.first[b] == gi).collect();
        let carried: Vec<usize> =
            touched.iter().copied().filter(|&b| bundles.first[b] < gi).collect();

        // Enumerate fresh-bundle assignments (bounded).
        let combos = enumerate_assignments(&fresh, &bundles.legal, opts.internal_bound);

        let mut next: BTreeMap<StateKey, (f64, usize)> = BTreeMap::new();
        let mut trace: BTreeMap<StateKey, Trace> = BTreeMap::new();

        let mut spec_arr: Vec<u8> = vec![REP; bundles.count];
        for (state_key, &(base_cost, _)) in &states {
            if !carried
                .iter()
                .all(|b| state_key.iter().any(|(sb, _)| sb == b))
            {
                return Err(CoreError::Internal(format!(
                    "bundle carried into group {gi} missing from DP state"
                )));
            }
            for &(b, spec) in state_key {
                spec_arr[b] = enc(spec);
            }
            for combo in &combos {
                for &(b, spec) in combo {
                    spec_arr[b] = enc(spec);
                }
                // Per-class independent optimization with memoization.
                let mut total = 0.0f64;
                let mut choices: Vec<(usize, usize)> = Vec::new();
                let mut feasible = true;
                for &ci in &group.classes {
                    let Some(info) = &classes[ci] else { continue };
                    let key: Vec<u8> = info.touched.iter().map(|&b| spec_arr[b]).collect();
                    let cached = cost_cache
                        .entry((ci, key))
                        .or_insert_with(|| {
                            let spec = |t: TensorId| dec(spec_arr[bundles.of_tensor[t.0]]);
                            class_cost(g, view, extra, info, &spec, opts)
                        });
                    match cached {
                        Some((c, choice)) => {
                            total += *c;
                            if let Some(idx) = choice {
                                choices.push((ci, *idx));
                            }
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if feasible {
                    let cost = base_cost + total;
                    // New state: bundles still crossing after this group.
                    let mut key: StateKey = state_key
                        .iter()
                        .copied()
                        .filter(|&(b, _)| bundles.last[b] > gi)
                        .chain(
                            combo
                                .iter()
                                .copied()
                                .filter(|&(b, _)| bundles.last[b] > gi),
                        )
                        .collect();
                    key.sort_unstable();
                    let entry =
                        next.entry(key.clone()).or_insert((f64::INFINITY, usize::MAX));
                    if cost < entry.0 {
                        *entry = (cost, 0);
                        trace.insert(
                            key,
                            Trace {
                                prev: state_key.clone(),
                                resolved: combo.clone(),
                                class_choice: choices,
                            },
                        );
                    }
                }
                for &(b, _) in combo {
                    spec_arr[b] = REP;
                }
            }
            for &(b, _) in state_key {
                spec_arr[b] = REP;
            }
        }
        if next.is_empty() {
            return Err(CoreError::NoStrategy {
                node: format!("group {gi}"),
                detail: "no feasible configuration".into(),
            });
        }
        if next.len() > opts.state_bound {
            return Err(CoreError::SearchSpaceExceeded {
                states: next.len(),
                bound: opts.state_bound,
            });
        }
        if next.len() > opts.beam {
            // Beam pruning: keep the cheapest states.
            let mut ranked: Vec<(StateKey, (f64, usize))> = next.into_iter().collect();
            ranked.sort_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite costs"));
            ranked.truncate(opts.beam);
            next = ranked.into_iter().collect();
            trace.retain(|k, _| next.contains_key(k));
        }
        if let Some(c) = obs {
            let ts = c.now_us();
            c.add_total("dp/states_explored", (states.len() * combos.len()) as f64);
            let width = next.keys().map(|k| k.len()).max().unwrap_or(0) as f64;
            c.counter(Track::search(), "dp/frontier states", ts, next.len() as f64);
            c.counter(Track::search(), "dp/frontier width", ts, width);
            c.max_total("dp/frontier_width_max", width);
        }
        states = next;
        traces.push(trace);
    }

    // Reconstruct: final state should be the single empty key (or the best).
    let (mut key, (total_cost, _)) = states
        .iter()
        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite costs"))
        .map(|(k, v)| (k.clone(), *v))
        .expect("states nonempty");

    let mut bundle_spec: Vec<TensorSpec> = vec![TensorSpec::Replicated; bundles.count];
    let mut class_choice: BTreeMap<usize, usize> = BTreeMap::new();
    for gi in (0..cg.groups.len()).rev() {
        let t = traces[gi]
            .get(&key)
            .ok_or_else(|| CoreError::Internal(format!("missing trace at group {gi}")))?;
        for &(b, s) in &t.resolved {
            bundle_spec[b] = s;
        }
        // Specs of bundles alive in this state.
        for &(b, s) in &key {
            bundle_spec[b] = s;
        }
        for &(ci, idx) in &t.class_choice {
            class_choice.insert(ci, idx);
        }
        key = t.prev.clone();
    }

    // Materialize per-tensor and per-node plans.
    let tensor_spec: Vec<TensorSpec> =
        (0..view.len()).map(|t| bundle_spec[bundles.of_tensor[t]]).collect();
    let mut node_choice: Vec<NodeChoice> = Vec::with_capacity(g.num_nodes());
    for id in g.node_ids() {
        let ci = cg.class_of[id.0];
        let info = classes[ci].as_ref().expect("class exists");
        if info.is_ewise {
            node_choice.push(NodeChoice::Ewise(bundle_spec[info.own_bundle]));
        } else {
            let idx = class_choice.get(&ci).copied().ok_or_else(|| {
                CoreError::Internal(format!("no strategy recorded for class {ci}"))
            })?;
            node_choice.push(NodeChoice::Strategy(info.strategies[idx].clone()));
        }
    }

    Ok(StepPlan { ways: opts.ways, tensor_spec, node_choice, comm_bytes: total_cost })
}

// ---------------------------------------------------------------------------
// Optimized engine
// ---------------------------------------------------------------------------

/// 4-bit spec encoding used by packed memo keys: `Split(d)` → `d` (rank must
/// be ≤ 14), `Replicated` → 15. Input is the canonical byte encoding.
#[inline]
fn enc4(byte: u8) -> u64 {
    if byte == u8::MAX {
        15
    } else {
        u64::from(byte)
    }
}

#[inline]
fn dec4(field: u64) -> TensorSpec {
    if field == 15 {
        TensorSpec::Replicated
    } else {
        TensorSpec::Split(field as usize)
    }
}

/// Per-class cost memo: packed `u64` keys (4 bits per touched bundle) when
/// the class is small enough, byte-vector keys otherwise.
enum ClassMemo {
    Packed(FastMap<u64, Option<f64>>),
    Wide(std::collections::HashMap<Vec<u8>, Option<f64>>),
}

/// Deduplication key of one DP state: packed `u128` (4 bits per crossing
/// bundle) when the frontier is narrow, the raw byte key otherwise.
#[derive(PartialEq, Eq, Hash)]
enum StateFp {
    Packed(u128),
    Wide(Box<[u8]>),
}

/// One DP state in the optimized engine. `specs` holds the canonical byte
/// encoding of each crossing bundle's spec, aligned with the cut's sorted
/// crossing-bundle list.
#[derive(Clone)]
struct Cand {
    specs: Box<[u8]>,
    cost: f64,
    prev: u32,
    combo: u32,
}

/// Per-cut record kept for plan reconstruction.
struct CutRecord {
    combos: Vec<Vec<(usize, TensorSpec)>>,
    kept: Vec<Cand>,
}

/// Per-(cut, class) field layout: where each touched bundle's spec comes
/// from — the combo (fresh) or the predecessor state (carried).
struct CutClass {
    ci: usize,
    packed: bool,
    /// (field index in `touched`, index into the cut's fresh list).
    fresh_fields: Vec<(usize, usize)>,
    /// (field index in `touched`, position in the previous cut's crossing
    /// list).
    carried_fields: Vec<(usize, usize)>,
}

/// Per-(combo, class) precomputed value.
enum ComboVal {
    /// Fresh-only class, already evaluated: add this cost.
    Cost(f64),
    /// Fresh-only class with no feasible strategy under this combo.
    Infeasible,
    /// Packed partial key from the fresh fields; carried fields come from
    /// the state.
    PackedPart(u64),
    /// Wide template with fresh fields filled; carried fields come from the
    /// state.
    WidePart(Vec<u8>),
}

/// Upper bounds on how much each bundle's spec can still contribute to the
/// cost *after* each cut — the dominance-pruning certificate (see DESIGN.md
/// "Search performance"). `after(b, gi)` bounds, for every completion, the
/// total of all cost terms at groups > `gi` that depend on bundle `b`'s
/// spec.
struct DomBounds {
    /// Flattened `[bundle][group]` suffix sums, `groups + 1` entries per
    /// bundle (the last is 0).
    after: Vec<f64>,
    groups: usize,
}

impl DomBounds {
    #[inline]
    fn after(&self, b: usize, gi: usize) -> f64 {
        self.after[b * (self.groups + 1) + gi + 1]
    }
}

/// Safety inflation applied to every dominance bound: the soundness argument
/// holds in exact arithmetic; a relative margin of 1e-6 absorbs any f64
/// rounding discrepancy (costs are sums of at most ~1e6 terms, each with
/// relative error ~1e-16) while costing virtually no pruning power.
const DOM_INFLATE: f64 = 1.0 + 1e-6;

fn build_dom_bounds(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    bundles: &Bundles,
    classes: &[Option<ClassInfo>],
    ways: usize,
) -> DomBounds {
    let n_groups = cg.groups.len();
    let w = ways as f64;
    // acc[b][gi]: bound on the total spec-dependent cost attributable to
    // bundle b at group gi.
    let mut acc = vec![0.0f64; bundles.count * n_groups];
    let add = |acc: &mut Vec<f64>, b: usize, gi: usize, v: f64| {
        acc[b * n_groups + gi] += v;
    };

    // Max over specs of one input-fetch term for a fixed requirement.
    let req_ub = |shape: &Shape, req: &ConcreteReq| -> f64 {
        let size = shape.bytes() as f64;
        match req {
            ConcreteReq::Unused => 0.0,
            ConcreteReq::Replicated => size * (w - 1.0),
            ConcreteReq::Split { dim, halo } => {
                let cross = size * (w - 1.0) / w;
                let halo_ub = if *halo > 0.0 && *dim < shape.rank() {
                    let extent = shape.dim(*dim).max(1) as f64;
                    size * (halo / extent).min(1.0) * w
                } else {
                    0.0
                };
                cross.max(halo_ub)
            }
        }
    };

    for info in classes.iter().flatten() {
        let gi = cg.group_of[info.rep.0];
        if info.is_ewise {
            // cost = Σ input_fetch(t, spec(t), ewise_req(class_spec)); each
            // term depends on both t's bundle and the class's own bundle, so
            // its max (full replication fetch) is charged to both.
            for &m in &info.members {
                let node = g.node(m);
                for &t in &node.inputs {
                    let v = view.shape(t).bytes() as f64 * (w - 1.0);
                    add(&mut acc, bundles.of_tensor[t.0], gi, v);
                    add(&mut acc, info.own_bundle, gi, v);
                }
                for (_, t) in extra.of_node(m) {
                    let v = view.shape(t).bytes() as f64 * (w - 1.0);
                    add(&mut acc, bundles.of_tensor[t.0], gi, v);
                    add(&mut acc, info.own_bundle, gi, v);
                }
            }
        } else {
            for &m in &info.members {
                let node = g.node(m);
                for (i, &t) in node.inputs.iter().enumerate() {
                    let shape = view.shape(t);
                    let ub = info
                        .strategies
                        .iter()
                        .map(|s| {
                            req_ub(shape, s.inputs.get(i).unwrap_or(&ConcreteReq::Unused))
                        })
                        .fold(0.0f64, f64::max);
                    add(&mut acc, bundles.of_tensor[t.0], gi, ub);
                }
                for (for_input, t) in extra.of_node(m) {
                    let shape = view.shape(t);
                    let ub = info
                        .strategies
                        .iter()
                        .map(|s| {
                            req_ub(
                                shape,
                                s.inputs.get(for_input).unwrap_or(&ConcreteReq::Unused),
                            )
                        })
                        .fold(0.0f64, f64::max);
                    add(&mut acc, bundles.of_tensor[t.0], gi, ub);
                }
                // Output: a Split-out strategy pays up to size*(w-1) respec
                // depending on the own bundle's spec; Reduce output cost is
                // spec-independent (cancels in the dominance difference).
                if info.strategies.iter().any(|s| matches!(s.out, ConcreteOut::Split(_))) {
                    let v = view.shape(node.output).bytes() as f64 * (w - 1.0);
                    add(&mut acc, info.own_bundle, gi, v);
                }
            }
        }
    }

    // Suffix sums with the safety margin folded in.
    let mut after = vec![0.0f64; bundles.count * (n_groups + 1)];
    for b in 0..bundles.count {
        let row = b * (n_groups + 1);
        after[row + n_groups] = 0.0;
        for gi in (0..n_groups).rev() {
            after[row + gi] = after[row + gi + 1] + acc[b * n_groups + gi] * DOM_INFLATE;
        }
    }
    DomBounds { after, groups: n_groups }
}

/// Maximum number of cheaper survivors a candidate state is compared
/// against during dominance pruning; bounds the worst-case quadratic cost
/// on wide frontiers.
const DOM_COMPARISONS: usize = 48;

/// The optimized DP engine: identical recurrence and tie-breaking to
/// [`unoptimized_search`], plus packed memo keys, per-combo class-cost
/// precomputation, dominated-state pruning and (through `caches`) strategy
/// and step-plan memoization. Returns plans whose total cost is
/// bit-identical to the reference (enforced by the differential harness).
///
/// `caches` is taken by shared reference: [`SearchCaches`] is internally
/// synchronized, so any number of threads may run searches against one
/// instance concurrently. Concurrent misses of the same step fingerprint
/// are single-flighted — one thread searches, the rest wait for its plan.
pub fn search_with_caches(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
    caches: &SearchCaches,
    obs: Option<&Collector>,
) -> Result<StepPlan> {
    if opts.tuning.reference {
        return unoptimized_search(g, view, cg, extra, opts, obs);
    }
    if opts.ways < 2 {
        return Err(CoreError::BadWorkerCount(opts.ways));
    }

    // Single-flight plan-cache lookup: a hit (cached or freshly published by
    // a concurrent leader) returns immediately; a miss makes this thread the
    // leader, and the guard resolves the flight on every exit path —
    // including errors and panics — so waiters never block forever.
    let flight = if opts.tuning.plan_cache {
        let key = step_fingerprint(g, view, cg, extra, opts);
        match caches.plan_begin(key) {
            crate::cache::PlanLookup::Ready(plan) => {
                if let Some(c) = obs {
                    c.add_total("cache/plan_hit", 1.0);
                }
                return Ok(plan);
            }
            crate::cache::PlanLookup::Leader => {
                if let Some(c) = obs {
                    c.add_total("cache/plan_miss", 1.0);
                }
                Some(caches.plan_flight_guard(key))
            }
        }
    } else {
        None
    };

    let bundles = build_bundles(g, view, cg, extra, opts.ways);
    let classes = build_classes(g, view, cg, extra, &bundles, opts, Some(caches), obs)?;

    // Packed keys need 4 bits per spec: feasible when no tensor rank
    // exceeds 14 (split dims ≤ 13, 15 reserved for Replicated).
    let max_rank =
        (0..view.len()).map(|t| view.shape(TensorId(t)).rank()).max().unwrap_or(0);
    let four_bit = max_rank <= 14;

    let dom = if opts.tuning.dominance {
        Some(build_dom_bounds(g, view, cg, extra, &bundles, &classes, opts.ways))
    } else {
        None
    };

    let mut memos: Vec<ClassMemo> = classes
        .iter()
        .map(|c| match c {
            Some(info) if four_bit && info.touched.len() <= 16 => {
                ClassMemo::Packed(FastMap::default())
            }
            _ => ClassMemo::Wide(std::collections::HashMap::new()),
        })
        .collect();

    // Evaluates one class under fully decoded specs (memo-miss path).
    let eval_class = |info: &ClassInfo, field_spec: &dyn Fn(usize) -> TensorSpec| -> Option<f64> {
        let spec = |t: TensorId| {
            let b = bundles.of_tensor[t.0];
            let fi = info.touched.binary_search(&b).expect("touched bundle");
            field_spec(fi)
        };
        class_cost(g, view, extra, info, &spec, opts).map(|(c, _)| c)
    };

    let mut records: Vec<CutRecord> = Vec::with_capacity(cg.groups.len());
    let mut cur: Vec<Cand> =
        vec![Cand { specs: Box::from([]), cost: 0.0, prev: u32::MAX, combo: u32::MAX }];
    let mut prev_cross: Vec<usize> = Vec::new();
    let mut pruned_dominated = 0u64;
    let mut pruned_beam = 0u64;

    for (gi, group) in cg.groups.iter().enumerate() {
        let mut touched: Vec<usize> = Vec::new();
        for &n in &group.nodes {
            let node = g.node(n);
            touched.push(bundles.of_tensor[node.output.0]);
            for &t in &node.inputs {
                touched.push(bundles.of_tensor[t.0]);
            }
            for (_, t) in extra.of_node(n) {
                touched.push(bundles.of_tensor[t.0]);
            }
        }
        touched.sort_unstable();
        touched.dedup();

        let fresh: Vec<usize> =
            touched.iter().copied().filter(|&b| bundles.first[b] == gi).collect();
        let combos = enumerate_assignments(&fresh, &bundles.legal, opts.internal_bound);

        // Bundles crossing the cut after this group, sorted (fresh and
        // prev_cross are disjoint: first == gi vs first < gi).
        let mut next_cross: Vec<usize> = prev_cross
            .iter()
            .copied()
            .filter(|&b| bundles.last[b] > gi)
            .chain(fresh.iter().copied().filter(|&b| bundles.last[b] > gi))
            .collect();
        next_cross.sort_unstable();
        let width = next_cross.len();
        let packed_state = four_bit && width <= 32;

        // Position maps for O(1) next-state assembly.
        let pos_in = |list: &[usize], b: usize| list.binary_search(&b).ok();
        let surviving_prev: Vec<(usize, usize)> = prev_cross
            .iter()
            .enumerate()
            .filter(|&(_, &b)| bundles.last[b] > gi)
            .map(|(p, &b)| (p, pos_in(&next_cross, b).expect("crossing bundle")))
            .collect();
        let surviving_fresh: Vec<(usize, usize)> = fresh
            .iter()
            .enumerate()
            .filter(|&(_, &b)| bundles.last[b] > gi)
            .map(|(f, &b)| (f, pos_in(&next_cross, b).expect("crossing bundle")))
            .collect();

        // Per-class field layout at this cut.
        let mut cut_classes: Vec<CutClass> = Vec::new();
        for &ci in &group.classes {
            let Some(info) = &classes[ci] else { continue };
            let mut fresh_fields = Vec::new();
            let mut carried_fields = Vec::new();
            for (fi, &b) in info.touched.iter().enumerate() {
                if let Some(f) = pos_in(&fresh, b) {
                    fresh_fields.push((fi, f));
                } else {
                    let Some(p) = pos_in(&prev_cross, b) else {
                        return Err(CoreError::Internal(format!(
                            "bundle carried into group {gi} missing from DP state"
                        )));
                    };
                    carried_fields.push((fi, p));
                }
            }
            cut_classes.push(CutClass {
                ci,
                packed: matches!(memos[ci], ClassMemo::Packed(_)),
                fresh_fields,
                carried_fields,
            });
        }

        // Per-combo precomputation: fill fresh fields; evaluate fresh-only
        // classes immediately.
        let mut combo_vals: Vec<Vec<ComboVal>> = Vec::with_capacity(combos.len());
        for combo in &combos {
            let mut vals: Vec<ComboVal> = Vec::with_capacity(cut_classes.len());
            for cc in &cut_classes {
                let info = classes[cc.ci].as_ref().expect("class exists");
                if cc.packed {
                    let mut part = 0u64;
                    for &(fi, f) in &cc.fresh_fields {
                        part |= enc4(combo[f].1.enc()) << (4 * fi);
                    }
                    if cc.carried_fields.is_empty() {
                        let cost = match &mut memos[cc.ci] {
                            ClassMemo::Packed(m) => *m.entry(part).or_insert_with(|| {
                                eval_class(info, &|fi| dec4((part >> (4 * fi)) & 15))
                            }),
                            ClassMemo::Wide(_) => unreachable!("packed class"),
                        };
                        vals.push(cost.map_or(ComboVal::Infeasible, ComboVal::Cost));
                    } else {
                        vals.push(ComboVal::PackedPart(part));
                    }
                } else {
                    let mut tmpl = vec![0u8; info.touched.len()];
                    for &(fi, f) in &cc.fresh_fields {
                        tmpl[fi] = combo[f].1.enc();
                    }
                    if cc.carried_fields.is_empty() {
                        let cost = match &mut memos[cc.ci] {
                            ClassMemo::Wide(m) => *m.entry(tmpl.clone()).or_insert_with(|| {
                                eval_class(info, &|fi| TensorSpec::dec(tmpl[fi]))
                            }),
                            ClassMemo::Packed(_) => unreachable!("wide class"),
                        };
                        vals.push(cost.map_or(ComboVal::Infeasible, ComboVal::Cost));
                    } else {
                        vals.push(ComboVal::WidePart(tmpl));
                    }
                }
            }
            combo_vals.push(vals);
        }

        // Transition: states × combos, deduplicated by next key with
        // first-minimum-wins semantics identical to the reference (states
        // iterate in key order, combos in enumeration order).
        let mut dedup: FastMap<StateFp, u32> = FastMap::default();
        let mut kept: Vec<Cand> = Vec::new();
        let mut carried_part: Vec<u64> = vec![0; cut_classes.len()];
        let mut scratch: Vec<u8> = vec![0; width];

        for (si, st) in cur.iter().enumerate() {
            for (k, cc) in cut_classes.iter().enumerate() {
                if cc.packed && !cc.carried_fields.is_empty() {
                    let mut part = 0u64;
                    for &(fi, p) in &cc.carried_fields {
                        part |= enc4(st.specs[p]) << (4 * fi);
                    }
                    carried_part[k] = part;
                }
            }
            for (combo_i, vals) in combo_vals.iter().enumerate() {
                let mut total = 0.0f64;
                let mut ok = true;
                for (k, cv) in vals.iter().enumerate() {
                    match cv {
                        ComboVal::Cost(c) => total += c,
                        ComboVal::Infeasible => {
                            ok = false;
                            break;
                        }
                        ComboVal::PackedPart(part) => {
                            let key = part | carried_part[k];
                            let ci = cut_classes[k].ci;
                            let info = classes[ci].as_ref().expect("class exists");
                            let cost = match &mut memos[ci] {
                                ClassMemo::Packed(m) => *m.entry(key).or_insert_with(|| {
                                    eval_class(info, &|fi| dec4((key >> (4 * fi)) & 15))
                                }),
                                ClassMemo::Wide(_) => unreachable!("packed class"),
                            };
                            match cost {
                                Some(c) => total += c,
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        ComboVal::WidePart(tmpl) => {
                            let cc = &cut_classes[k];
                            let mut keyv = tmpl.clone();
                            for &(fi, p) in &cc.carried_fields {
                                keyv[fi] = st.specs[p];
                            }
                            let info = classes[cc.ci].as_ref().expect("class exists");
                            let cost = match &mut memos[cc.ci] {
                                ClassMemo::Wide(m) => *m.entry(keyv.clone()).or_insert_with(
                                    || eval_class(info, &|fi| TensorSpec::dec(keyv[fi])),
                                ),
                                ClassMemo::Packed(_) => unreachable!("wide class"),
                            };
                            match cost {
                                Some(c) => total += c,
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let cost = st.cost + total;
                for &(p, q) in &surviving_prev {
                    scratch[q] = st.specs[p];
                }
                let combo = &combos[combo_i];
                for &(f, q) in &surviving_fresh {
                    scratch[q] = combo[f].1.enc();
                }
                let fp = if packed_state {
                    let mut v = 0u128;
                    for (q, &b) in scratch.iter().enumerate() {
                        v |= u128::from(enc4(b)) << (4 * q);
                    }
                    StateFp::Packed(v)
                } else {
                    StateFp::Wide(scratch.clone().into_boxed_slice())
                };
                match dedup.entry(fp) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let i = *e.get() as usize;
                        if cost < kept[i].cost {
                            kept[i].cost = cost;
                            kept[i].prev = si as u32;
                            kept[i].combo = combo_i as u32;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(kept.len() as u32);
                        kept.push(Cand {
                            specs: scratch.clone().into_boxed_slice(),
                            cost,
                            prev: si as u32,
                            combo: combo_i as u32,
                        });
                    }
                }
            }
        }

        if kept.is_empty() {
            return Err(CoreError::NoStrategy {
                node: format!("group {gi}"),
                detail: "no feasible configuration".into(),
            });
        }
        if kept.len() > opts.state_bound {
            return Err(CoreError::SearchSpaceExceeded {
                states: kept.len(),
                bound: opts.state_bound,
            });
        }

        // Rank by (cost, key): equals the reference's stable cost sort over
        // key-ordered states.
        kept.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("finite costs")
                .then_with(|| a.specs.cmp(&b.specs))
        });

        // Dominance pruning: drop B when a strictly cheaper survivor A
        // satisfies cost_B > cost_A + Σ_{differing bundles} after(b, gi).
        if let Some(dom) = &dom {
            if kept.len() > 1 {
                let mut survivors: Vec<Cand> = Vec::with_capacity(kept.len());
                for cand in kept.drain(..) {
                    let mut dominated = false;
                    for a in survivors.iter().take(DOM_COMPARISONS) {
                        let slack = cand.cost - a.cost;
                        if slack <= 0.0 {
                            continue;
                        }
                        let mut ub = 0.0f64;
                        let mut within = true;
                        for (q, &bundle) in next_cross.iter().enumerate().take(width) {
                            if a.specs[q] != cand.specs[q] {
                                ub += dom.after(bundle, gi);
                                if ub >= slack {
                                    within = false;
                                    break;
                                }
                            }
                        }
                        if within {
                            dominated = true;
                            break;
                        }
                    }
                    if dominated {
                        pruned_dominated += 1;
                    } else {
                        survivors.push(cand);
                    }
                }
                kept = survivors;
            }
        }

        if kept.len() > opts.beam {
            pruned_beam += (kept.len() - opts.beam) as u64;
            kept.truncate(opts.beam);
        }

        if let Some(c) = obs {
            let ts = c.now_us();
            c.add_total("dp/states_explored", (cur.len() * combos.len()) as f64);
            c.counter(Track::search(), "dp/frontier states", ts, kept.len() as f64);
            c.counter(Track::search(), "dp/frontier width", ts, width as f64);
            c.max_total("dp/frontier_width_max", width as f64);
        }

        // Restore key order for the next cut's iteration (reference iterates
        // its BTreeMap in key order).
        kept.sort_by(|a, b| a.specs.cmp(&b.specs));

        cur = kept.clone();
        records.push(CutRecord { combos, kept });
        prev_cross = next_cross;
    }

    if let Some(c) = obs {
        c.add_total("dp/prune_dominated", pruned_dominated as f64);
        c.add_total("dp/prune_beam", pruned_beam as f64);
    }

    // Final state: minimum cost, last-minimum in key order (matches the
    // reference's `min_by` over a BTreeMap).
    let mut best = 0usize;
    for (i, cand) in cur.iter().enumerate() {
        if cand.cost.partial_cmp(&cur[best].cost).expect("finite costs").is_le() {
            best = i;
        }
    }
    let total_cost = cur[best].cost;

    // Walk the winning path backwards; every bundle is fresh at exactly one
    // cut, so applying each cut's combo resolves every touched bundle.
    let mut bundle_spec: Vec<TensorSpec> = vec![TensorSpec::Replicated; bundles.count];
    let mut idx = best;
    for gi in (0..cg.groups.len()).rev() {
        let rec = &records[gi];
        let cand = &rec.kept[idx];
        for &(b, s) in &rec.combos[cand.combo as usize] {
            bundle_spec[b] = s;
        }
        idx = cand.prev as usize;
    }

    // Recompute each class's winning strategy from the final specs: the
    // same deterministic first-minimum scan the DP ran, on the same specs,
    // yields the same index.
    let spec_of = |t: TensorId| bundle_spec[bundles.of_tensor[t.0]];
    let tensor_spec: Vec<TensorSpec> =
        (0..view.len()).map(|t| bundle_spec[bundles.of_tensor[t]]).collect();
    let mut class_pick: Vec<Option<usize>> = vec![None; classes.len()];
    let mut node_choice: Vec<NodeChoice> = Vec::with_capacity(g.num_nodes());
    for id in g.node_ids() {
        let ci = cg.class_of[id.0];
        let info = classes[ci].as_ref().expect("class exists");
        if info.is_ewise {
            node_choice.push(NodeChoice::Ewise(bundle_spec[info.own_bundle]));
        } else {
            let idx = match class_pick[ci] {
                Some(i) => i,
                None => {
                    let (_, choice) =
                        class_cost(g, view, extra, info, &spec_of, opts).ok_or_else(|| {
                            CoreError::Internal(format!(
                                "winning plan infeasible for class {ci}"
                            ))
                        })?;
                    let i = choice.ok_or_else(|| {
                        CoreError::Internal(format!("no strategy recorded for class {ci}"))
                    })?;
                    class_pick[ci] = Some(i);
                    i
                }
            };
            node_choice.push(NodeChoice::Strategy(info.strategies[idx].clone()));
        }
    }

    let plan =
        StepPlan { ways: opts.ways, tensor_spec, node_choice, comm_bytes: total_cost };
    if let Some(f) = flight {
        f.fill(&plan);
    }
    Ok(plan)
}

/// Enumerates assignments over the given bundles; falls back to a greedy +
/// coordinate-descent scheme when the product exceeds the bound.
fn enumerate_assignments(
    bundles_to_assign: &[usize],
    legal: &[Vec<TensorSpec>],
    bound: usize,
) -> Vec<Vec<(usize, TensorSpec)>> {
    let mut product = 1usize;
    for &b in bundles_to_assign {
        product = product.saturating_mul(legal[b].len());
        if product > bound {
            break;
        }
    }
    if product <= bound {
        // Full cartesian product.
        let mut out: Vec<Vec<(usize, TensorSpec)>> = vec![Vec::new()];
        for &b in bundles_to_assign {
            let mut next = Vec::with_capacity(out.len() * legal[b].len());
            for partial in &out {
                for &s in &legal[b] {
                    let mut p = partial.clone();
                    p.push((b, s));
                    next.push(p);
                }
            }
            out = next;
        }
        out
    } else {
        // Bounded: enumerate the largest-legal-set bundles one at a time
        // around a default assignment (first legal spec each). This loses
        // optimality but keeps the search tractable for degenerate graphs.
        let default: Vec<(usize, TensorSpec)> =
            bundles_to_assign.iter().map(|&b| (b, legal[b][0])).collect();
        let mut out = vec![default.clone()];
        for (i, &b) in bundles_to_assign.iter().enumerate() {
            for &s in legal[b].iter().skip(1) {
                let mut v = default.clone();
                v[i] = (b, s);
                out.push(v);
                if out.len() >= bound {
                    return out;
                }
            }
        }
        out
    }
}

/// Cost of one class under a full spec assignment; `None` when no feasible
/// strategy exists. Returns the chosen strategy index for non-ewise classes.
fn class_cost(
    g: &Graph,
    view: &ShapeView,
    extra: &ExtraInputs,
    info: &ClassInfo,
    spec: &impl Fn(TensorId) -> TensorSpec,
    opts: &DpOptions,
) -> Option<(f64, Option<usize>)> {
    if info.is_ewise {
        let class_spec = spec(g.node(info.rep).output);
        // Every member's inputs must arrive partitioned identically; sum the
        // mismatch cost over all coalesced members.
        let mut cost = 0.0;
        for &m in &info.members {
            let node = g.node(m);
            for &t in &node.inputs {
                let shape = view.shape(t);
                let req = ewise_req(class_spec, shape);
                cost += input_fetch_bytes(shape, spec(t), &req, opts.ways);
            }
            for (_, t) in extra.of_node(m) {
                let shape = view.shape(t);
                let req = ewise_req(class_spec, shape);
                cost += input_fetch_bytes(shape, spec(t), &req, opts.ways);
            }
            // Output respec: the class computes its outputs in `class_spec`
            // by construction, which is also the bundle spec -> free.
        }
        return Some((cost, None));
    }

    // Non-ewise: the whole class shares one strategy; pick the cheapest over
    // the summed per-member costs (first/last timesteps may read different
    // bundles than interior ones).
    let mut best: Option<(f64, usize)> = None;
    for (idx, st) in info.strategies.iter().enumerate() {
        let mut total = 0.0;
        for &m in &info.members {
            let node = g.node(m);
            let out_shape = view.shape(node.output);
            for (i, &t) in node.inputs.iter().enumerate() {
                let req = st.inputs.get(i).cloned().unwrap_or(ConcreteReq::Unused);
                total += input_fetch_bytes(view.shape(t), spec(t), &req, opts.ways);
            }
            for (for_input, t) in extra.of_node(m) {
                // The buffer is a slab of the original input: splitting it
                // the way the strategy needs is free; anything else costs
                // like the input itself.
                let req = st.inputs.get(for_input).cloned().unwrap_or(ConcreteReq::Unused);
                total += input_fetch_bytes(view.shape(t), spec(t), &req, opts.ways);
            }
            total += match st.out {
                ConcreteOut::Split(c) => {
                    respec_bytes(out_shape, TensorSpec::Split(c), spec(node.output), opts.ways)
                }
                ConcreteOut::Reduce => output_bytes(out_shape, ConcreteOut::Reduce, opts.ways),
            };
        }
        if best.map(|(b, _)| total < b).unwrap_or(true) {
            best = Some((total, idx));
        }
    }
    best.map(|(c, idx)| (c, Some(idx)))
}

fn ewise_req(class_spec: TensorSpec, shape: &Shape) -> ConcreteReq {
    match class_spec {
        TensorSpec::Split(d) if d < shape.rank() => ConcreteReq::Split { dim: d, halo: 0.0 },
        _ => ConcreteReq::Replicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::coarsen;
    use tofu_graph::{autodiff, Attrs};

    fn matmul_chain(batch: usize, dims: &[usize]) -> (Graph, Vec<TensorId>) {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![batch, dims[0]]));
        let mut weights = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            let wt = g.add_weight(&format!("w{i}"), Shape::new(vec![w[0], w[1]]));
            weights.push(wt);
            t = g.add_op("matmul", &format!("fc{i}"), &[t, wt], Attrs::new()).unwrap();
        }
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let loss = g.add_op("softmax_ce", "loss", &[t, labels], Attrs::new()).unwrap();
        autodiff::backward(&mut g, loss, &weights).unwrap();
        (g, weights)
    }

    fn run_dp(g: &Graph) -> StepPlan {
        let view = ShapeView::from_graph(g);
        let cg = coarsen(g);
        search(g, &view, &cg, &ExtraInputs::new(), &DpOptions::default()).unwrap()
    }

    #[test]
    fn single_matmul_training_step_has_plan() {
        let (g, _) = matmul_chain(8, &[16, 10]);
        let plan = run_dp(&g);
        assert_eq!(plan.ways, 2);
        assert_eq!(plan.node_choice.len(), g.num_nodes());
        assert!(plan.comm_bytes.is_finite());
        // Every tensor received a spec.
        assert_eq!(plan.tensor_spec.len(), g.num_tensors());
    }

    #[test]
    fn deep_chain_plan_cost_is_reasonable() {
        let (g, _) = matmul_chain(8, &[32, 64, 64, 10]);
        let plan = run_dp(&g);
        // The plan must be cheaper than all-replication of all weights.
        let weight_bytes: u64 = g.weight_bytes();
        assert!(plan.comm_bytes < 3.0 * weight_bytes as f64 + 1e6);
    }

    #[test]
    fn batch_split_is_chosen_for_data_parallel_friendly_graph() {
        // With a big batch and small weights, splitting the batch dimension
        // everywhere (data parallelism within the group) is optimal: weights
        // replicated (their fetch is cheap), activations split along dim 0.
        let (g, _) = matmul_chain(1024, &[4, 4]);
        let plan = run_dp(&g);
        let x = g.tensor_by_name("x").unwrap();
        assert_eq!(plan.spec(x), TensorSpec::Split(0));
    }

    #[test]
    fn huge_weights_prefer_model_parallelism() {
        // Tiny batch, enormous weight: the weight must not be replicated;
        // the DP should split it and pay for the small activations instead.
        let (g, weights) = matmul_chain(2, &[2048, 2048]);
        let plan = run_dp(&g);
        let w_spec = plan.spec(weights[0]);
        assert!(matches!(w_spec, TensorSpec::Split(_)), "weight replicated: {w_spec:?}");
    }

    #[test]
    fn disallowing_reduce_increases_cost() {
        let (g, _) = matmul_chain(64, &[256, 256, 10]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let with = search(&g, &view, &cg, &ExtraInputs::new(), &DpOptions::default()).unwrap();
        let without = search(
            &g,
            &view,
            &cg,
            &ExtraInputs::new(),
            &DpOptions { allow_reduce: false, ..DpOptions::default() },
        )
        .unwrap();
        assert!(without.comm_bytes >= with.comm_bytes);
    }

    #[test]
    fn four_way_step_works() {
        let (g, _) = matmul_chain(16, &[32, 32]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let plan = search(
            &g,
            &view,
            &cg,
            &ExtraInputs::new(),
            &DpOptions { ways: 4, ..DpOptions::default() },
        )
        .unwrap();
        assert_eq!(plan.ways, 4);
    }

    #[test]
    fn one_way_step_is_rejected() {
        let (g, _) = matmul_chain(4, &[4, 4]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        for tuning in [SearchTuning::default(), SearchTuning::reference()] {
            let err = search(
                &g,
                &view,
                &cg,
                &ExtraInputs::new(),
                &DpOptions { ways: 1, tuning, ..DpOptions::default() },
            )
            .unwrap_err();
            assert!(matches!(err, CoreError::BadWorkerCount(1)));
        }
    }

    #[test]
    fn extra_inputs_participate() {
        let (g, _) = matmul_chain(8, &[16, 10]);
        let cg = coarsen(&g);
        let mut view = ShapeView::from_graph(&g);
        // Attach a fetch buffer for fc0's weight input.
        let fc0 = g.producer(g.tensor_by_name("fc0:out").unwrap()).unwrap();
        let pseudo = TensorId(g.num_tensors());
        let mut extra = ExtraInputs::new();
        extra.push(fc0, 1, pseudo);
        view.push(Shape::new(vec![8, 10]));
        let plan = search(&g, &view, &cg, &extra, &DpOptions::default()).unwrap();
        assert_eq!(plan.tensor_spec.len(), g.num_tensors() + 1);
    }

    #[test]
    fn optimized_matches_reference_on_chains() {
        for (batch, dims) in
            [(8usize, vec![16usize, 10]), (64, vec![128, 64, 32]), (2, vec![512, 512])]
        {
            let (g, _) = matmul_chain(batch, &dims);
            let view = ShapeView::from_graph(&g);
            let cg = coarsen(&g);
            let extra = ExtraInputs::new();
            let opt =
                search(&g, &view, &cg, &extra, &DpOptions::default()).unwrap();
            let reference = search(
                &g,
                &view,
                &cg,
                &extra,
                &DpOptions { tuning: SearchTuning::reference(), ..DpOptions::default() },
            )
            .unwrap();
            assert_eq!(
                opt.comm_bytes.to_bits(),
                reference.comm_bytes.to_bits(),
                "cost mismatch at batch={batch} dims={dims:?}"
            );
            assert_eq!(opt.tensor_spec, reference.tensor_spec);
        }
    }

    #[test]
    fn plan_cache_round_trips_identical_queries() {
        let (g, _) = matmul_chain(16, &[32, 16]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let extra = ExtraInputs::new();
        let caches = SearchCaches::new();
        let opts = DpOptions::default();
        let a = search_with_caches(&g, &view, &cg, &extra, &opts, &caches, None).unwrap();
        let b = search_with_caches(&g, &view, &cg, &extra, &opts, &caches, None).unwrap();
        assert_eq!(caches.stats().plan_hits, 1);
        assert_eq!(a.comm_bytes.to_bits(), b.comm_bytes.to_bits());
        assert_eq!(a.tensor_spec, b.tensor_spec);
    }
}
