//! Deterministic fault injection.
//!
//! A [`FaultPlan`] in [`RunOptions`](crate::RunOptions) names exactly which
//! failures to inject and where: kill or panic a worker at a chosen schedule
//! position, tamper with the n-th message on a chosen link (drop, duplicate,
//! corrupt, delay), or force a buffer-pool over-budget event. Injection
//! points are schedule positions and per-link message indices — both
//! deterministic for a given sharded graph — so every run of a plan exercises
//! the identical failure path.
//!
//! Each fault carries a [`FaultPersistence`]: `Transient` faults fire
//! **once** per [`FaultState`] (and `run_with_recovery` shares one state
//! across retries, so the retry observes a healthy world and can validate
//! the checkpoint-restart path), while `Permanent` faults re-fire on every
//! attempt — modelling a device that is gone for good, the trigger for
//! elastic degraded-mode recovery. Fault worker indices name **physical**
//! devices: when elastic recovery shrinks the worker set, surviving logical
//! workers keep querying the state under their original physical ids, so a
//! permanent fault follows its device and disappears with it.
//!
//! [`FaultRng`] is a small deterministic generator (SplitMix64) for deriving
//! fault sites from a seed — used by the `fault_matrix` bench and tests to
//! sweep schedule positions without hand-picking them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What to do to one targeted cross-worker message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Swallow the message (the wire loses it).
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Flip a payload bit after the checksum is computed.
    Corrupt,
    /// Hold the message back for the given time before sending.
    Delay(Duration),
}

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Worker `worker` dies silently just before executing schedule
    /// position `pos` (clamped to its last position).
    Kill {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which it dies.
        pos: usize,
    },
    /// Worker `worker` panics just before executing schedule position `pos`.
    Panic {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which it panics.
        pos: usize,
    },
    /// Tamper with the `index`-th message (0-based, in send order, startup
    /// sends included) that `src` pushes to `dst`.
    Message {
        /// Sending worker.
        src: usize,
        /// Receiving worker.
        dst: usize,
        /// 0-based message index on the `src → dst` link.
        index: u64,
        /// What to do to it.
        action: MessageFault,
    },
    /// Clamp worker `worker`'s buffer-pool budget below its current
    /// occupancy just before schedule position `pos`, forcing the next
    /// `apply` to fail with an over-budget pool error.
    PoolOverBudget {
        /// Victim worker.
        worker: usize,
        /// Local schedule position at which the budget clamps.
        pos: usize,
    },
}

/// Whether an injected fault models a glitch or a lasting condition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPersistence {
    /// Fires once per [`FaultState`]; retries observe a healthy world.
    #[default]
    Transient,
    /// Re-fires on every attempt that reaches the injection site: the
    /// device (or link) is broken for good. Retrying at the same width can
    /// never succeed — only removing the target from the topology can.
    Permanent,
}

/// One fault plus its persistence mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failure to inject.
    pub fault: Fault,
    /// Transient (fire once) or permanent (re-fire every attempt).
    pub persistence: FaultPersistence,
}

/// The full set of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults to inject; order is irrelevant.
    pub faults: Vec<InjectedFault>,
}

impl FaultPlan {
    /// An empty plan (no injection).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single transient fault.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan::default().with(fault)
    }

    /// A plan with a single permanent fault.
    pub fn single_permanent(fault: Fault) -> FaultPlan {
        FaultPlan::default().with_permanent(fault)
    }

    /// Adds a transient fault, builder style.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(InjectedFault { fault, persistence: FaultPersistence::Transient });
        self
    }

    /// Adds a permanent fault, builder style.
    pub fn with_permanent(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(InjectedFault { fault, persistence: FaultPersistence::Permanent });
        self
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Deterministic SplitMix64 stream for deriving fault sites from a seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream seeded by `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "FaultRng::below(0)");
        self.next_u64() % n
    }
}

/// A step fault that fired at a worker's schedule position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepFault {
    Kill,
    Panic,
    PoolOverBudget,
}

/// Shared injection state of a plan. One `FaultState` spans every retry of a
/// `run_with_recovery` call (and every width of an elastic ladder), so each
/// *transient* fault is observed by exactly one attempt while *permanent*
/// faults keep firing for as long as their device stays in the topology.
#[derive(Debug)]
pub(crate) struct FaultState {
    faults: Vec<(InjectedFault, AtomicBool)>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> FaultState {
        FaultState {
            faults: plan.faults.iter().map(|f| (f.clone(), AtomicBool::new(false))).collect(),
        }
    }

    /// Whether fault `i` fires now: permanent faults always do, transient
    /// faults only on the first call.
    fn fire(&self, i: usize) -> bool {
        match self.faults[i].0.persistence {
            FaultPersistence::Permanent => true,
            FaultPersistence::Transient => !self.faults[i].1.swap(true, Ordering::AcqRel),
        }
    }

    /// The step faults (kill/panic/pool) firing for physical device `worker`
    /// just before its local schedule position `pos`. `last` is the worker's
    /// final position, used to clamp out-of-range injection sites so "late"
    /// faults on short schedules still fire; `start` is the position the
    /// attempt resumed from, so a permanent fault planted *before* the
    /// resume cut still kills the attempt at its first step instead of
    /// silently becoming unreachable.
    pub(crate) fn step_faults(
        &self,
        worker: usize,
        pos: usize,
        last: usize,
        start: usize,
    ) -> Vec<StepFault> {
        let mut out = Vec::new();
        for (i, (f, _)) in self.faults.iter().enumerate() {
            let (w, p, kind) = match &f.fault {
                Fault::Kill { worker, pos } => (*worker, *pos, StepFault::Kill),
                Fault::Panic { worker, pos } => (*worker, *pos, StepFault::Panic),
                Fault::PoolOverBudget { worker, pos } => {
                    (*worker, *pos, StepFault::PoolOverBudget)
                }
                Fault::Message { .. } => continue,
            };
            if w == worker && p.min(last).max(start) == pos && self.fire(i) {
                out.push(kind);
            }
        }
        out
    }

    /// The message fault (if any) targeting the `index`-th message that
    /// physical device `src` pushes to physical device `dst`.
    pub(crate) fn message_action(
        &self,
        src: usize,
        dst: usize,
        index: u64,
    ) -> Option<MessageFault> {
        for (i, (f, _)) in self.faults.iter().enumerate() {
            if let Fault::Message { src: s, dst: d, index: n, action } = &f.fault {
                if *s == src && *d == dst && *n == index && self.fire(i) {
                    return Some(*action);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_faults_fire_once() {
        let st = FaultState::new(&FaultPlan::single(Fault::Kill { worker: 1, pos: 3 }));
        assert!(st.step_faults(0, 3, 10, 0).is_empty(), "wrong worker");
        assert!(st.step_faults(1, 2, 10, 0).is_empty(), "wrong position");
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill]);
        assert!(st.step_faults(1, 3, 10, 0).is_empty(), "transient faults are one-shot");
    }

    #[test]
    fn permanent_faults_refire_every_attempt() {
        let st = FaultState::new(&FaultPlan::single_permanent(Fault::Kill { worker: 1, pos: 3 }));
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill]);
        assert_eq!(st.step_faults(1, 3, 10, 0), vec![StepFault::Kill], "permanent re-fires");
        // An attempt resumed past the injection site still dies — at its
        // first position, because the dead device is dead everywhere.
        assert!(st.step_faults(1, 6, 10, 5).is_empty());
        assert_eq!(st.step_faults(1, 5, 10, 5), vec![StepFault::Kill]);
    }

    #[test]
    fn out_of_range_position_clamps_to_last() {
        let st = FaultState::new(&FaultPlan::single(Fault::Panic { worker: 0, pos: 99 }));
        assert!(st.step_faults(0, 4, 5, 0).is_empty());
        assert_eq!(st.step_faults(0, 5, 5, 0), vec![StepFault::Panic]);
    }

    #[test]
    fn message_action_matches_link_and_index() {
        let st = FaultState::new(&FaultPlan::single(Fault::Message {
            src: 0,
            dst: 2,
            index: 1,
            action: MessageFault::Drop,
        }));
        assert_eq!(st.message_action(0, 2, 0), None);
        assert_eq!(st.message_action(1, 2, 1), None);
        assert_eq!(st.message_action(0, 2, 1), Some(MessageFault::Drop));
        assert_eq!(st.message_action(0, 2, 1), None, "message faults are one-shot");
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(FaultRng::new(1).below(10) < 10);
    }
}
