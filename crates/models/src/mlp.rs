//! Multi-layer perceptron training graphs (the paper's Fig. 5 example).

use tofu_graph::{autodiff, Attrs, Graph};

use crate::BuiltModel;
use tofu_tensor::Shape;

/// Configuration of an MLP.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Mini-batch size.
    pub batch: usize,
    /// Layer widths, input first: `dims[0] -> dims[1] -> … -> classes`.
    pub dims: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Add SGD update nodes (the optimizer segment of §5.1).
    pub with_updates: bool,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig { batch: 32, dims: vec![128, 128, 128], classes: 16, with_updates: true }
    }
}

/// Builds an MLP training graph: `matmul -> bias_add -> sigmoid` per layer,
/// softmax cross-entropy loss, backward pass and (optionally) SGD updates.
pub fn mlp(cfg: &MlpConfig) -> tofu_graph::Result<BuiltModel> {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new(vec![cfg.batch, cfg.dims[0]]));
    let labels = g.add_input("labels", Shape::new(vec![cfg.batch]));
    let mut weights = Vec::new();
    let mut t = x;
    let widths: Vec<usize> = cfg.dims.iter().copied().chain([cfg.classes]).collect();
    for (i, pair) in widths.windows(2).enumerate() {
        let w = g.add_weight(&format!("w{i}"), Shape::new(vec![pair[0], pair[1]]));
        let b = g.add_weight(&format!("b{i}"), Shape::new(vec![pair[1]]));
        weights.push(w);
        weights.push(b);
        t = g.add_op("matmul", &format!("fc{i}"), &[t, w], Attrs::new())?;
        t = g.add_op("bias_add", &format!("bias{i}"), &[t, b], Attrs::new().with_int("axis", 1))?;
        if i + 2 < widths.len() {
            t = g.add_op("sigmoid", &format!("act{i}"), &[t], Attrs::new())?;
        }
    }
    let loss = g.add_op("softmax_ce", "loss", &[t, labels], Attrs::new())?;
    let info = autodiff::backward(&mut g, loss, &weights)?;
    let grads: Vec<_> =
        weights.iter().filter_map(|&w| info.grad(w).map(|gw| (w, gw))).collect();
    if cfg.with_updates {
        for (i, &(w, gw)) in grads.iter().enumerate() {
            g.add_op(
                "sgd_update",
                &format!("upd{i}"),
                &[w, gw],
                Attrs::new().with_float("lr", 0.01),
            )?;
        }
    }
    Ok(BuiltModel { graph: g, loss, weights, inputs: vec![x, labels], grads, batch: cfg.batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mlp_builds() {
        let m = mlp(&MlpConfig::default()).unwrap();
        assert!(m.graph.num_nodes() > 10);
        assert_eq!(m.grads.len(), m.weights.len());
        assert_eq!(m.graph.tensor(m.loss).shape.rank(), 0);
    }

    #[test]
    fn weight_bytes_match_dims() {
        let cfg = MlpConfig { batch: 4, dims: vec![8, 16], classes: 4, with_updates: false };
        let m = mlp(&cfg).unwrap();
        // w0 8x16 + b0 16 + w1 16x4 + b1 4 = 128 + 16 + 64 + 4 = 212 floats.
        assert_eq!(m.weight_bytes(), 212 * 4);
    }

    #[test]
    fn updates_toggle() {
        let with = mlp(&MlpConfig::default()).unwrap();
        let without =
            mlp(&MlpConfig { with_updates: false, ..MlpConfig::default() }).unwrap();
        assert!(with.graph.num_nodes() > without.graph.num_nodes());
    }
}
