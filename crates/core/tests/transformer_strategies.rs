//! Strategy-discovery regression tests for the transformer decoder workload.
//!
//! The known-good hand partition of a decoder block is megatron-style:
//! head-parallel attention (split the QKV projections along the head
//! dimension, keep the attention matmuls head-local, allreduce the output
//! projection) and column/row-parallel MLP (split the first matmul's output
//! columns, reduce the second matmul's inner dimension). These tests pin down
//! that Tofu's interval-analysis + DP search *discovers* that structure from
//! the TDL descriptions alone, at every recursion depth, and that an
//! unpartitionable configuration surfaces the typed [`CoreError::NoStrategy`]
//! instead of panicking.

use tofu_core::{partition, CoreError, NodeChoice, PartitionOptions, PartitionPlan};
use tofu_graph::{Graph, NodeId};
use tofu_models::{decoder_block, DecoderConfig};

/// The chosen strategy id of the named node in one recursion step, or a
/// description of its elementwise co-partition.
fn chosen(g: &Graph, plan: &PartitionPlan, step: usize, name: &str) -> String {
    let id = (0..g.num_nodes())
        .map(NodeId)
        .find(|&n| g.node(n).name == name)
        .unwrap_or_else(|| panic!("no node named {name}"));
    match &plan.steps[step].plan.node_choice[id.0] {
        NodeChoice::Strategy(s) => s.id.clone(),
        NodeChoice::Ewise(spec) => format!("ewise:{spec:?}"),
    }
}

/// Megatron-style expectations that must hold in *every* recursion step.
const MEGATRON: &[(&str, &str)] = &[
    ("q_proj", "split:h"),   // column-parallel QKV: weight split by head
    ("k_proj", "split:h"),
    ("v_proj", "split:h"),
    ("scores", "split:b"),   // attention stays head-local
    ("probs", "split:d0"),   // softmax over keys, split across heads
    ("ctx", "split:b"),
    ("attn_out", "reduce:h"), // row-parallel output projection (allreduce)
    ("ffn1", "split:j"),      // column-parallel first MLP matmul
    ("ffn2", "reduce:k"),     // row-parallel second MLP matmul
];

#[test]
fn search_discovers_megatron_splits_at_2_4_8_workers() {
    let cfg = DecoderConfig { with_updates: false, ..DecoderConfig::default() };
    let m = decoder_block(&cfg).unwrap();
    for workers in [2usize, 4, 8] {
        let plan =
            partition(&m.graph, &PartitionOptions { workers, ..Default::default() }).unwrap();
        assert_eq!(plan.workers, workers);
        assert_eq!(plan.steps.len(), workers.trailing_zeros() as usize);
        for step in 0..plan.steps.len() {
            for &(node, want) in MEGATRON {
                let got = chosen(&m.graph, &plan, step, node);
                assert_eq!(
                    got, want,
                    "workers={workers} step={step}: node {node} chose {got}, \
                     expected the megatron-style {want}"
                );
            }
        }
    }
}

#[test]
fn backward_pass_mirrors_the_forward_split() {
    // The gradient ops must inherit the head-parallel structure: weight
    // gradients stay split by head, activation gradients allreduce over
    // heads (the mirror image of the forward reduce).
    let cfg = DecoderConfig { with_updates: false, ..DecoderConfig::default() };
    let m = decoder_block(&cfg).unwrap();
    let plan = partition(&m.graph, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
    for step in 0..plan.steps.len() {
        for proj in ["q_proj", "k_proj", "v_proj"] {
            assert_eq!(chosen(&m.graph, &plan, step, &format!("grad/{proj}/proj_heads_grad_w_1")), "split:h");
            assert_eq!(chosen(&m.graph, &plan, step, &format!("grad/{proj}/proj_heads_grad_x_0")), "reduce:h");
        }
        assert_eq!(chosen(&m.graph, &plan, step, "grad/attn_out/unproj_heads_grad_w_1"), "split:h");
        assert_eq!(chosen(&m.graph, &plan, step, "grad/attn_out/unproj_heads_grad_c_0"), "split:h");
    }
}

#[test]
fn unpartitionable_decoder_reports_no_strategy() {
    // heads=1 < workers and every tensor extent odd: no dimension anywhere
    // is divisible by 2, so the search must fail with the typed NoStrategy
    // error — never a panic, never a silent fallback.
    let cfg = DecoderConfig {
        seq: 3,
        d_model: 3,
        heads: 1,
        d_ff: 3,
        classes: 3,
        with_updates: false,
    };
    let m = decoder_block(&cfg).unwrap();
    for workers in [2usize, 4] {
        let err = partition(&m.graph, &PartitionOptions { workers, ..Default::default() })
            .unwrap_err();
        assert!(
            matches!(err, CoreError::NoStrategy { .. }),
            "workers={workers}: expected NoStrategy, got {err}"
        );
    }
}

#[test]
fn fewer_heads_than_workers_still_partitions_via_other_axes() {
    // heads=2 at 8 workers: the head axis runs out after one halving, but
    // the sequence and feature axes keep the model partitionable — the
    // search must degrade gracefully rather than fail.
    let cfg = DecoderConfig { heads: 2, with_updates: false, ..DecoderConfig::default() };
    let m = decoder_block(&cfg).unwrap();
    let plan = partition(&m.graph, &PartitionOptions { workers: 8, ..Default::default() }).unwrap();
    assert_eq!(plan.steps.len(), 3);
    assert!(plan.total_comm_bytes() > 0.0);
}
