//! Matrix multiplication kernels.
//!
//! The forward and the two gradient variants (`N^T·dC` and `dC·N^T`) are the
//! workhorses of the RNN benchmarks; the paper notes (§7.2) that matrix
//! multiplication has much lower arithmetic density than convolution, which
//! is why shrinking the batch hurts RNNs more — the simulator's efficiency
//! model mirrors that.

use crate::{Result, Shape, Tensor, TensorError};

impl Tensor {
    /// Computes the matrix product `self · other` for rank-2 tensors.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul_impl(self, other, false, false)
    }

    /// Computes `self^T · other`.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        matmul_impl(self, other, true, false)
    }

    /// Computes `self · other^T`.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        matmul_impl(self, other, false, true)
    }

    /// Batched matrix product of rank-3 tensors: `out[b] = self[b] · other[b]`.
    pub fn matmul_b(&self, other: &Tensor) -> Result<Tensor> {
        batch_matmul_impl(self, other, false, false)
    }

    /// Batched `self[b]^T · other[b]`.
    pub fn matmul_b_tn(&self, other: &Tensor) -> Result<Tensor> {
        batch_matmul_impl(self, other, true, false)
    }

    /// Batched `self[b] · other[b]^T`.
    pub fn matmul_b_nt(&self, other: &Tensor) -> Result<Tensor> {
        batch_matmul_impl(self, other, false, true)
    }
}

fn batch_matmul_impl(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Result<Tensor> {
    if a.shape().rank() != 3 || b.shape().rank() != 3 {
        return Err(TensorError::Incompatible(format!(
            "batched matmul requires rank-3 operands, got {} and {}",
            a.shape(),
            b.shape()
        )));
    }
    let nb = a.shape().dim(0);
    if b.shape().dim(0) != nb {
        return Err(TensorError::Incompatible(format!(
            "batch dims {} vs {}",
            nb,
            b.shape().dim(0)
        )));
    }
    let (ar, ac) = (a.shape().dim(1), a.shape().dim(2));
    let (br, bc) = (b.shape().dim(1), b.shape().dim(2));
    let (m, k1) = if ta { (ac, ar) } else { (ar, ac) };
    let (k2, n) = if tb { (bc, br) } else { (br, bc) };
    if k1 != k2 {
        return Err(TensorError::Incompatible(format!(
            "batched matmul inner dims {k1} vs {k2} (shapes {} and {})",
            a.shape(),
            b.shape()
        )));
    }
    let mut out = vec![0.0f32; nb * m * n];
    let ad = a.data();
    let bd = b.data();
    // Same packing trick as the rank-2 kernel, once per batch: transposed
    // operands become contiguous row-major scratch so the inner loop is
    // unit-stride; per-output-element accumulation order over `p` is the
    // ascending-k order the rank-2 kernel uses, so a per-batch slice +
    // `matmul` decomposition is bit-identical.
    let mut a_scratch = vec![0.0f32; if ta { m * k1 } else { 0 }];
    let mut b_scratch = vec![0.0f32; if tb { k1 * n } else { 0 }];
    for ib in 0..nb {
        let abatch = &ad[ib * ar * ac..(ib + 1) * ar * ac];
        let bbatch = &bd[ib * br * bc..(ib + 1) * br * bc];
        let a_rows: &[f32] = if ta {
            for (p, arow) in abatch.chunks_exact(ac).enumerate() {
                for (i, &v) in arow.iter().enumerate() {
                    a_scratch[i * k1 + p] = v;
                }
            }
            &a_scratch
        } else {
            abatch
        };
        let b_rows: &[f32] = if tb {
            for (j, brow) in bbatch.chunks_exact(bc).enumerate() {
                for (p, &v) in brow.iter().enumerate() {
                    b_scratch[p * n + j] = v;
                }
            }
            &b_scratch
        } else {
            bbatch
        };
        let obatch = &mut out[ib * m * n..(ib + 1) * m * n];
        for i in 0..m {
            let arow = &a_rows[i * k1..(i + 1) * k1];
            let row = &mut obatch[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b_rows[p * n..p * n + n];
                for (r, &bv) in row.iter_mut().zip(brow) {
                    *r += av * bv;
                }
            }
        }
    }
    Tensor::from_vec(Shape::new(vec![nb, m, n]), out)
}

fn matmul_impl(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::Incompatible(format!(
            "matmul requires rank-2 operands, got {} and {}",
            a.shape(),
            b.shape()
        )));
    }
    let (m, k1) = if ta { (a.shape().dim(1), a.shape().dim(0)) } else { (a.shape().dim(0), a.shape().dim(1)) };
    let (k2, n) = if tb { (b.shape().dim(1), b.shape().dim(0)) } else { (b.shape().dim(0), b.shape().dim(1)) };
    if k1 != k2 {
        return Err(TensorError::Incompatible(format!(
            "matmul inner dims {k1} vs {k2} (shapes {} and {})",
            a.shape(),
            b.shape()
        )));
    }
    let mut out = vec![0.0f32; m * n];
    let ac = a.shape().dim(1);
    let bc = b.shape().dim(1);
    let ad = a.data();
    let bd = b.data();
    // Transposed operands are packed once into contiguous row-major buffers
    // (O(m·k + k·n) extra work against O(m·k·n) compute), so every inner
    // loop below walks unit-stride rows the autovectorizer turns into FMA
    // lanes — the strided `bd[j * bc + p]` gather this replaces defeated
    // both the cache and the vectorizer. Per-output-element accumulation
    // order over `p` is unchanged, so results stay bit-identical.
    let a_packed: Vec<f32>;
    let a_rows: &[f32] = if ta {
        a_packed = {
            let mut t = vec![0.0f32; m * k1];
            for (p, arow) in ad.chunks_exact(ac).enumerate() {
                for (i, &v) in arow.iter().enumerate() {
                    t[i * k1 + p] = v;
                }
            }
            t
        };
        &a_packed
    } else {
        ad
    };
    let b_packed: Vec<f32>;
    let b_rows: &[f32] = if tb {
        b_packed = {
            let mut t = vec![0.0f32; k1 * n];
            for (j, brow) in bd.chunks_exact(bc).enumerate() {
                for (p, &v) in brow.iter().enumerate() {
                    t[p * n + j] = v;
                }
            }
            t
        };
        &b_packed
    } else {
        bd
    };
    // No zero-skip here: kernel time must depend only on shapes, not data,
    // so per-op trace spans stay comparable (zero-heavy gradients would
    // otherwise run artificially fast).
    for i in 0..m {
        let arow = &a_rows[i * k1..(i + 1) * k1];
        let row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b_rows[p * n..p * n + n];
            for (r, &bv) in row.iter_mut().zip(brow) {
                *r += av * bv;
            }
        }
    }
    Tensor::from_vec(Shape::new(vec![m, n]), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::new(vec![rows, cols]), v).unwrap()
    }

    #[test]
    fn matmul_basic() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let i = m(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(2, 4, vec![1., 0., 2., 1., 3., 1., 0., 2.]);
        let expect = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(a.matmul_tn(&b).unwrap(), expect);

        let c = m(4, 3, (0..12).map(|x| x as f32).collect());
        let expect = a.matmul(&c.transpose().unwrap()).unwrap();
        assert_eq!(a.matmul_nt(&c).unwrap(), expect);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = m(2, 3, vec![0.0; 6]);
        let b = m(2, 3, vec![0.0; 6]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_tn(&b).is_ok());
        assert!(a.matmul_nt(&b).is_ok());
    }

    #[test]
    fn matmul_requires_rank_two() {
        let a = Tensor::arange(4);
        let b = m(2, 2, vec![0.0; 4]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn batched_matmul_matches_per_batch_slices() {
        let a = Tensor::from_vec(
            Shape::new(vec![2, 2, 3]),
            (0..12).map(|x| (x as f32).sin()).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            Shape::new(vec![2, 3, 2]),
            (0..12).map(|x| (x as f32).cos()).collect(),
        )
        .unwrap();
        let c = a.matmul_b(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2, 2]);
        for ib in 0..2 {
            let ab = a.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![2, 3])).unwrap();
            let bb = b.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![3, 2])).unwrap();
            let cb = c.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![2, 2])).unwrap();
            // Bit-identical, not just close: same accumulation order.
            assert_eq!(ab.matmul(&bb).unwrap(), cb);
        }
    }

    #[test]
    fn batched_transposed_variants_match_explicit() {
        let a = Tensor::from_vec(
            Shape::new(vec![2, 3, 2]),
            (0..12).map(|x| (x as f32 * 0.3).sin()).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            Shape::new(vec![2, 3, 4]),
            (0..24).map(|x| (x as f32 * 0.7).cos()).collect(),
        )
        .unwrap();
        // Aᵀ·B per batch.
        let c = a.matmul_b_tn(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2, 4]);
        for ib in 0..2 {
            let ab = a.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![3, 2])).unwrap();
            let bb = b.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![3, 4])).unwrap();
            let cb = c.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![2, 4])).unwrap();
            assert!(ab.matmul_tn(&bb).unwrap().allclose(&cb, 1e-6));
        }
        // A·Bᵀ per batch.
        let d = b.matmul_b_nt(&b).unwrap();
        assert_eq!(d.shape().dims(), &[2, 3, 3]);
        for ib in 0..2 {
            let bb = b.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![3, 4])).unwrap();
            let db = d.slice(0, ib, ib + 1).unwrap().reshape(Shape::new(vec![3, 3])).unwrap();
            assert!(bb.matmul_nt(&bb).unwrap().allclose(&db, 1e-6));
        }
    }

    #[test]
    fn batched_matmul_validates_shapes() {
        let a = Tensor::zeros(Shape::new(vec![2, 2, 3]));
        let b = Tensor::zeros(Shape::new(vec![3, 3, 2]));
        assert!(a.matmul_b(&b).is_err(), "batch dim mismatch");
        let b = Tensor::zeros(Shape::new(vec![2, 2, 2]));
        assert!(a.matmul_b(&b).is_err(), "inner dim mismatch");
        let r2 = Tensor::zeros(Shape::new(vec![2, 2]));
        assert!(a.matmul_b(&r2).is_err(), "rank mismatch");
    }

    #[test]
    fn block_partitioned_matmul_matches_whole() {
        // The essence of partition-n-reduce for matmul: row-split A, col-split
        // B, and reduction over the inner dimension all reassemble to C.
        let a = m(4, 4, (0..16).map(|x| (x as f32).sin()).collect());
        let b = m(4, 4, (0..16).map(|x| (x as f32).cos()).collect());
        let c = a.matmul(&b).unwrap();

        // Row split of A -> row-concat of C.
        let a0 = a.slice(0, 0, 2).unwrap();
        let a1 = a.slice(0, 2, 4).unwrap();
        let c_rows = Tensor::concat(&[a0.matmul(&b).unwrap(), a1.matmul(&b).unwrap()], 0).unwrap();
        assert!(c_rows.allclose(&c, 1e-5));

        // Column split of B -> column-concat of C.
        let b0 = b.slice(1, 0, 2).unwrap();
        let b1 = b.slice(1, 2, 4).unwrap();
        let c_cols = Tensor::concat(&[a.matmul(&b0).unwrap(), a.matmul(&b1).unwrap()], 1).unwrap();
        assert!(c_cols.allclose(&c, 1e-5));

        // Inner split -> partial sums reduce to C (Case-2, output reduction).
        let ak0 = a.slice(1, 0, 2).unwrap();
        let ak1 = a.slice(1, 2, 4).unwrap();
        let bk0 = b.slice(0, 0, 2).unwrap();
        let bk1 = b.slice(0, 2, 4).unwrap();
        let c_red = ak0.matmul(&bk0).unwrap().add(&ak1.matmul(&bk1).unwrap()).unwrap();
        assert!(c_red.allclose(&c, 1e-5));
    }
}
