//! The machine model: an EC2 p2.8xlarge-like box (§7.1).
//!
//! 8 GPUs with 12 GB device memory each, PCI-e peer-to-peer at 21 GB/s
//! within a switch, a slower upper hierarchy level (two PCI-e trees joined
//! over the host), and a 10 GB/s CPU link *shared by all GPUs* — the
//! bottleneck that throttles the swapping baseline (§7.2).

/// Static machine description used by the cost model.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Number of GPU devices.
    pub gpus: usize,
    /// Device memory per GPU in bytes.
    pub mem_capacity: u64,
    /// Peak fp32 throughput per GPU (flops/s).
    pub peak_flops: f64,
    /// Effective device-memory bandwidth (bytes/s) for bandwidth-bound
    /// (element-wise/data) kernels.
    pub mem_bandwidth: f64,
    /// Kernel launch overhead per operator (seconds).
    pub launch_overhead: f64,
    /// Interconnect hierarchy: `(group_size, bytes_per_second)` sorted by
    /// group size; a transfer between two GPUs uses the bandwidth of the
    /// smallest group containing both.
    pub levels: Vec<(usize, f64)>,
    /// Host link bandwidth (bytes/s), shared by every GPU.
    pub cpu_bandwidth: f64,
}

impl Machine {
    /// The paper's testbed: p2.8xlarge with 8 K80 GPUs (12 GB each,
    /// 21 GB/s peer-to-peer PCI-e, 10 GB/s to the host).
    pub fn p2_8xlarge() -> Machine {
        Machine {
            gpus: 8,
            mem_capacity: 12 * (1 << 30),
            peak_flops: 2.8e12,
            mem_bandwidth: 160e9,
            launch_overhead: 10e-6,
            levels: vec![(2, 21e9), (4, 16e9), (8, 8e9)],
            cpu_bandwidth: 10e9,
        }
    }

    /// Bandwidth between two GPUs: the level of the smallest group that
    /// contains both under the natural binary hierarchy.
    pub fn link_bw(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return f64::INFINITY;
        }
        for &(size, bw) in &self.levels {
            if a / size == b / size {
                return bw;
            }
        }
        self.levels.last().map(|&(_, bw)| bw).unwrap_or(1e9)
    }

    /// Host-link bandwidth available to one GPU when `sharing` GPUs swap
    /// concurrently.
    pub fn cpu_bw_per_gpu(&self, sharing: usize) -> f64 {
        self.cpu_bandwidth / sharing.max(1) as f64
    }

    /// Device memory capacity in gigabytes.
    pub fn capacity_gb(&self) -> f64 {
        self.mem_capacity as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_matches_testbed() {
        let m = Machine::p2_8xlarge();
        assert_eq!(m.gpus, 8);
        assert!((m.capacity_gb() - 12.88).abs() < 0.1);
        assert_eq!(m.cpu_bandwidth, 10e9);
    }

    #[test]
    fn link_bandwidth_is_hierarchical() {
        let m = Machine::p2_8xlarge();
        // Same pair: fastest.
        assert_eq!(m.link_bw(0, 1), 21e9);
        assert_eq!(m.link_bw(6, 7), 21e9);
        // Same quad, different pair.
        assert_eq!(m.link_bw(0, 2), 16e9);
        // Across the two quads: slowest.
        assert_eq!(m.link_bw(0, 7), 8e9);
        assert_eq!(m.link_bw(3, 4), 8e9);
        // Self transfers are free.
        assert!(m.link_bw(5, 5).is_infinite());
    }

    #[test]
    fn cpu_bandwidth_is_shared() {
        let m = Machine::p2_8xlarge();
        assert_eq!(m.cpu_bw_per_gpu(8), 1.25e9);
        assert_eq!(m.cpu_bw_per_gpu(1), 10e9);
        assert_eq!(m.cpu_bw_per_gpu(0), 10e9);
    }
}
