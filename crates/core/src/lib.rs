//! Tofu's core contribution: automatic dataflow-graph partitioning.
//!
//! Given a training graph built with `tofu-graph`, this crate finds and
//! applies a partition plan that splits every tensor and parallelizes every
//! operator across `k` workers while minimizing total communication (§5 of
//! the paper):
//!
//! 1. [`coarsen`] groups forward/backward operators, coalesces element-wise
//!    runs and merges unrolled RNN timesteps (§5.1);
//! 2. [`dp`] searches one *basic step* (a 2-way split of every tensor along
//!    one dimension) by dynamic programming over the coarsened chain;
//! 3. [`recursive`] applies the DP recursively to reach `k = k1·…·km`
//!    workers (§5.2, Theorems 1–3);
//! 4. [`genplan`] expands the original graph into the per-worker partitioned
//!    graph with fused MultiFetch gathers, spread reductions and the
//!    memory-planner control dependencies (§6);
//! 5. [`baselines`] implements the §7.3 comparison partitioners
//!    (AllRow-Greedy, Spartan, EqualChop, ICML18) and [`flat`] measures the
//!    un-coarsened/non-recursive search space for Table 1.
//!
//! # Examples
//!
//! ```
//! use tofu_core::recursive::{partition, PartitionOptions};
//! use tofu_graph::{autodiff, Attrs, Graph};
//! use tofu_tensor::Shape;
//!
//! let mut g = Graph::new();
//! let x = g.add_input("x", Shape::new(vec![32, 64]));
//! let w = g.add_weight("w", Shape::new(vec![64, 16]));
//! let labels = g.add_input("labels", Shape::new(vec![32]));
//! let y = g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
//! let loss = g.add_op("softmax_ce", "loss", &[y, labels], Attrs::new()).unwrap();
//! autodiff::backward(&mut g, loss, &[w]).unwrap();
//!
//! let plan = partition(&g, &PartitionOptions { workers: 8, ..Default::default() }).unwrap();
//! assert_eq!(plan.steps.len(), 3); // 8 = 2 × 2 × 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cache;
pub mod coarsen;
pub mod dp;
pub mod error;
pub mod flat;
pub mod genplan;
pub mod recursive;
pub mod spec;
pub mod strategies;

pub use cache::{request_fingerprint, CacheSnapshot, CacheStats, SearchCaches};
pub use coarsen::{coarsen, CoarseGraph};
pub use dp::{DpOptions, ExtraInputs, NodeChoice, SearchTuning, StepPlan};
pub use error::CoreError;
pub use genplan::{fetch_pieces, generate, CommEdge, FetchPiece, GenOptions, Region, ShardedGraph};
pub use recursive::{
    factorize, partition, partition_cached, partition_shared, partition_with_obs, warm_widths,
    PartitionOptions, PartitionPlan,
};
pub use spec::{ConcreteOut, ConcreteReq, TensorSpec};
pub use strategies::{node_strategies, strategy_signature, NodeStrategy, ShapeView};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
