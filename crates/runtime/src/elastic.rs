//! Elastic degraded-mode recovery: survive permanent device loss by
//! re-partitioning onto the survivors and resharding checkpoints.
//!
//! The degradation ladder (DESIGN.md "Elastic recovery"):
//!
//! 1. **Transient retry.** Each worker count gets `max_attempts` runs,
//!    resuming from the latest consistent checkpoint with capped,
//!    deterministically jittered backoff between them — the plain
//!    [`run_with_recovery`](crate::run_with_recovery) behaviour.
//! 2. **Elastic shrink.** When a width exhausts its attempts, the worker the
//!    last failure blames is classified as *permanently lost*: its physical
//!    device leaves the topology, the partition search re-runs for the
//!    survivor count through [`partition_cached`] (warm [`SearchCaches`]
//!    make the replan a cache lookup, not a cold search), the last
//!    consistent checkpoint is reassembled into a plan-independent
//!    [`FullSnapshot`] and resharded onto the new plan, and execution
//!    resumes at the same original-graph barrier on the shrunk worker set.
//!    A [`DegradePolicy`] bounds the shrinking: minimum surviving workers,
//!    maximum shrink steps, and a per-device memory budget every new plan's
//!    static footprint is checked against before the shrink commits.
//! 3. **Typed surrender.** When the policy forbids further shrinking the
//!    ladder ends with [`RuntimeError::Unrecoverable`] naming every lost
//!    device and every width attempted — never a hang.
//!
//! Fault worker indices name **physical** devices: survivors keep their
//! physical identity across shrinks (`devices[logical] = physical`), so a
//! permanent fault follows its device and vanishes from the topology with
//! it, while faults on survivors keep firing at any width.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tofu_core::{
    generate, partition_cached, GenOptions, PartitionOptions, PartitionPlan, SearchCaches,
    ShardedGraph,
};
use tofu_graph::{plan_buffers, Graph, TensorId};
use tofu_obs::Track;
use tofu_tensor::Tensor;

use crate::checkpoint::{
    checkpoint_cuts, AttemptRecord, BackoffSchedule, BarrierUnit, CheckpointStore,
    RecoveryOptions, ResumePoint,
};
use crate::error::{RunFailure, RuntimeError};
use crate::fault::FaultState;
use crate::reshard::{assemble_snapshot, scatter_snapshot, FullSnapshot};
use crate::{run_attempt, validate, Result, RunOptions, RunOutput};

/// When and how far elastic recovery may shrink the worker set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Fewest surviving workers the run may degrade to (inclusive; values
    /// below 1 mean 1).
    pub min_workers: usize,
    /// Maximum number of shrink events (device removals).
    pub max_shrink_steps: usize,
    /// Per-device byte budget every candidate plan's static footprint
    /// (buffer-plan peak + persistent shards, the bytes the pools will
    /// actually hold) is checked against before a shrink commits.
    pub per_device_budget: Option<u64>,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy { min_workers: 1, max_shrink_steps: usize::MAX, per_device_budget: None }
    }
}

/// What an elastic run hands back: the final output plus the whole ladder's
/// history. `output.values` is keyed by `sharded`'s tensor ids — gather
/// originals with [`ShardedGraph::gather`] (or
/// [`gather_shards`](crate::gather_shards)) on the returned `sharded`.
#[derive(Debug)]
pub struct ElasticReport {
    /// The successful run's output, on the final worker set.
    pub output: RunOutput,
    /// The sharded graph of the final (successful) plan.
    pub sharded: ShardedGraph,
    /// The final partition plan.
    pub plan: PartitionPlan,
    /// Surviving physical devices, in logical-worker order.
    pub devices: Vec<usize>,
    /// Physical devices classified as permanently lost, in loss order.
    pub lost: Vec<usize>,
    /// Worker counts attempted, ladder order (full width first).
    pub widths: Vec<usize>,
    /// Total attempts consumed across all widths.
    pub attempts: usize,
    /// The failure of every aborted attempt, in order.
    pub failures: Vec<RunFailure>,
    /// Per attempt: the checkpoint it resumed from (`None` = from scratch).
    pub resumed_from: Vec<Option<usize>>,
    /// Per attempt: worker set, resume point and latency breakdown.
    pub history: Vec<AttemptRecord>,
    /// The plan-independent snapshot the final width resumed from, if any —
    /// feed it to [`resume_from_snapshot`](crate::resume_from_snapshot) at
    /// the surviving width to reproduce the degraded output bit for bit.
    pub snapshot: Option<FullSnapshot>,
}

/// Worst per-device static memory footprint of a plan: buffer-plan peak
/// plus persistent shard bytes, per worker — the same accounting the
/// runtime's pools replay.
fn worst_device_footprint(sharded: &ShardedGraph, buffer_reuse: bool) -> u64 {
    (0..sharded.workers)
        .map(|w| {
            let schedule = sharded.worker_schedule(w);
            plan_buffers(&sharded.graph, &schedule, buffer_reuse).mem.total_bytes()
        })
        .max()
        .unwrap_or(0)
}

/// [`run_with_recovery`](crate::run_with_recovery) extended with the elastic
/// ladder: takes the **original** graph and full-tensor feeds (partitioning
/// and scattering are re-done per width), retries transient failures at the
/// current width, shrinks past permanent ones per
/// [`RecoveryOptions::degrade`], and reshards checkpoints across plans so
/// progress survives the shrink. See the module docs for the ladder.
pub fn run_with_elastic_recovery(
    g: &Graph,
    feeds: &[(TensorId, Tensor)],
    part_opts: &PartitionOptions,
    opts: &RunOptions,
    recovery: &RecoveryOptions,
    caches: &mut SearchCaches,
) -> Result<ElasticReport> {
    let invalid = |m: &str| Err(RuntimeError::InvalidOptions(m.into()));
    if recovery.max_attempts == 0 {
        return invalid("max_attempts must be at least 1");
    }
    if part_opts.workers == 0 {
        return invalid("cannot run on zero workers");
    }
    if let Some(cp) = opts.checkpoint {
        if cp.unit != BarrierUnit::OriginalSteps {
            return invalid(
                "elastic recovery reshards checkpoints across plans; use the plan-independent \
                 barriers of CheckpointPolicy::every_original",
            );
        }
    }
    let obs = opts.collector.as_ref();
    let faults = FaultState::new(&opts.faults);
    let mut backoff = BackoffSchedule::from_recovery(recovery);

    let mut devices: Vec<usize> = (0..part_opts.workers).collect();
    let mut lost: Vec<usize> = Vec::new();
    let mut widths: Vec<usize> = Vec::new();
    let mut failures: Vec<RunFailure> = Vec::new();
    let mut resumed_from: Vec<Option<usize>> = Vec::new();
    let mut history: Vec<AttemptRecord> = Vec::new();
    let mut attempts = 0usize;
    let mut carried: Option<FullSnapshot> = None;
    let mut shrinks = 0usize;

    loop {
        let width = devices.len();
        widths.push(width);

        // (Re)partition for this width. `partition_cached` serves repeat
        // widths from the warm plan cache, so replans after the first width
        // are lookups rather than cold searches.
        let replan_started = Instant::now();
        let replan_t0 = obs.map(|c| c.now_us()).unwrap_or(0.0);
        let plan = partition_cached(
            g,
            &PartitionOptions { workers: width, ..*part_opts },
            caches,
            obs,
        )?;
        let sharded = generate(g, &plan, &GenOptions::default())?;
        let replan = replan_started.elapsed();
        if let Some(c) = obs {
            c.complete(
                Track::search(),
                "search",
                &format!("elastic replan ({width} workers)"),
                replan_t0,
                c.now_us(),
            );
            c.counter(Track::control(), "elastic/surviving_workers", c.now_us(), width as f64);
            if shrinks > 0 {
                c.add_total("elastic/replans", 1.0);
            }
        }
        if width == part_opts.workers {
            validate(&sharded, opts)?;
        }

        // Per-device budget gate: refuse to commit to a plan whose static
        // footprint cannot fit the surviving devices.
        if let Some(budget) = recovery.degrade.and_then(|d| d.per_device_budget) {
            let worst = worst_device_footprint(&sharded, opts.buffer_reuse);
            if worst > budget {
                let cause = RuntimeError::Pool {
                    worker: 0,
                    detail: format!(
                        "plan for {width} workers needs {worst} bytes/device, budget is {budget}"
                    ),
                };
                return Err(RuntimeError::Unrecoverable {
                    lost,
                    widths,
                    cause: Box::new(cause),
                });
            }
        }

        // Scatter the original feeds into this plan's shard layout.
        let mut shard_feeds: Vec<(TensorId, Tensor)> = Vec::new();
        for (t, v) in feeds {
            shard_feeds.extend(sharded.scatter(*t, v)?);
        }

        // Reshard the carried snapshot (if any) onto this plan once; every
        // attempt at this width can resume from it.
        let mut reshard_time: Option<Duration> = None;
        let mut reshard_bytes = 0u64;
        let carried_point: Option<ResumePoint> = match &carried {
            Some(snap) => {
                let t0 = Instant::now();
                let obs_t0 = obs.map(|c| c.now_us()).unwrap_or(0.0);
                let point = scatter_snapshot(snap, &sharded)?;
                let took = t0.elapsed();
                reshard_time = Some(took);
                reshard_bytes = snap.bytes();
                if let Some(c) = obs {
                    c.complete(
                        Track::control(),
                        "elastic",
                        &format!("reshard checkpoint {} → {width} workers", snap.ckpt),
                        obs_t0,
                        c.now_us(),
                    );
                    c.add_total("elastic/reshard_bytes", snap.bytes() as f64);
                }
                Some(point)
            }
            None => None,
        };

        let cuts: Vec<Vec<usize>> = match opts.checkpoint {
            Some(cp) => checkpoint_cuts(&sharded, cp),
            None => Vec::new(),
        };
        // Fresh store per width: snapshots are keyed by this plan's tensor
        // ids. Progress crosses widths only through the carried snapshot.
        let store = Mutex::new(CheckpointStore::default());

        let mut width_failure: Option<RunFailure> = None;
        for attempt in 1..=recovery.max_attempts {
            attempts += 1;
            let resume: Option<ResumePoint> = {
                let s = store.lock();
                match s.latest_consistent(width, cuts.len()) {
                    // This width's own checkpoints are never older than the
                    // carried snapshot (attempts resume at or past its
                    // barrier), so prefer them.
                    Some(ck) => Some(s.resume_point(ck, width, &cuts)),
                    None => carried_point.clone(),
                }
            };
            resumed_from.push(resume.as_ref().map(|p| p.ckpt));
            if let Some(c) = obs {
                let what = match &resume {
                    Some(p) => format!(
                        "attempt {attempt} @ {width} workers: resume from checkpoint {}",
                        p.ckpt
                    ),
                    None => format!("attempt {attempt} @ {width} workers: from scratch"),
                };
                c.instant(Track::control(), "recovery", &what);
            }
            let t0 = Instant::now();
            let outcome =
                run_attempt(&sharded, &shard_feeds, opts, &faults, &store, resume.as_ref(), &devices);
            let wall = t0.elapsed();
            let mut record = AttemptRecord {
                width,
                devices: devices.clone(),
                resumed_from: resume.as_ref().map(|p| p.ckpt),
                replan: (attempt == 1).then_some(replan),
                reshard: if attempt == 1 { reshard_time } else { None },
                reshard_bytes: if attempt == 1 { reshard_bytes } else { 0 },
                detection: None,
                wall,
                ok: false,
            };
            match outcome {
                Ok(output) => {
                    record.ok = true;
                    history.push(record);
                    let snapshot = carried.take();
                    return Ok(ElasticReport {
                        output,
                        sharded,
                        plan,
                        devices,
                        lost,
                        widths,
                        attempts,
                        failures,
                        resumed_from,
                        history,
                        snapshot,
                    });
                }
                Err(RuntimeError::Failed(f)) => {
                    record.detection = f.max_detection();
                    history.push(record);
                    if attempt < recovery.max_attempts {
                        failures.push(*f);
                        let delay = backoff.next_delay();
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    } else {
                        width_failure = Some(*f);
                    }
                }
                // Configuration errors are not retryable.
                Err(e) => return Err(e),
            }
        }

        // This width is out of attempts: classify the blamed worker's
        // physical device as permanently lost and consult the policy.
        let f = width_failure.expect("exhausted width recorded a failure");
        let victim = devices[f.worker];
        if let Some(c) = obs {
            c.instant(Track::control(), "elastic", &format!("device {victim} lost (permanent)"));
        }
        let Some(policy) = recovery.degrade else {
            // No elastic mandate: behave like plain recovery and surface the
            // final failure.
            return Err(RuntimeError::Failed(Box::new(f)));
        };
        lost.push(victim);
        shrinks += 1;
        if width <= 1 || width - 1 < policy.min_workers.max(1) || shrinks > policy.max_shrink_steps
        {
            return Err(RuntimeError::Unrecoverable {
                lost,
                widths,
                cause: Box::new(RuntimeError::Failed(Box::new(f))),
            });
        }
        let logical = f.worker;
        failures.push(f);

        // Harvest this width's best consistent checkpoint as the carried
        // plan-independent snapshot before the store (keyed by this plan's
        // tensor ids) is dropped.
        if let Some(cp) = opts.checkpoint {
            let s = store.lock();
            if let Some(ck) = s.latest_consistent(width, cuts.len()) {
                let point = s.resume_point(ck, width, &cuts);
                let snap = assemble_snapshot(&sharded, &point, cp.every)?;
                // Attempts only ever resume at or past the carried barrier,
                // so a fresh consistent checkpoint is never older.
                if carried.as_ref().is_none_or(|c0| snap.ckpt >= c0.ckpt) {
                    carried = Some(snap);
                }
            }
        }
        devices.remove(logical);
    }
}
