//! Fig. 11: the partition Tofu finds for WResNet-152-10 on 8 GPUs.
//!
//! The paper renders per-layer tilings of the convolution weight and
//! activation tensors; here each convolution layer prints its weight and
//! data tilings as `dim×parts` grids, plus the same observations the paper
//! makes: batch *and* channel dimensions both get split, plans differ
//! between layers of one residual block, and the fetch preference flips from
//! weights (lower layers: big activations, small weights) to activations
//! (higher layers).

use tofu_bench::{bench_report, write_report, Json};
use tofu_core::recursive::{partition, PartitionOptions, PartitionPlan};
use tofu_graph::Graph;
use tofu_models::{wresnet, WResNetConfig};

/// Renders a tensor's tiling as `dim0×p0 dim1×p1 …` using axis names.
fn tiling_string(plan: &PartitionPlan, t: tofu_graph::TensorId, axes: &[&str]) -> String {
    let mut parts: Vec<usize> = vec![1; axes.len()];
    for (step, spec) in plan.tiling[t.0].iter().enumerate() {
        if let Some(d) = spec {
            parts[*d] *= plan.steps[step].ways;
        }
    }
    let mut out: Vec<String> = Vec::new();
    for (name, &p) in axes.iter().zip(&parts) {
        if p > 1 {
            out.push(format!("{name}/{p}"));
        }
    }
    if out.is_empty() {
        "replicated".to_string()
    } else {
        out.join(" ")
    }
}

fn main() {
    let model = wresnet(&WResNetConfig {
        layers: 152,
        width: 10,
        batch: 8,
        ..Default::default()
    })
    .expect("wresnet builds");
    let g: &Graph = &model.graph;
    let plan =
        partition(g, &PartitionOptions { workers: 8, ..Default::default() }).expect("plan found");

    println!(
        "Fig. 11: Tofu's partition of WResNet-152-10 on 8 GPUs (search took {:?})\n",
        plan.search_time
    );
    println!(
        "{:<14} {:<26} {:<26}",
        "conv layer", "weight tiling (ci co kh kw)", "data tiling (b c h w)"
    );

    let mut shown_per_stage = [0usize; 4];
    let mut batch_split_layers = 0usize;
    let mut channel_split_layers = 0usize;
    let mut total = 0usize;
    let mut results: Vec<Json> = Vec::new();
    for id in g.node_ids() {
        let node = g.node(id);
        if node.op != "conv2d" || node.tags.is_backward {
            continue;
        }
        total += 1;
        let w = node.inputs[1];
        let data = node.inputs[0];
        let wt = tiling_string(&plan, w, &["ci", "co", "kh", "kw"]);
        let dt = tiling_string(&plan, data, &["b", "c", "h", "w"]);
        if dt.contains("b/") {
            batch_split_layers += 1;
        }
        if dt.contains("c/") || wt.contains("co/") || wt.contains("ci/") {
            channel_split_layers += 1;
        }
        results.push(Json::obj(vec![
            ("layer", Json::from(node.name.as_str())),
            ("weight_tiling", Json::from(wt.as_str())),
            ("data_tiling", Json::from(dt.as_str())),
        ]));
        // Print the stem, the first block of each stage, and the last block
        // (the figure's "xN" compression of repeated blocks).
        let stage = node
            .name
            .strip_prefix('s')
            .and_then(|s| s.chars().next())
            .and_then(|c| c.to_digit(10))
            .map(|d| d as usize);
        let show = match stage {
            None => true, // stem
            Some(s) => {
                shown_per_stage[s] += 1;
                shown_per_stage[s] <= 4
            }
        };
        if show {
            println!("{:<14} {:<26} {:<26}", node.name, wt, dt);
        } else if stage.map(|s| shown_per_stage[s] == 5).unwrap_or(false) {
            println!("{:<14} ... (repeated blocks share the preceding plan)", "");
        }
    }

    println!("\nObservations (cf. §7.4):");
    println!(
        "  - {batch_split_layers}/{total} conv layers split the batch dimension and \
         {channel_split_layers}/{total} split a channel dimension: the plan mixes both."
    );
    let deltas: Vec<String> =
        plan.step_costs().iter().map(|c| format!("{:.2} GB", c / 1e9)).collect();
    println!(
        "  - per-step communication deltas are non-decreasing (Theorem 2): {}",
        deltas.join(" <= ")
    );
    println!(
        "  - total communication per iteration: {:.2} GB across 8 workers",
        plan.total_comm_bytes() / 1e9
    );
    write_report(
        "BENCH_fig11.json",
        &bench_report(
            "fig11",
            vec![
                ("conv_layers", Json::from(total)),
                ("batch_split_layers", Json::from(batch_split_layers)),
                ("channel_split_layers", Json::from(channel_split_layers)),
                ("total_comm_gb", Json::from(plan.total_comm_bytes() / 1e9)),
                (
                    "step_comm_gb",
                    Json::Arr(plan.step_costs().iter().map(|&c| Json::from(c / 1e9)).collect()),
                ),
            ],
            results,
        ),
    );
}
