//! End-to-end runtime tests: scatter → multi-worker execution → gather must
//! reproduce the single-device executor, and the measured trace must be
//! internally consistent.

use std::collections::BTreeMap;

use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::{Executor, Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{run, run_with_options, RunOptions};
use tofu_tensor::Tensor;

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

fn shard(g: &Graph, workers: usize) -> (ShardedGraph, Vec<(TensorId, Tensor)>, BTreeMap<TensorId, Tensor>) {
    let plan = partition(g, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(g, &plan, &GenOptions::default()).unwrap();
    assert!(sharded.exact);
    let original = feeds(g);
    let mut base = Executor::new();
    let mut shard_feeds = Vec::new();
    for (t, v) in &original {
        base.feed(*t, v.clone());
        shard_feeds.extend(sharded.scatter(*t, v).unwrap());
    }
    let base_vals = base.run(g).unwrap();
    (sharded, shard_feeds, base_vals)
}

fn check_outputs(
    g: &Graph,
    sharded: &ShardedGraph,
    got: &BTreeMap<TensorId, Tensor>,
    base: &BTreeMap<TensorId, Tensor>,
    tensors: &[TensorId],
    tol: f32,
) {
    for &t in tensors {
        let expect = &base[&t];
        let gathered = sharded.gather(t, expect.shape(), got).unwrap();
        assert!(
            gathered.allclose(expect, tol),
            "tensor {} diverged",
            g.tensor(t).name
        );
    }
}

#[test]
fn single_worker_matches_executor() {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    let (sharded, shard_feeds, base) = shard(&m.graph, 1);
    let out = run(&sharded, &shard_feeds).unwrap();
    let check: Vec<TensorId> =
        std::iter::once(m.loss).chain(m.grads.iter().map(|&(_, gw)| gw)).collect();
    check_outputs(&m.graph, &sharded, &out.values, &base, &check, 1e-6);
    assert_eq!(out.trace.workers.len(), 1);
    assert_eq!(out.trace.comm_bytes(), 0, "one worker must not communicate");
}

#[test]
fn multi_worker_matches_executor() {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    let check: Vec<TensorId> =
        std::iter::once(m.loss).chain(m.grads.iter().map(|&(_, gw)| gw)).collect();
    for workers in [2, 4] {
        let (sharded, shard_feeds, base) = shard(&m.graph, workers);
        let out = run(&sharded, &shard_feeds).unwrap();
        check_outputs(&m.graph, &sharded, &out.values, &base, &check, 1e-4);
        assert_eq!(out.trace.workers.len(), workers);
        assert!(out.trace.comm_bytes() > 0, "{workers} workers must communicate");
    }
}

#[test]
fn trace_is_internally_consistent() {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    let (sharded, shard_feeds, _) = shard(&m.graph, 4);
    let out = run(&sharded, &shard_feeds).unwrap();
    let trace = &out.trace;
    // Every node executed exactly once, on its own worker.
    assert_eq!(trace.ops_executed(), sharded.graph.num_nodes());
    for w in &trace.workers {
        let schedule = sharded.worker_schedule(w.device);
        assert_eq!(w.ops.len(), schedule.len());
        for (ev, id) in w.ops.iter().zip(&schedule) {
            assert_eq!(ev.node, *id);
            assert!(ev.start <= ev.end);
            assert!(ev.end <= trace.wall);
        }
        assert!(w.pool_peak_bytes > 0);
        assert!(w.persistent_bytes > 0);
    }
    // Conservation: what was pushed equals what was drained, link by link
    // and in aggregate, and matches the static comm-edge metadata.
    let sent: u64 = trace.workers.iter().map(|w| w.bytes_sent).sum();
    let received: u64 = trace.workers.iter().map(|w| w.bytes_received).sum();
    assert_eq!(sent, received);
    assert_eq!(sent, trace.comm_bytes());
    let planned: u64 = sharded.comm_edges().iter().map(|e| e.bytes()).sum();
    assert_eq!(sent, planned, "measured traffic must equal the planned piece bytes");
    for l in &trace.links {
        assert_ne!(l.src, l.dst);
        assert!(l.bytes > 0 && l.messages > 0);
    }
}

#[test]
fn buffer_reuse_off_still_matches_and_uses_more_memory() {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: false })
        .unwrap();
    let (sharded, shard_feeds, base) = shard(&m.graph, 2);
    let with = run(&sharded, &shard_feeds).unwrap();
    let without = run_with_options(
        &sharded,
        &shard_feeds,
        &RunOptions { buffer_reuse: false, ..Default::default() },
    )
    .unwrap();
    check_outputs(&m.graph, &sharded, &without.values, &base, &[m.loss], 1e-4);
    let peak = |t: &tofu_runtime::RunOutput| {
        t.trace.workers.iter().map(|w| w.pool_peak_bytes).max().unwrap()
    };
    assert!(
        peak(&without) > peak(&with),
        "disabling reuse must inflate the pool ({} vs {})",
        peak(&without),
        peak(&with)
    );
}

#[test]
fn missing_feed_is_reported() {
    let m = mlp(&MlpConfig { batch: 4, dims: vec![8], classes: 4, with_updates: false }).unwrap();
    let (sharded, shard_feeds, _) = shard(&m.graph, 2);
    let partial: Vec<_> = shard_feeds.into_iter().skip(1).collect();
    let err = run(&sharded, &partial).unwrap_err();
    // A failed run reports a post-mortem naming the worker whose feed was
    // missing; the root cause is the typed MissingFeed error.
    match err {
        tofu_runtime::RuntimeError::Failed(failure) => {
            assert!(
                matches!(*failure.cause, tofu_runtime::RuntimeError::MissingFeed { .. }),
                "got {}",
                failure.cause
            );
            assert!(failure.trace.is_partial());
        }
        other => panic!("expected Failed post-mortem, got {other}"),
    }
}
