//! §4.1 coverage statistics: how much of the operator catalogue TDL
//! describes, next to the paper's MXNet v0.11 numbers.

use tofu_graph::registry;

fn main() {
    let cov = registry::coverage();
    println!("TDL coverage of the operator registry (cf. §4.1)\n");
    println!("{:<28} {:>8} {:>14}", "", "ours", "paper (MXNet)");
    println!("{:<28} {:>8} {:>14}", "total operators", cov.total, 139);
    println!("{:<28} {:>8} {:>14}", "describable in TDL", cov.describable, 134);
    println!("{:<28} {:>8} {:>14}", "element-wise", cov.elementwise, 77);
    println!("{:<28} {:>8} {:>14}", "using opaque functions", cov.opaque, 2);
    println!("{:<28} {:>8} {:>14}", "with output reductions", cov.with_reduction, 11);

    println!("\nNot describable:");
    for def in registry::all_ops() {
        if def.tdl.is_none() {
            println!("  {:<20} ({:?})", def.name, def.category);
        }
    }

    // The per-operator strategy counts for the ops the evaluation leans on.
    println!("\nDiscovered strategies for key operators:");
    for (op, shapes) in [
        ("matmul", vec![vec![64usize, 64], vec![64, 64]]),
        ("conv1d", vec![vec![8, 4, 16], vec![4, 8, 3]]),
        ("conv2d", vec![vec![8, 4, 16, 16], vec![4, 8, 3, 3]]),
        ("conv2d_bwd_filter", vec![vec![8, 8, 16, 16], vec![8, 4, 18, 18]]),
        ("batch_cholesky", vec![vec![8, 4, 4]]),
        ("softmax", vec![vec![8, 16]]),
    ] {
        let def = registry::lookup(op).expect("registered");
        let shapes: Vec<tofu_tensor::Shape> =
            shapes.into_iter().map(tofu_tensor::Shape::new).collect();
        let attrs = tofu_graph::Attrs::new().with_int("kh", 3).with_int("kw", 3);
        if let Some(tdl) = def.tdl {
            if let Some(desc) = tdl(&shapes, &attrs) {
                let n = tofu_tdl::discover_strategies(&desc)
                    .map(|s| s.len())
                    .unwrap_or(0);
                let kinds = tofu_tdl::discover_strategies(&desc)
                    .map(|s| {
                        s.iter()
                            .map(|st| st.id.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    })
                    .unwrap_or_default();
                println!("  {op:<20} {n} strategies: {kinds}");
            }
        }
    }
}
