//! The TDL abstract syntax tree.
//!
//! A description is deliberately *not* Turing-complete (§4.1): no loops, no
//! recursion, no data-dependent indexing. Index expressions are affine in the
//! index variables, which is exactly what makes the symbolic interval
//! analysis of [`crate::analysis`] precise.

use std::fmt;

/// Identifier of an index variable within one [`TdlDesc`].
pub type VarId = usize;

/// Whether an index variable ranges over an output dimension or a reduction
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Appears as a lambda argument of the output tensor; output dimension
    /// `i` has extent equal to this variable's range.
    Output,
    /// Introduced by a reducer (`Sum(lambda ci, dx: ...)`).
    Reduce,
}

/// Metadata for one index variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (`"b"`, `"ci"`, ...), used in strategy ids.
    pub name: String,
    /// Output or reduction variable.
    pub kind: VarKind,
    /// A statically known extent (e.g. a pooling window from the operator's
    /// attributes); lets [`crate::bind_extents`] resolve variables that
    /// never appear alone in an access.
    pub extent_hint: Option<u64>,
}

/// An affine combination of index variables: `Σ coeff·var + constant`.
///
/// Coefficients are rational (stored as `f64`): integer coefficients model
/// strided forward accesses (`data[2*y + ky]`) while fractional ones model
/// the *region* semantics of strided backward operators
/// (`d_out[(h + pad - ky) / s]` reads a `1/s`-scaled window).
///
/// # Examples
///
/// ```
/// use tofu_tdl::AffineIndex;
///
/// let x_plus_dx = AffineIndex::var(0).add(&AffineIndex::var(1));
/// assert_eq!(x_plus_dx.terms, vec![(0, 1.0), (1, 1.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AffineIndex {
    /// `(variable, coefficient)` pairs, sorted by variable id, no zero
    /// coefficients, no duplicate variables.
    pub terms: Vec<(VarId, f64)>,
    /// The constant offset.
    pub constant: f64,
}

impl AffineIndex {
    /// The single variable `v` with coefficient 1.
    pub fn var(v: VarId) -> AffineIndex {
        AffineIndex { terms: vec![(v, 1.0)], constant: 0.0 }
    }

    /// A constant index.
    pub fn constant(c: f64) -> AffineIndex {
        AffineIndex { terms: Vec::new(), constant: c }
    }

    /// Returns the sum of two affine indices.
    pub fn add(&self, other: &AffineIndex) -> AffineIndex {
        let mut out = self.clone();
        for &(v, c) in &other.terms {
            out.add_term(v, c);
        }
        out.constant += other.constant;
        out
    }

    /// Returns this index scaled by a rational factor.
    pub fn scale(&self, k: f64) -> AffineIndex {
        if k == 0.0 {
            return AffineIndex::constant(0.0);
        }
        AffineIndex {
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Returns this index shifted by a constant offset.
    pub fn offset(&self, k: f64) -> AffineIndex {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    fn add_term(&mut self, v: VarId, c: f64) {
        match self.terms.binary_search_by_key(&v, |&(tv, _)| tv) {
            Ok(pos) => {
                self.terms[pos].1 += c;
                if self.terms[pos].1 == 0.0 {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (v, c)),
        }
    }

    /// Returns the variables referenced by this index.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// Returns the coefficient of `v` (0 when absent).
    pub fn coeff(&self, v: VarId) -> f64 {
        self.terms
            .binary_search_by_key(&v, |&(tv, _)| tv)
            .map(|pos| self.terms[pos].1)
            .unwrap_or(0.0)
    }

    /// True when this is exactly `1·v + 0`.
    pub fn is_identity_of(&self, v: VarId) -> bool {
        self.constant == 0.0 && self.terms == [(v, 1.0)]
    }
}

/// One coordinate of a tensor access.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// An affine index expression.
    Affine(AffineIndex),
    /// A full slice `:` — used by opaque functions (`batch_mat[b, :, :]`).
    Full,
}

impl IndexExpr {
    /// Returns the affine payload when this is not a full slice.
    pub fn as_affine(&self) -> Option<&AffineIndex> {
        match self {
            IndexExpr::Affine(a) => Some(a),
            IndexExpr::Full => None,
        }
    }
}

/// Built-in commutative, associative reducers (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reducer {
    /// Addition.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Product.
    Prod,
}

impl fmt::Display for Reducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reducer::Sum => "sum",
            Reducer::Max => "max",
            Reducer::Min => "min",
            Reducer::Prod => "prod",
        };
        f.write_str(s)
    }
}

/// Unary scalar operations appearing in descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Square root.
    Sqrt,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// `max(x, 0)`.
    Relu,
    /// Absolute value.
    Abs,
}

/// Binary scalar operations appearing in descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// A scalar-valued TDL expression (the lambda body).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A floating constant.
    Const(f64),
    /// An index variable used as a value (e.g. `arange`-style operators).
    VarValue(VarId),
    /// An element read from input tensor `input` at the given coordinates.
    Access {
        /// Which input tensor (0-based).
        input: usize,
        /// One coordinate per input dimension.
        indices: Vec<IndexExpr>,
    },
    /// A unary scalar operation.
    Unary {
        /// The operation.
        op: UnaryOp,
        /// Operand.
        arg: Box<ScalarExpr>,
    },
    /// A binary scalar operation.
    Binary {
        /// The operation.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// An opaque function (§4.1): computation TDL cannot express, applied to
    /// full slices of the inputs. `out_vars` are the output index variables
    /// that select elements from the opaque result; those variables cannot be
    /// partitioned.
    Opaque {
        /// Name of the opaque computation (e.g. `"cholesky"`).
        name: String,
        /// Tensor arguments, usually accesses containing [`IndexExpr::Full`]
        /// slices.
        args: Vec<ScalarExpr>,
        /// Output variables indexing into the opaque result.
        out_vars: Vec<VarId>,
    },
}

impl ScalarExpr {
    /// Visits every tensor access in the expression tree.
    pub fn for_each_access(&self, f: &mut impl FnMut(usize, &[IndexExpr])) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::VarValue(_) => {}
            ScalarExpr::Access { input, indices } => f(*input, indices),
            ScalarExpr::Unary { arg, .. } => arg.for_each_access(f),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.for_each_access(f);
                rhs.for_each_access(f);
            }
            ScalarExpr::Opaque { args, .. } => {
                for a in args {
                    a.for_each_access(f);
                }
            }
        }
    }

    /// Visits every opaque node in the expression tree.
    pub fn for_each_opaque(&self, f: &mut impl FnMut(&str, &[VarId])) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::VarValue(_) | ScalarExpr::Access { .. } => {}
            ScalarExpr::Unary { arg, .. } => arg.for_each_opaque(f),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.for_each_opaque(f);
                rhs.for_each_opaque(f);
            }
            ScalarExpr::Opaque { name, args, out_vars } => {
                f(name, out_vars);
                for a in args {
                    a.for_each_opaque(f);
                }
            }
        }
    }
}

/// Errors raised while building or analyzing TDL descriptions.
#[derive(Debug, Clone, PartialEq)]
pub enum TdlError {
    /// An access used a different number of coordinates than the input rank.
    RankMismatch {
        /// Which input.
        input: usize,
        /// Declared rank.
        rank: usize,
        /// Number of coordinates in the access.
        got: usize,
    },
    /// An access referenced an undeclared input.
    UnknownInput {
        /// The out-of-range input number.
        input: usize,
        /// Number of declared inputs.
        num_inputs: usize,
    },
    /// A non-affine interval operation was required (Fig. 4 forbids interval
    /// products and comparisons).
    NonAffine(String),
    /// A reduction variable's extent could not be tied to any input dimension.
    UnresolvedExtent {
        /// The variable whose extent is unknown.
        var: VarId,
    },
    /// Assumption 1 of the paper's appendix is violated: an output variable
    /// indexes two different dimensions of the same input (`A[i, i]`).
    RepeatedVar {
        /// The offending input.
        input: usize,
        /// The repeated variable.
        var: VarId,
    },
    /// Concrete shapes disagree with the description.
    ShapeMismatch(String),
    /// Free-form invalid-description error.
    Invalid(String),
}

impl fmt::Display for TdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdlError::RankMismatch { input, rank, got } => {
                write!(f, "input {input} has rank {rank} but was accessed with {got} coordinates")
            }
            TdlError::UnknownInput { input, num_inputs } => {
                write!(f, "access to input {input} but only {num_inputs} inputs declared")
            }
            TdlError::NonAffine(msg) => write!(f, "non-affine interval operation: {msg}"),
            TdlError::UnresolvedExtent { var } => {
                write!(f, "cannot resolve the extent of reduction variable {var}")
            }
            TdlError::RepeatedVar { input, var } => {
                write!(f, "variable {var} indexes multiple dimensions of input {input}")
            }
            TdlError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TdlError::Invalid(msg) => write!(f, "invalid description: {msg}"),
        }
    }
}

impl std::error::Error for TdlError {}

/// A complete operator description.
///
/// Index variables are numbered so that the `output_rank` output variables
/// come first (variable `i` names output dimension `i`), followed by the
/// reduction variables.
#[derive(Debug, Clone, PartialEq)]
pub struct TdlDesc {
    name: String,
    input_ranks: Vec<usize>,
    vars: Vec<VarInfo>,
    output_rank: usize,
    reducer: Option<Reducer>,
    body: ScalarExpr,
}

impl TdlDesc {
    /// Assembles and validates a description; prefer [`crate::DescBuilder`].
    pub fn new(
        name: impl Into<String>,
        input_ranks: Vec<usize>,
        vars: Vec<VarInfo>,
        reducer: Option<Reducer>,
        body: ScalarExpr,
    ) -> crate::Result<TdlDesc> {
        let output_rank = vars.iter().take_while(|v| v.kind == VarKind::Output).count();
        if vars[output_rank..].iter().any(|v| v.kind == VarKind::Output) {
            return Err(TdlError::Invalid("output variables must precede reduce variables".into()));
        }
        if reducer.is_none() && output_rank != vars.len() {
            return Err(TdlError::Invalid("reduce variables declared without a reducer".into()));
        }
        let desc = TdlDesc { name: name.into(), input_ranks, vars, output_rank, reducer, body };
        desc.validate()?;
        Ok(desc)
    }

    fn validate(&self) -> crate::Result<()> {
        let mut err = None;
        self.body.for_each_access(&mut |input, indices| {
            if err.is_some() {
                return;
            }
            if input >= self.input_ranks.len() {
                err = Some(TdlError::UnknownInput { input, num_inputs: self.input_ranks.len() });
                return;
            }
            if indices.len() != self.input_ranks[input] {
                err = Some(TdlError::RankMismatch {
                    input,
                    rank: self.input_ranks[input],
                    got: indices.len(),
                });
                return;
            }
            // Assumption 1 (appendix A.2): a variable may appear in at most
            // one coordinate of any single access.
            let mut seen: Vec<VarId> = Vec::new();
            for ie in indices {
                if let IndexExpr::Affine(a) = ie {
                    for v in a.vars() {
                        if seen.contains(&v) {
                            err = Some(TdlError::RepeatedVar { input, var: v });
                            return;
                        }
                        seen.push(v);
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(())
    }

    /// The operator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input tensors.
    pub fn num_inputs(&self) -> usize {
        self.input_ranks.len()
    }

    /// Declared rank of each input tensor.
    pub fn input_ranks(&self) -> &[usize] {
        &self.input_ranks
    }

    /// Rank of the output tensor.
    pub fn output_rank(&self) -> usize {
        self.output_rank
    }

    /// All index variables: outputs first, then reductions.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// The reduction variables, if any.
    pub fn reduce_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (self.output_rank..self.vars.len()).filter(|&v| self.vars[v].kind == VarKind::Reduce)
    }

    /// The reducer, when the description has a reduction.
    pub fn reducer(&self) -> Option<Reducer> {
        self.reducer
    }

    /// The lambda body.
    pub fn body(&self) -> &ScalarExpr {
        &self.body
    }

    /// Variables that cannot be partitioned because they index an opaque
    /// function's result (the opaque computation is indivisible).
    pub fn unsplittable_vars(&self) -> Vec<VarId> {
        let mut vars = Vec::new();
        self.body.for_each_opaque(&mut |_, out_vars| {
            for &v in out_vars {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        });
        vars
    }

    /// True when the description contains an opaque function.
    pub fn has_opaque(&self) -> bool {
        let mut found = false;
        self.body.for_each_opaque(&mut |_, _| found = true);
        found
    }

    /// True when the operator is element-wise: no reduction, and every input
    /// is accessed at exactly the identity output coordinates.
    ///
    /// Element-wise operators are coalesced by the coarsening pass (§5.1)
    /// because their input and output tensors must share a partition.
    pub fn is_elementwise(&self) -> bool {
        if self.reducer.is_some() || self.has_opaque() {
            return false;
        }
        let mut elementwise = true;
        self.body.for_each_access(&mut |input, indices| {
            if !elementwise {
                return;
            }
            if self.input_ranks[input] != self.output_rank {
                elementwise = false;
                return;
            }
            for (dim, ie) in indices.iter().enumerate() {
                match ie.as_affine() {
                    Some(a) if a.is_identity_of(dim) => {}
                    _ => {
                        elementwise = false;
                        return;
                    }
                }
            }
        });
        elementwise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_index_arithmetic() {
        let x = AffineIndex::var(0);
        let dx = AffineIndex::var(1);
        let e = x.add(&dx).offset(3.0).scale(2.0);
        assert_eq!(e.coeff(0), 2.0);
        assert_eq!(e.coeff(1), 2.0);
        assert_eq!(e.constant, 6.0);
        assert_eq!(e.coeff(9), 0.0);
    }

    #[test]
    fn affine_index_cancellation() {
        let x = AffineIndex::var(0);
        let minus_x = x.scale(-1.0);
        let zero = x.add(&minus_x);
        assert!(zero.terms.is_empty());
        assert_eq!(zero.constant, 0.0);
    }

    #[test]
    fn identity_detection() {
        assert!(AffineIndex::var(2).is_identity_of(2));
        assert!(!AffineIndex::var(2).is_identity_of(1));
        assert!(!AffineIndex::var(2).offset(1.0).is_identity_of(2));
        assert!(!AffineIndex::var(2).scale(2.0).is_identity_of(2));
    }

    fn elementwise_desc() -> TdlDesc {
        // out = lambda i, j: A[i, j] + B[i, j]
        let vars = vec![
            VarInfo { name: "i".into(), kind: VarKind::Output, extent_hint: None },
            VarInfo { name: "j".into(), kind: VarKind::Output, extent_hint: None },
        ];
        let access = |input| ScalarExpr::Access {
            input,
            indices: vec![
                IndexExpr::Affine(AffineIndex::var(0)),
                IndexExpr::Affine(AffineIndex::var(1)),
            ],
        };
        let body = ScalarExpr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(access(0)),
            rhs: Box::new(access(1)),
        };
        TdlDesc::new("add", vec![2, 2], vars, None, body).unwrap()
    }

    #[test]
    fn elementwise_is_detected() {
        assert!(elementwise_desc().is_elementwise());
    }

    #[test]
    fn transpose_is_not_elementwise() {
        // out = lambda i, j: A[j, i]
        let vars = vec![
            VarInfo { name: "i".into(), kind: VarKind::Output, extent_hint: None },
            VarInfo { name: "j".into(), kind: VarKind::Output, extent_hint: None },
        ];
        let body = ScalarExpr::Access {
            input: 0,
            indices: vec![
                IndexExpr::Affine(AffineIndex::var(1)),
                IndexExpr::Affine(AffineIndex::var(0)),
            ],
        };
        let desc = TdlDesc::new("transpose", vec![2], vars, None, body).unwrap();
        assert!(!desc.is_elementwise());
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let vars = vec![VarInfo { name: "i".into(), kind: VarKind::Output, extent_hint: None }];
        let body = ScalarExpr::Access {
            input: 0,
            indices: vec![
                IndexExpr::Affine(AffineIndex::var(0)),
                IndexExpr::Affine(AffineIndex::var(0)),
            ],
        };
        let err = TdlDesc::new("bad", vec![1], vars, None, body).unwrap_err();
        assert!(matches!(err, TdlError::RankMismatch { .. }));
    }

    #[test]
    fn unknown_input_is_rejected() {
        let vars = vec![VarInfo { name: "i".into(), kind: VarKind::Output, extent_hint: None }];
        let body = ScalarExpr::Access {
            input: 3,
            indices: vec![IndexExpr::Affine(AffineIndex::var(0))],
        };
        let err = TdlDesc::new("bad", vec![1], vars, None, body).unwrap_err();
        assert!(matches!(err, TdlError::UnknownInput { .. }));
    }

    #[test]
    fn repeated_var_violates_assumption_one() {
        // lambda i: A[i, i] is ruled out by appendix assumption 1.
        let vars = vec![VarInfo { name: "i".into(), kind: VarKind::Output, extent_hint: None }];
        let body = ScalarExpr::Access {
            input: 0,
            indices: vec![
                IndexExpr::Affine(AffineIndex::var(0)),
                IndexExpr::Affine(AffineIndex::var(0)),
            ],
        };
        let err = TdlDesc::new("diag", vec![2], vars, None, body).unwrap_err();
        assert!(matches!(err, TdlError::RepeatedVar { input: 0, var: 0 }));
    }

    #[test]
    fn reduce_vars_without_reducer_rejected() {
        let vars = vec![
            VarInfo { name: "i".into(), kind: VarKind::Output, extent_hint: None },
            VarInfo { name: "k".into(), kind: VarKind::Reduce, extent_hint: None },
        ];
        let body = ScalarExpr::Const(0.0);
        assert!(TdlDesc::new("bad", vec![], vars, None, body).is_err());
    }

    #[test]
    fn error_display() {
        let e = TdlError::NonAffine("interval product".into());
        assert!(e.to_string().contains("non-affine"));
        assert!(TdlError::UnresolvedExtent { var: 3 }.to_string().contains('3'));
    }
}
