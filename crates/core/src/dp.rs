//! The dynamic-programming search for one basic partition step (§5).
//!
//! The DP walks the coarsened groups in forward order and tracks, as its
//! state, the partition spec of every *bundle* crossing the current cut. A
//! bundle is a set of tensors forced to share one spec: the outputs of one
//! strategy class (all timestep instances of a cell operator, or a coalesced
//! element-wise run), or a single leaf tensor. For the chain-like coarsened
//! graphs of MLPs, CNNs and RNNs the cut width is tiny (one activation
//! tensor-group, i.e. a forward tensor and its gradient), which is what makes
//! the search fast; fork-join regions (residual blocks) briefly widen the
//! frontier and are handled by the same machinery.
//!
//! Within a group the member classes are searched combinatorially (§5.1
//! "brute-force combinatorial search among all member operators/tensors"):
//! once every touched bundle's spec is fixed, each class independently picks
//! its cheapest strategy, so the brute force ranges only over the group's
//! internal bundles (weights, weight gradients, temporaries).

use std::collections::BTreeMap;

use tofu_graph::{Graph, NodeId, TensorId};
use tofu_obs::{Collector, Track};
use tofu_tensor::Shape;

use crate::coarsen::CoarseGraph;
use crate::error::CoreError;
use crate::spec::{
    input_fetch_bytes, legal_specs, output_bytes, respec_bytes, ConcreteOut, ConcreteReq,
    TensorSpec,
};
use crate::strategies::{node_strategies, strategy_feasible, NodeStrategy, ShapeView};
use crate::Result;

/// Extra leaf inputs attached to nodes by earlier recursion steps (the
/// remote-fetch buffers of Fig. 6). `for_input` names the node input whose
/// required region the buffer carries.
#[derive(Debug, Clone, Default)]
pub struct ExtraInputs {
    entries: Vec<(NodeId, usize, TensorId)>,
}

impl ExtraInputs {
    /// Creates an empty table.
    pub fn new() -> ExtraInputs {
        ExtraInputs::default()
    }

    /// Registers a fetch buffer for `(node, for_input)`.
    pub fn push(&mut self, node: NodeId, for_input: usize, tensor: TensorId) {
        self.entries.push((node, for_input, tensor));
    }

    /// Buffers attached to one node.
    pub fn of_node(&self, node: NodeId) -> impl Iterator<Item = (usize, TensorId)> + '_ {
        self.entries
            .iter()
            .filter(move |(n, _, _)| *n == node)
            .map(|&(_, i, t)| (i, t))
    }

    /// All registered buffer tensors.
    pub fn tensors(&self) -> impl Iterator<Item = TensorId> + '_ {
        self.entries.iter().map(|&(_, _, t)| t)
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no buffers are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Search options.
#[derive(Debug, Clone, Copy)]
pub struct DpOptions {
    /// Number of worker groups this step splits into (2 for powers of two).
    pub ways: usize,
    /// When false, Case-2 (output-reduction) strategies are excluded —
    /// modeling the ICML18 baseline of §7.3.
    pub allow_reduce: bool,
    /// Upper bound on DP states per cut before the search aborts.
    pub state_bound: usize,
    /// Upper bound on enumerated internal-bundle assignments per group;
    /// beyond it, internal specs are optimized by coordinate descent.
    pub internal_bound: usize,
    /// Beam width: at most this many DP states are kept per cut (the best
    /// ones by cost). Wide fork-join frontiers are pruned to the beam, which
    /// preserves optimality on chain-shaped coarsened graphs and is a
    /// high-quality approximation elsewhere.
    pub beam: usize,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions { ways: 2, allow_reduce: true, state_bound: 200_000, internal_bound: 1024, beam: 512 }
    }
}

/// How one node is executed under the chosen basic plan.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeChoice {
    /// A discovered strategy (with concrete requirements).
    Strategy(NodeStrategy),
    /// An element-wise (or coalesced) node: everything follows the class
    /// spec.
    Ewise(TensorSpec),
}

/// The basic partition plan of one step.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// Group count of this step.
    pub ways: usize,
    /// Spec per tensor (graph tensors first, then extra-input tensors).
    pub tensor_spec: Vec<TensorSpec>,
    /// Execution choice per node.
    pub node_choice: Vec<NodeChoice>,
    /// Total communication bytes incurred by this step (per worker-group
    /// pair; the recursion scales it by the number of groups).
    pub comm_bytes: f64,
}

impl StepPlan {
    /// Spec of a tensor.
    pub fn spec(&self, t: TensorId) -> TensorSpec {
        self.tensor_spec[t.0]
    }
}

type StateKey = Vec<(usize, TensorSpec)>; // sorted (bundle, spec)

struct Bundles {
    /// Bundle id per tensor (graph + extra tensors).
    of_tensor: Vec<usize>,
    /// Representative shapes per bundle (for legal-spec computation the
    /// intersection over members is used).
    legal: Vec<Vec<TensorSpec>>,
    /// First and last group touching each bundle.
    first: Vec<usize>,
    last: Vec<usize>,
    count: usize,
}

fn build_bundles(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    ways: usize,
) -> Bundles {
    let total_tensors = view.len();
    let mut of_tensor = vec![usize::MAX; total_tensors];
    let mut members: Vec<Vec<TensorId>> = Vec::new();

    // Class-keyed bundles for produced tensors.
    let mut class_bundle: BTreeMap<usize, usize> = BTreeMap::new();
    for id in g.node_ids() {
        let out = g.node(id).output;
        let class = cg.class_of[id.0];
        let b = *class_bundle.entry(class).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        of_tensor[out.0] = b;
        members[b].push(out);
    }
    // Leaf bundles for everything else (inputs, weights, extra buffers).
    for (t, bundle) in of_tensor.iter_mut().enumerate() {
        if *bundle == usize::MAX {
            members.push(vec![TensorId(t)]);
            *bundle = members.len() - 1;
        }
    }

    let count = members.len();
    // Legal specs: intersection over member tensors.
    let mut legal: Vec<Vec<TensorSpec>> = Vec::with_capacity(count);
    for m in &members {
        let mut acc: Option<Vec<TensorSpec>> = None;
        for &t in m {
            let specs = legal_specs(view.shape(t), ways);
            acc = Some(match acc {
                None => specs,
                Some(prev) => prev.into_iter().filter(|s| specs.contains(s)).collect(),
            });
        }
        let mut specs = acc.unwrap_or_default();
        if specs.is_empty() {
            specs.push(TensorSpec::Replicated);
        }
        legal.push(specs);
    }

    // Group touch ranges.
    let mut first = vec![usize::MAX; count];
    let mut last = vec![0usize; count];
    let mut touch = |b: usize, gi: usize| {
        if first[b] == usize::MAX || gi < first[b] {
            first[b] = gi;
        }
        if gi > last[b] {
            last[b] = gi;
        }
    };
    for id in g.node_ids() {
        let gi = cg.group_of[id.0];
        let node = g.node(id);
        touch(of_tensor[node.output.0], gi);
        for &t in &node.inputs {
            touch(of_tensor[t.0], gi);
        }
        for (_, t) in extra.of_node(id) {
            touch(of_tensor[t.0], gi);
        }
    }
    // Untouched bundles (dangling tensors): pin to group 0.
    for b in 0..count {
        if first[b] == usize::MAX {
            first[b] = 0;
            last[b] = 0;
        }
    }

    Bundles { of_tensor, legal, first, last, count }
}

/// Per-class preprocessed data.
struct ClassInfo {
    rep: NodeId,
    members: Vec<NodeId>,
    is_ewise: bool,
    /// Feasible strategies of the representative (empty for ewise classes).
    strategies: Vec<NodeStrategy>,
    /// Bundle of the class's outputs.
    own_bundle: usize,
    /// Every bundle this class touches, sorted — the memoization key domain.
    touched: Vec<usize>,
}

/// Runs the DP for one basic step, returning the optimal [`StepPlan`].
pub fn search(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
) -> Result<StepPlan> {
    search_with_obs(g, view, cg, extra, opts, None)
}

/// [`search`] that additionally reports its statistics into `obs`: running
/// totals `dp/strategies_enumerated`, `dp/strategies_feasible`,
/// `dp/states_explored` and `dp/frontier_width_max`, plus per-cut
/// `dp/frontier states` and `dp/frontier width` counter samples on
/// [`Track::search`] (frontier width = bundles crossing the cut, the
/// quantity §5 argues stays tiny on chain-like coarsened graphs).
pub fn search_with_obs(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
    obs: Option<&Collector>,
) -> Result<StepPlan> {
    if opts.ways < 2 {
        return Err(CoreError::BadWorkerCount(opts.ways));
    }
    let bundles = build_bundles(g, view, cg, extra, opts.ways);

    // Preprocess classes.
    let mut classes: Vec<Option<ClassInfo>> = Vec::with_capacity(cg.class_nodes.len());
    for (ci, members) in cg.class_nodes.iter().enumerate() {
        if members.is_empty() {
            classes.push(None);
            continue;
        }
        let rep = members[0];
        let is_ewise = cg.class_is_ewise[ci];
        let strategies = if is_ewise {
            Vec::new()
        } else {
            let out_shape = view.shape(g.node(rep).output).clone();
            let enumerated = node_strategies(g, rep, view)?;
            if let Some(c) = obs {
                c.add_total("dp/strategies_enumerated", enumerated.len() as f64);
            }
            let feasible: Vec<NodeStrategy> = enumerated
                .into_iter()
                .filter(|s| strategy_feasible(s, &out_shape, opts.ways))
                .collect();
            let filtered: Vec<NodeStrategy> = feasible
                .iter()
                .filter(|s| opts.allow_reduce || !matches!(s.out, ConcreteOut::Reduce))
                .cloned()
                .collect();
            // The ICML18 baseline lacks output-reduction as an *option*; an
            // operator whose only strategies are reductions (e.g. the scalar
            // loss) is still computed, just not partitioned differently.
            let kept = if filtered.is_empty() { feasible } else { filtered };
            if let Some(c) = obs {
                c.add_total("dp/strategies_feasible", kept.len() as f64);
            }
            kept
        };
        let mut touched: Vec<usize> = Vec::new();
        for &m in members {
            let node = g.node(m);
            touched.push(bundles.of_tensor[node.output.0]);
            for &t in &node.inputs {
                touched.push(bundles.of_tensor[t.0]);
            }
            for (_, t) in extra.of_node(m) {
                touched.push(bundles.of_tensor[t.0]);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        classes.push(Some(ClassInfo {
            rep,
            members: members.clone(),
            is_ewise,
            strategies,
            own_bundle: bundles.of_tensor[g.node(rep).output.0],
            touched,
        }));
    }

    // Class-cost memoization: specs of a class's touched bundles fully
    // determine its cost, so (class, spec-key) results are cached across the
    // state x combo product.
    type ClassCostCache =
        std::collections::HashMap<(usize, Vec<u8>), Option<(f64, Option<usize>)>>;
    let mut cost_cache: ClassCostCache = ClassCostCache::new();
    const REP: u8 = u8::MAX;
    fn enc(s: TensorSpec) -> u8 {
        match s {
            TensorSpec::Split(d) => d as u8,
            TensorSpec::Replicated => u8::MAX,
        }
    }
    fn dec(v: u8) -> TensorSpec {
        if v == u8::MAX { TensorSpec::Replicated } else { TensorSpec::Split(v as usize) }
    }

    // DP over groups.
    let mut states: BTreeMap<StateKey, (f64, usize)> = BTreeMap::new();
    states.insert(Vec::new(), (0.0, usize::MAX));
    // Backtracking: per group, per resulting state key, the winning local
    // assignment (bundle -> spec for every bundle resolved at this group)
    // plus per-class strategy indices, plus predecessor state key.
    struct Trace {
        prev: StateKey,
        resolved: Vec<(usize, TensorSpec)>,
        class_choice: Vec<(usize, usize)>, // (class, strategy index)
    }
    let mut traces: Vec<BTreeMap<StateKey, Trace>> = Vec::with_capacity(cg.groups.len());

    for (gi, group) in cg.groups.iter().enumerate() {
        let mut touched: Vec<usize> = Vec::new();
        for &n in &group.nodes {
            let node = g.node(n);
            touched.push(bundles.of_tensor[node.output.0]);
            for &t in &node.inputs {
                touched.push(bundles.of_tensor[t.0]);
            }
            for (_, t) in extra.of_node(n) {
                touched.push(bundles.of_tensor[t.0]);
            }
        }
        touched.sort_unstable();
        touched.dedup();

        // Bundles resolved at this group: those first touched here.
        let fresh: Vec<usize> =
            touched.iter().copied().filter(|&b| bundles.first[b] == gi).collect();
        let carried: Vec<usize> =
            touched.iter().copied().filter(|&b| bundles.first[b] < gi).collect();

        // Enumerate fresh-bundle assignments (bounded).
        let combos = enumerate_assignments(&fresh, &bundles.legal, opts.internal_bound);

        let mut next: BTreeMap<StateKey, (f64, usize)> = BTreeMap::new();
        let mut trace: BTreeMap<StateKey, Trace> = BTreeMap::new();

        let mut spec_arr: Vec<u8> = vec![REP; bundles.count];
        for (state_key, &(base_cost, _)) in &states {
            if !carried
                .iter()
                .all(|b| state_key.iter().any(|(sb, _)| sb == b))
            {
                return Err(CoreError::Internal(format!(
                    "bundle carried into group {gi} missing from DP state"
                )));
            }
            for &(b, spec) in state_key {
                spec_arr[b] = enc(spec);
            }
            for combo in &combos {
                for &(b, spec) in combo {
                    spec_arr[b] = enc(spec);
                }
                // Per-class independent optimization with memoization.
                let mut total = 0.0f64;
                let mut choices: Vec<(usize, usize)> = Vec::new();
                let mut feasible = true;
                for &ci in &group.classes {
                    let Some(info) = &classes[ci] else { continue };
                    let key: Vec<u8> = info.touched.iter().map(|&b| spec_arr[b]).collect();
                    let cached = cost_cache
                        .entry((ci, key))
                        .or_insert_with(|| {
                            let spec = |t: TensorId| dec(spec_arr[bundles.of_tensor[t.0]]);
                            class_cost(g, view, extra, info, &spec, opts)
                        });
                    match cached {
                        Some((c, choice)) => {
                            total += *c;
                            if let Some(idx) = choice {
                                choices.push((ci, *idx));
                            }
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if feasible {
                    let cost = base_cost + total;
                    // New state: bundles still crossing after this group.
                    let mut key: StateKey = state_key
                        .iter()
                        .copied()
                        .filter(|&(b, _)| bundles.last[b] > gi)
                        .chain(
                            combo
                                .iter()
                                .copied()
                                .filter(|&(b, _)| bundles.last[b] > gi),
                        )
                        .collect();
                    key.sort_unstable();
                    let entry =
                        next.entry(key.clone()).or_insert((f64::INFINITY, usize::MAX));
                    if cost < entry.0 {
                        *entry = (cost, 0);
                        trace.insert(
                            key,
                            Trace {
                                prev: state_key.clone(),
                                resolved: combo.clone(),
                                class_choice: choices,
                            },
                        );
                    }
                }
                for &(b, _) in combo {
                    spec_arr[b] = REP;
                }
            }
            for &(b, _) in state_key {
                spec_arr[b] = REP;
            }
        }
        if next.is_empty() {
            return Err(CoreError::NoStrategy {
                node: format!("group {gi}"),
                detail: "no feasible configuration".into(),
            });
        }
        if next.len() > opts.state_bound {
            return Err(CoreError::SearchSpaceExceeded {
                states: next.len(),
                bound: opts.state_bound,
            });
        }
        if next.len() > opts.beam {
            // Beam pruning: keep the cheapest states.
            let mut ranked: Vec<(StateKey, (f64, usize))> = next.into_iter().collect();
            ranked.sort_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite costs"));
            ranked.truncate(opts.beam);
            next = ranked.into_iter().collect();
            trace.retain(|k, _| next.contains_key(k));
        }
        if let Some(c) = obs {
            let ts = c.now_us();
            c.add_total("dp/states_explored", (states.len() * combos.len()) as f64);
            let width = next.keys().map(|k| k.len()).max().unwrap_or(0) as f64;
            c.counter(Track::search(), "dp/frontier states", ts, next.len() as f64);
            c.counter(Track::search(), "dp/frontier width", ts, width);
            c.max_total("dp/frontier_width_max", width);
        }
        states = next;
        traces.push(trace);
    }

    // Reconstruct: final state should be the single empty key (or the best).
    let (mut key, (total_cost, _)) = states
        .iter()
        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite costs"))
        .map(|(k, v)| (k.clone(), *v))
        .expect("states nonempty");

    let mut bundle_spec: Vec<TensorSpec> = vec![TensorSpec::Replicated; bundles.count];
    let mut class_choice: BTreeMap<usize, usize> = BTreeMap::new();
    for gi in (0..cg.groups.len()).rev() {
        let t = traces[gi]
            .get(&key)
            .ok_or_else(|| CoreError::Internal(format!("missing trace at group {gi}")))?;
        for &(b, s) in &t.resolved {
            bundle_spec[b] = s;
        }
        // Specs of bundles alive in this state.
        for &(b, s) in &key {
            bundle_spec[b] = s;
        }
        for &(ci, idx) in &t.class_choice {
            class_choice.insert(ci, idx);
        }
        key = t.prev.clone();
    }

    // Materialize per-tensor and per-node plans.
    let tensor_spec: Vec<TensorSpec> =
        (0..view.len()).map(|t| bundle_spec[bundles.of_tensor[t]]).collect();
    let mut node_choice: Vec<NodeChoice> = Vec::with_capacity(g.num_nodes());
    for id in g.node_ids() {
        let ci = cg.class_of[id.0];
        let info = classes[ci].as_ref().expect("class exists");
        if info.is_ewise {
            node_choice.push(NodeChoice::Ewise(bundle_spec[info.own_bundle]));
        } else {
            let idx = class_choice.get(&ci).copied().ok_or_else(|| {
                CoreError::Internal(format!("no strategy recorded for class {ci}"))
            })?;
            node_choice.push(NodeChoice::Strategy(info.strategies[idx].clone()));
        }
    }

    Ok(StepPlan { ways: opts.ways, tensor_spec, node_choice, comm_bytes: total_cost })
}

/// Enumerates assignments over the given bundles; falls back to a greedy +
/// coordinate-descent scheme when the product exceeds the bound.
fn enumerate_assignments(
    bundles_to_assign: &[usize],
    legal: &[Vec<TensorSpec>],
    bound: usize,
) -> Vec<Vec<(usize, TensorSpec)>> {
    let mut product = 1usize;
    for &b in bundles_to_assign {
        product = product.saturating_mul(legal[b].len());
        if product > bound {
            break;
        }
    }
    if product <= bound {
        // Full cartesian product.
        let mut out: Vec<Vec<(usize, TensorSpec)>> = vec![Vec::new()];
        for &b in bundles_to_assign {
            let mut next = Vec::with_capacity(out.len() * legal[b].len());
            for partial in &out {
                for &s in &legal[b] {
                    let mut p = partial.clone();
                    p.push((b, s));
                    next.push(p);
                }
            }
            out = next;
        }
        out
    } else {
        // Bounded: enumerate the largest-legal-set bundles one at a time
        // around a default assignment (first legal spec each). This loses
        // optimality but keeps the search tractable for degenerate graphs.
        let default: Vec<(usize, TensorSpec)> =
            bundles_to_assign.iter().map(|&b| (b, legal[b][0])).collect();
        let mut out = vec![default.clone()];
        for (i, &b) in bundles_to_assign.iter().enumerate() {
            for &s in legal[b].iter().skip(1) {
                let mut v = default.clone();
                v[i] = (b, s);
                out.push(v);
                if out.len() >= bound {
                    return out;
                }
            }
        }
        out
    }
}

/// Cost of one class under a full spec assignment; `None` when no feasible
/// strategy exists. Returns the chosen strategy index for non-ewise classes.
fn class_cost(
    g: &Graph,
    view: &ShapeView,
    extra: &ExtraInputs,
    info: &ClassInfo,
    spec: &impl Fn(TensorId) -> TensorSpec,
    opts: &DpOptions,
) -> Option<(f64, Option<usize>)> {
    if info.is_ewise {
        let class_spec = spec(g.node(info.rep).output);
        // Every member's inputs must arrive partitioned identically; sum the
        // mismatch cost over all coalesced members.
        let mut cost = 0.0;
        for &m in &info.members {
            let node = g.node(m);
            for &t in &node.inputs {
                let shape = view.shape(t);
                let req = ewise_req(class_spec, shape);
                cost += input_fetch_bytes(shape, spec(t), &req, opts.ways);
            }
            for (_, t) in extra.of_node(m) {
                let shape = view.shape(t);
                let req = ewise_req(class_spec, shape);
                cost += input_fetch_bytes(shape, spec(t), &req, opts.ways);
            }
            // Output respec: the class computes its outputs in `class_spec`
            // by construction, which is also the bundle spec -> free.
        }
        return Some((cost, None));
    }

    // Non-ewise: the whole class shares one strategy; pick the cheapest over
    // the summed per-member costs (first/last timesteps may read different
    // bundles than interior ones).
    let mut best: Option<(f64, usize)> = None;
    for (idx, st) in info.strategies.iter().enumerate() {
        let mut total = 0.0;
        for &m in &info.members {
            let node = g.node(m);
            let out_shape = view.shape(node.output);
            for (i, &t) in node.inputs.iter().enumerate() {
                let req = st.inputs.get(i).cloned().unwrap_or(ConcreteReq::Unused);
                total += input_fetch_bytes(view.shape(t), spec(t), &req, opts.ways);
            }
            for (for_input, t) in extra.of_node(m) {
                // The buffer is a slab of the original input: splitting it
                // the way the strategy needs is free; anything else costs
                // like the input itself.
                let req = st.inputs.get(for_input).cloned().unwrap_or(ConcreteReq::Unused);
                total += input_fetch_bytes(view.shape(t), spec(t), &req, opts.ways);
            }
            total += match st.out {
                ConcreteOut::Split(c) => {
                    respec_bytes(out_shape, TensorSpec::Split(c), spec(node.output), opts.ways)
                }
                ConcreteOut::Reduce => output_bytes(out_shape, ConcreteOut::Reduce, opts.ways),
            };
        }
        if best.map(|(b, _)| total < b).unwrap_or(true) {
            best = Some((total, idx));
        }
    }
    best.map(|(c, idx)| (c, Some(idx)))
}

fn ewise_req(class_spec: TensorSpec, shape: &Shape) -> ConcreteReq {
    match class_spec {
        TensorSpec::Split(d) if d < shape.rank() => ConcreteReq::Split { dim: d, halo: 0.0 },
        _ => ConcreteReq::Replicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::coarsen;
    use tofu_graph::{autodiff, Attrs};

    fn matmul_chain(batch: usize, dims: &[usize]) -> (Graph, Vec<TensorId>) {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![batch, dims[0]]));
        let mut weights = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            let wt = g.add_weight(&format!("w{i}"), Shape::new(vec![w[0], w[1]]));
            weights.push(wt);
            t = g.add_op("matmul", &format!("fc{i}"), &[t, wt], Attrs::new()).unwrap();
        }
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let loss = g.add_op("softmax_ce", "loss", &[t, labels], Attrs::new()).unwrap();
        autodiff::backward(&mut g, loss, &weights).unwrap();
        (g, weights)
    }

    fn run_dp(g: &Graph) -> StepPlan {
        let view = ShapeView::from_graph(g);
        let cg = coarsen(g);
        search(g, &view, &cg, &ExtraInputs::new(), &DpOptions::default()).unwrap()
    }

    #[test]
    fn single_matmul_training_step_has_plan() {
        let (g, _) = matmul_chain(8, &[16, 10]);
        let plan = run_dp(&g);
        assert_eq!(plan.ways, 2);
        assert_eq!(plan.node_choice.len(), g.num_nodes());
        assert!(plan.comm_bytes.is_finite());
        // Every tensor received a spec.
        assert_eq!(plan.tensor_spec.len(), g.num_tensors());
    }

    #[test]
    fn deep_chain_plan_cost_is_reasonable() {
        let (g, _) = matmul_chain(8, &[32, 64, 64, 10]);
        let plan = run_dp(&g);
        // The plan must be cheaper than all-replication of all weights.
        let weight_bytes: u64 = g.weight_bytes();
        assert!(plan.comm_bytes < 3.0 * weight_bytes as f64 + 1e6);
    }

    #[test]
    fn batch_split_is_chosen_for_data_parallel_friendly_graph() {
        // With a big batch and small weights, splitting the batch dimension
        // everywhere (data parallelism within the group) is optimal: weights
        // replicated (their fetch is cheap), activations split along dim 0.
        let (g, _) = matmul_chain(1024, &[4, 4]);
        let plan = run_dp(&g);
        let x = g.tensor_by_name("x").unwrap();
        assert_eq!(plan.spec(x), TensorSpec::Split(0));
    }

    #[test]
    fn huge_weights_prefer_model_parallelism() {
        // Tiny batch, enormous weight: the weight must not be replicated;
        // the DP should split it and pay for the small activations instead.
        let (g, weights) = matmul_chain(2, &[2048, 2048]);
        let plan = run_dp(&g);
        let w_spec = plan.spec(weights[0]);
        assert!(matches!(w_spec, TensorSpec::Split(_)), "weight replicated: {w_spec:?}");
    }

    #[test]
    fn disallowing_reduce_increases_cost() {
        let (g, _) = matmul_chain(64, &[256, 256, 10]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let with = search(&g, &view, &cg, &ExtraInputs::new(), &DpOptions::default()).unwrap();
        let without = search(
            &g,
            &view,
            &cg,
            &ExtraInputs::new(),
            &DpOptions { allow_reduce: false, ..DpOptions::default() },
        )
        .unwrap();
        assert!(without.comm_bytes >= with.comm_bytes);
    }

    #[test]
    fn four_way_step_works() {
        let (g, _) = matmul_chain(16, &[32, 32]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let plan = search(
            &g,
            &view,
            &cg,
            &ExtraInputs::new(),
            &DpOptions { ways: 4, ..DpOptions::default() },
        )
        .unwrap();
        assert_eq!(plan.ways, 4);
    }

    #[test]
    fn one_way_step_is_rejected() {
        let (g, _) = matmul_chain(4, &[4, 4]);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let err = search(
            &g,
            &view,
            &cg,
            &ExtraInputs::new(),
            &DpOptions { ways: 1, ..DpOptions::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadWorkerCount(1)));
    }

    #[test]
    fn extra_inputs_participate() {
        let (g, _) = matmul_chain(8, &[16, 10]);
        let cg = coarsen(&g);
        let mut view = ShapeView::from_graph(&g);
        // Attach a fetch buffer for fc0's weight input.
        let fc0 = g.producer(g.tensor_by_name("fc0:out").unwrap()).unwrap();
        let pseudo = TensorId(g.num_tensors());
        let mut extra = ExtraInputs::new();
        extra.push(fc0, 1, pseudo);
        view.push(Shape::new(vec![8, 10]));
        let plan = search(&g, &view, &cg, &extra, &DpOptions::default()).unwrap();
        assert_eq!(plan.tensor_spec.len(), g.num_tensors() + 1);
    }
}
