//! A minimal JSON value, writer and parser (std only).
//!
//! The workspace has no crates.io access, so this module is the single JSON
//! implementation everything shares: the Chrome-trace exporter writes
//! through it, the round-trip tests and `trace_dump`'s self-validation parse
//! through it, and the bench binaries build their `BENCH_*.json` files from
//! [`Json`] values instead of hand-rolled `push_str` formatting.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset of the problem.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8 in string")?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Convenience: a `BTreeMap` of named numbers as a JSON object.
pub fn num_map(map: &BTreeMap<String, f64>) -> Json {
    Json::Obj(map.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::obj(vec![
            ("name", "trace \"x\"\n".into()),
            ("n", 42u64.into()),
            ("pi", 3.25.into()),
            ("neg", (-7.5).into()),
            ("ok", true.into()),
            ("nothing", Json::Null),
            ("list", Json::Arr(vec![1u64.into(), "two".into(), Json::Bool(false)])),
            ("nested", Json::obj(vec![("k", Json::Arr(vec![]))])),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back, v, "source: {text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_json(), "5");
        assert_eq!(Json::Num(5.5).to_json(), "5.5");
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [true], "d": false}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_array).map(|a| a.len()), Some(1));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse(r#""café ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }
}
