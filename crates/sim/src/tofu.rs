//! Simulating Tofu-partitioned training (and the Fig. 10 partitioner
//! comparison).

use tofu_core::genplan::{generate, GenOptions};
use tofu_core::recursive::PartitionPlan;
use tofu_graph::Graph;

use crate::event::simulate_with_leaf_devices;
use crate::machine::Machine;
use crate::memory::per_device_memory;
use crate::{Outcome, Perf};

/// Options for the partitioned-execution simulation.
#[derive(Debug, Clone, Copy)]
pub struct TofuSimOptions {
    /// Insert §6 control dependencies (enables per-worker buffer reuse).
    pub control_deps: bool,
    /// Extra optimizer-history copies per weight shard (1.0 = the 3W rule).
    pub optimizer_copies: f64,
}

impl Default for TofuSimOptions {
    fn default() -> Self {
        TofuSimOptions { control_deps: true, optimizer_copies: 1.0 }
    }
}

/// Detailed result of a partitioned-execution simulation.
#[derive(Debug, Clone)]
pub struct PartitionedRun {
    /// Throughput/latency/memory summary.
    pub outcome: Outcome,
    /// Iteration time with communication zeroed (Fig. 10's compute bar).
    pub compute_only_seconds: f64,
    /// Total bytes moved between GPUs per iteration.
    pub comm_bytes: f64,
    /// Per-device peak memory (GB).
    pub per_device_gb: Vec<f64>,
}

/// Generates the partitioned graph for `plan` and simulates one iteration.
pub fn run_partitioned(
    g: &Graph,
    plan: &PartitionPlan,
    batch: usize,
    machine: &Machine,
    opts: &TofuSimOptions,
) -> tofu_core::Result<PartitionedRun> {
    let sharded = generate(g, plan, &GenOptions { control_deps: opts.control_deps })?;
    let sim = simulate_with_leaf_devices(
        &sharded.graph,
        &sharded.device_of_node,
        &sharded.device_of_tensor,
        machine,
        false,
    );
    let free = simulate_with_leaf_devices(
        &sharded.graph,
        &sharded.device_of_node,
        &sharded.device_of_tensor,
        machine,
        true,
    );
    let mems = per_device_memory(
        &sharded.graph,
        &sharded.device_of_node,
        machine.gpus,
        opts.control_deps,
        opts.optimizer_copies,
    );
    let per_device_gb: Vec<f64> = mems.iter().map(|m| m.peak_gb()).collect();
    let peak = per_device_gb.iter().copied().fold(0.0, f64::max);
    let outcome = if peak * 1e9 > machine.mem_capacity as f64 {
        Outcome::Oom { peak_gb: peak }
    } else {
        Outcome::Ran(Perf {
            iter_seconds: sim.makespan,
            throughput: batch as f64 / sim.makespan,
            batch,
            peak_gb: peak,
            comm_fraction: sim.comm_overhead_fraction(free.makespan),
        })
    };
    Ok(PartitionedRun {
        outcome,
        compute_only_seconds: free.makespan,
        comm_bytes: sim.comm_bytes,
        per_device_gb,
    })
}

/// Predicted cost of degraded operation after elastic recovery: the same
/// model re-partitioned for the survivor count, simulated on the shrunk
/// machine, side by side with the full-width prediction.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// Prediction at the original worker count.
    pub full: PartitionedRun,
    /// Prediction at the surviving worker count.
    pub degraded: PartitionedRun,
    /// Degraded iteration time over full-width iteration time (`∞` when
    /// either configuration fails to run, e.g. the survivors OOM).
    pub slowdown: f64,
}

/// Simulates the elastic-recovery "before and after": partitions `g` for
/// both `full_workers` and `surviving_workers`, simulates each on a machine
/// with that many GPUs (interconnect and per-GPU specs unchanged), and
/// reports the slowdown a shrink would cost — the number an operator weighs
/// against waiting for the dead device to be replaced.
pub fn simulate_degraded(
    g: &Graph,
    part_opts: &tofu_core::PartitionOptions,
    surviving_workers: usize,
    batch: usize,
    machine: &Machine,
    opts: &TofuSimOptions,
) -> tofu_core::Result<DegradedRun> {
    let full_plan = tofu_core::partition(g, part_opts)?;
    let shrunk_plan = tofu_core::partition(
        g,
        &tofu_core::PartitionOptions { workers: surviving_workers, ..*part_opts },
    )?;
    let full_machine = Machine { gpus: part_opts.workers, ..machine.clone() };
    let shrunk_machine = Machine { gpus: surviving_workers, ..machine.clone() };
    let full = run_partitioned(g, &full_plan, batch, &full_machine, opts)?;
    let degraded = run_partitioned(g, &shrunk_plan, batch, &shrunk_machine, opts)?;
    let slowdown = match (&full.outcome, &degraded.outcome) {
        (Outcome::Ran(f), Outcome::Ran(d)) if f.iter_seconds > 0.0 => {
            d.iter_seconds / f.iter_seconds
        }
        _ => f64::INFINITY,
    };
    Ok(DegradedRun { full, degraded, slowdown })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_core::recursive::{partition, PartitionOptions};
    use tofu_graph::{autodiff, Attrs};
    use tofu_tensor::Shape;

    fn toy(batch: usize, hidden: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![batch, hidden]));
        let w = g.add_weight("w", Shape::new(vec![hidden, hidden]));
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let y = g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[y, labels], Attrs::new()).unwrap();
        autodiff::backward(&mut g, loss, &[w]).unwrap();
        g
    }

    #[test]
    fn partitioned_run_produces_performance() {
        let machine = Machine::p2_8xlarge();
        let g = toy(64, 256);
        let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
        let run = run_partitioned(&g, &plan, 64, &machine, &TofuSimOptions::default()).unwrap();
        let Outcome::Ran(p) = run.outcome else { panic!("fits easily") };
        assert!(p.throughput > 0.0);
        assert_eq!(run.per_device_gb.len(), 8);
        assert!(run.comm_bytes > 0.0);
        assert!(run.compute_only_seconds <= p.iter_seconds + 1e-12);
    }

    #[test]
    fn control_deps_reduce_memory() {
        let machine = Machine::p2_8xlarge();
        let g = toy(64, 256);
        let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
        let with = run_partitioned(
            &g,
            &plan,
            64,
            &machine,
            &TofuSimOptions { control_deps: true, optimizer_copies: 0.0 },
        )
        .unwrap();
        let without = run_partitioned(
            &g,
            &plan,
            64,
            &machine,
            &TofuSimOptions { control_deps: false, optimizer_copies: 0.0 },
        )
        .unwrap();
        let max_with = with.per_device_gb.iter().copied().fold(0.0, f64::max);
        let max_without = without.per_device_gb.iter().copied().fold(0.0, f64::max);
        assert!(max_without >= max_with, "{max_without} < {max_with}");
    }

    #[test]
    fn partitioning_reduces_per_device_memory() {
        let machine = Machine::p2_8xlarge();
        let g = toy(64, 512);
        let single = {
            let schedule: Vec<_> = g.node_ids().collect();
            crate::memory::device_memory(&g, &schedule, true, 1.0).peak_gb()
        };
        let plan = partition(&g, &PartitionOptions { workers: 8, ..Default::default() }).unwrap();
        let run = run_partitioned(&g, &plan, 64, &machine, &TofuSimOptions::default()).unwrap();
        let max = run.per_device_gb.iter().copied().fold(0.0, f64::max);
        assert!(
            max < single * 0.5,
            "per-device {max} GB vs single-device {single} GB"
        );
    }

    #[test]
    fn degraded_simulation_predicts_a_bounded_slowdown() {
        let machine = Machine::p2_8xlarge();
        let g = toy(840, 256);
        let part = PartitionOptions { workers: 8, ..Default::default() };
        // Losing one of eight devices: the survivor plan must still run, on
        // seven devices, slower than full width but by a bounded factor.
        let run = simulate_degraded(&g, &part, 7, 840, &machine, &TofuSimOptions::default())
            .unwrap();
        assert!(run.full.outcome.ran() && run.degraded.outcome.ran());
        assert_eq!(run.degraded.per_device_gb.len(), 7);
        assert!(
            run.slowdown >= 1.0 - 1e-9 && run.slowdown < 8.0,
            "slowdown {} out of range",
            run.slowdown
        );
    }
}
