//! Error type for tensor operations.

use std::fmt;

/// Errors produced by tensor construction and kernels.
///
/// All tensor APIs are fallible rather than panicking so that higher layers
/// (the graph executor in particular) can surface shape mismatches as
/// structured errors pointing at the offending graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count of the provided buffer does not match the shape.
    DataLength {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// An axis argument is out of range for the tensor's rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A slice range `[start, end)` is invalid for the dimension extent.
    InvalidSlice {
        /// Start of the requested range.
        start: usize,
        /// End of the requested range (exclusive).
        end: usize,
        /// Extent of the sliced dimension.
        extent: usize,
    },
    /// An operation's shape requirements are violated (free-form detail).
    Incompatible(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLength { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidSlice { start, end, extent } => {
                write!(f, "invalid slice [{start}, {end}) for extent {extent}")
            }
            TensorError::Incompatible(msg) => write!(f, "incompatible operands: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::DataLength { expected: 4, actual: 3 };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
        let e = TensorError::ShapeMismatch { lhs: vec![2], rhs: vec![3] };
        assert!(e.to_string().contains("[2]"));
        let e = TensorError::AxisOutOfRange { axis: 5, rank: 2 };
        assert!(e.to_string().contains("axis 5"));
        let e = TensorError::InvalidSlice { start: 1, end: 9, extent: 4 };
        assert!(e.to_string().contains("extent 4") || e.to_string().contains('4'));
        let e = TensorError::Incompatible("matmul inner dims".into());
        assert!(e.to_string().contains("matmul"));
    }
}
