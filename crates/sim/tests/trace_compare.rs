//! Acceptance tests for the runtime-vs-simulator comparison: measured
//! channel traffic must equal the simulator's comm-bytes prediction exactly,
//! and each worker's measured footprint must land within 10% of
//! `per_device_memory`.

use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::{Executor, Graph, TensorId, TensorKind};
use tofu_models::{decoder_block, mlp, wresnet, DecoderConfig, MlpConfig, WResNetConfig};
use tofu_runtime::{run, run_with_options, Fault, FaultPlan, RunOptions, RuntimeError};
use tofu_sim::{compare_trace, Machine};
use tofu_tensor::Tensor;

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            // Variance-scaled init: uniform 0.5-scale weights explode through
            // a 50-layer stack, and f32 gradients at magnitude 1e9 lose all
            // relative precision to summation reordering.
            let fan_in = (meta.shape.volume() / meta.shape.dim(0).max(1)).max(1);
            let scale = (3.0f32 / fan_in as f32).sqrt().min(0.5);
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, scale)
        };
        out.push((t, v));
    }
    out
}

fn shard(g: &Graph, workers: usize) -> (ShardedGraph, Vec<(TensorId, Tensor)>) {
    let plan = partition(g, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(g, &plan, &GenOptions::default()).unwrap();
    assert!(sharded.exact);
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        shard_feeds.extend(sharded.scatter(t, &v).unwrap());
    }
    (sharded, shard_feeds)
}

fn assert_report(sharded: &ShardedGraph, shard_feeds: &[(TensorId, Tensor)], label: &str) {
    let out = run(sharded, shard_feeds).unwrap();
    let report = compare_trace(sharded, &Machine::p2_8xlarge(), &out.trace, true);
    assert!(
        report.comm_bytes_match(),
        "{label}: measured {} B over channels, simulator predicted {} B",
        report.measured_comm_bytes,
        report.predicted_comm_bytes
    );
    assert!(
        report.memory_within(0.10),
        "{label}: a device's footprint strayed >10% from per_device_memory:\n{}",
        report.summary()
    );
    assert_eq!(report.devices.len(), sharded.workers);
    for d in &report.devices {
        assert!(d.ops > 0, "{label}: device {} executed nothing", d.device);
        assert!(d.predicted_memory_bytes > 0 && d.measured_memory_bytes > 0);
    }
    let s = report.summary();
    assert!(s.contains("exact match"), "summary should flag the comm match:\n{s}");
}

#[test]
fn partial_trace_from_aborted_run_is_reportable() {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    let (sharded, shard_feeds) = shard(&m.graph, 4);
    let mid = sharded.worker_schedule(1).len() / 2;
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Kill { worker: 1, pos: mid }),
        ..Default::default()
    };
    let failure = match run_with_options(&sharded, &shard_feeds, &opts) {
        Err(RuntimeError::Failed(f)) => *f,
        other => panic!("expected a failed run, got {other:?}"),
    };
    // The post-mortem's partial trace still lines up against the simulator:
    // the report renders, flags itself partial, and does not pretend the
    // exact-match columns hold.
    let report = compare_trace(&sharded, &Machine::p2_8xlarge(), &failure.trace, true);
    assert!(report.is_partial(), "aborted run must yield a partial report");
    assert!(report.devices.iter().any(|d| !d.completed));
    let s = report.summary();
    assert!(s.contains("[ABORTED]"), "summary must mark aborted devices:\n{s}");
    assert!(!s.contains("MISMATCH"), "partial traces are not comm-compared:\n{s}");
}

#[test]
fn mlp_trace_matches_sim_predictions() {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    for workers in [2usize, 4] {
        let (sharded, shard_feeds) = shard(&m.graph, workers);
        assert_report(&sharded, &shard_feeds, &format!("mlp w={workers}"));
    }
}

#[test]
fn decoder_trace_matches_sim_predictions() {
    // The transformer decoder exercises strategies the other models never
    // pick — head splits on rank-3 weights and reduction splits on the
    // attention output projection — so its measured channel traffic pinning
    // down the simulator's prediction exactly is a strong regression gate.
    let cfg = DecoderConfig {
        seq: 16,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        classes: 8,
        with_updates: true,
    };
    let m = decoder_block(&cfg).unwrap();
    for workers in [2usize, 4] {
        let (sharded, shard_feeds) = shard(&m.graph, workers);
        assert_report(&sharded, &shard_feeds, &format!("decoder w={workers}"));
    }
}

#[test]
fn wresnet_trace_matches_sim_predictions_and_executor() {
    let cfg =
        WResNetConfig { layers: 50, width: 1, batch: 4, image: 16, classes: 8, with_updates: true };
    let m = wresnet(&cfg).unwrap();
    let (sharded, shard_feeds) = shard(&m.graph, 2);

    // Numeric ground truth: the 2-worker runtime must reproduce the
    // single-device executor's loss and gradients.
    let mut base = Executor::new();
    for (t, v) in feeds(&m.graph) {
        base.feed(t, v);
    }
    let base_vals = base.run(&m.graph).unwrap();
    let out = run(&sharded, &shard_feeds).unwrap();
    for &t in std::iter::once(&m.loss).chain(m.grads.iter().map(|(_, gw)| gw)) {
        let expect = &base_vals[&t];
        let got = sharded.gather(t, expect.shape(), &out.values).unwrap();
        assert!(got.allclose(expect, 1e-3), "tensor {} diverged", m.graph.tensor(t).name);
    }

    assert_report(&sharded, &shard_feeds, "wresnet w=2");
}
