//! Table 3: RNN throughput (samples/sec) at hidden size 4096 — Tofu vs
//! operator placement in its MXNet flavor and its TensorFlow flavor (which
//! lacks in-place gradient aggregation, the cause the paper identifies for
//! TF's ~2x gap).

use tofu_bench::{batch_candidates, fmt_outcome, fmt_paper, rnn_builder};
use tofu_core::baselines::Algorithm;
use tofu_sim::{op_placement, Machine, Outcome};

const PAPER: [[f64; 3]; 3] = [
    // RNN-6, RNN-8, RNN-10 rows for [Tofu, MX-OpPlacement, TF-OpPlacement].
    [210.0, 107.0, 50.0],
    [154.0, 95.0, 36.0],
    [122.0, 59.0, 30.0],
];

fn main() {
    let machine = Machine::p2_8xlarge();
    let candidates = batch_candidates();

    println!("Table 3: RNN throughput (samples/sec), hidden size 4096\n");
    println!(
        "{:<18} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "", "Tofu", "(paper)", "MX-OpPl", "(paper)", "TF-OpPl", "(paper)"
    );
    for (ri, layers) in [6usize, 8, 10].into_iter().enumerate() {
        let build = rnn_builder(layers, 4096);
        let (tofu_out, _) =
            tofu_bench::partitioned_sweep(&build, Algorithm::Tofu, &candidates, &machine);
        let sweep_placement = |in_place: bool| -> Outcome {
            let mut last = Outcome::Oom { peak_gb: 0.0 };
            for &batch in &candidates {
                if let Some(g) = build(batch) {
                    let out = op_placement(&g, batch, &machine, in_place);
                    if out.ran() {
                        return out;
                    }
                    last = out;
                }
            }
            last
        };
        let mx = sweep_placement(true);
        let tf = sweep_placement(false);
        println!(
            "{:<18} {} {} | {} {} | {} {}",
            format!("RNN-{layers}"),
            fmt_outcome(&tofu_out),
            fmt_paper(Some(PAPER[ri][0])),
            fmt_outcome(&mx),
            fmt_paper(Some(PAPER[ri][1])),
            fmt_outcome(&tf),
            fmt_paper(Some(PAPER[ri][2])),
        );
    }
    println!(
        "\nShape checks: Tofu ~2x over MX operator placement; the TF flavor\n\
         trails MX because gradient aggregation is not in place."
    );
}
