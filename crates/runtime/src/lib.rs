//! Multi-worker runtime for Tofu-partitioned graphs.
//!
//! Executes a [`ShardedGraph`] across `N` OS threads — one per logical
//! device — connected by channels. Each worker owns:
//!
//! - its serial sub-schedule of the sharded graph
//!   ([`ShardedGraph::worker_schedule`]), which is a subsequence of the
//!   global topological order;
//! - a [`BufferPool`] seeded from the static memory planner's
//!   [`BufferPlan`], so the measured footprint can be held against
//!   `tofu-sim`'s `per_device_memory` prediction;
//! - typed send/receive ports for cross-device tensor pieces.
//!
//! Communication follows the §6 invariant the generator establishes: every
//! cross-device data edge enters a `multi_fetch` node, so producers *push*
//! exactly the piece each remote consumer needs (precomputed by
//! [`ShardedGraph::comm_edges`]) and non-fetch nodes only ever read local
//! values. Pushes go over unbounded channels and never block, which rules
//! out send/receive cycles: the earliest unexecuted node across all workers
//! (in global topological order) always has its remote pieces already sent
//! or owed by producers that come strictly earlier, so some worker can
//! always make progress.
//!
//! The run records a [`RunTrace`] — per-op wall-clock events, per-link
//! bytes, per-worker pool peaks — for side-by-side comparison with the
//! simulator's predictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod pool;
mod trace;

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tofu_core::{fetch_pieces, CommEdge, FetchPiece, ShardedGraph};
use tofu_graph::{execute_node, plan_buffers, BufferPlan, NodeId, TensorId, TensorKind};
use tofu_tensor::{Shape, Tensor};

pub use error::RuntimeError;
pub use pool::BufferPool;
pub use trace::{LinkStat, OpEvent, RunTrace, WorkerTrace};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Knobs of a run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Replay the planner with cross-op buffer reuse (the Fig. 7 control
    /// dependencies make this safe; turning it off models the ablation).
    pub buffer_reuse: bool,
    /// How long a worker waits on a remote piece before declaring the run
    /// stalled (guards against a dead peer; never hit on healthy runs).
    pub recv_timeout: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { buffer_reuse: true, recv_timeout: Duration::from_secs(60) }
    }
}

/// Everything a run produces: the value of every tensor of the sharded
/// graph (gather the originals with [`ShardedGraph::gather`]) plus the
/// measured trace.
#[derive(Debug)]
pub struct RunOutput {
    /// Value of every tensor, merged across workers.
    pub values: BTreeMap<TensorId, Tensor>,
    /// The measured event trace.
    pub trace: RunTrace,
}

/// One cross-worker message: the extracted piece input `input_index` of
/// `consumer` is waiting for.
struct Msg {
    consumer: NodeId,
    input_index: usize,
    piece: Tensor,
}

/// A worker's end of the interconnect: its own receiver plus a sender clone
/// for every other worker (`None` at its own slot).
type Ports = (Receiver<Msg>, Vec<Option<Sender<Msg>>>);

/// What one worker thread hands back: its trace, the values it produced, and
/// per-destination (bytes, messages) send tallies.
type WorkerOutput = (WorkerTrace, BTreeMap<TensorId, Tensor>, Vec<(u64, u64)>);

/// Executes `sharded` across one thread per worker with default options.
/// `feeds` carries values for the sharded graph's leaf tensors (typically
/// from [`ShardedGraph::scatter`] over the original feeds).
pub fn run(sharded: &ShardedGraph, feeds: &[(TensorId, Tensor)]) -> Result<RunOutput> {
    run_with_options(sharded, feeds, &RunOptions::default())
}

/// [`run`] with explicit options.
pub fn run_with_options(
    sharded: &ShardedGraph,
    feeds: &[(TensorId, Tensor)],
    opts: &RunOptions,
) -> Result<RunOutput> {
    let k = sharded.workers;
    let edges = sharded.comm_edges();

    // Producer-side send lists: leaf shards go out at startup (their owner
    // has them before any node runs); computed tensors go out right after
    // their producing node executes.
    let mut startup_sends: Vec<Vec<&CommEdge>> = vec![Vec::new(); k];
    let mut node_sends: BTreeMap<NodeId, Vec<&CommEdge>> = BTreeMap::new();
    for e in &edges {
        match sharded.graph.producer(e.tensor) {
            Some(p) => node_sends.entry(p).or_default().push(e),
            None => startup_sends[e.src].push(e),
        }
    }

    // One channel per worker; worker `w` keeps receiver `w` and a sender
    // clone for every *other* worker (holding one's own sender would keep
    // the channel alive and turn a dead-peer stall into a hang).
    let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(k);
    let mut rxs: Vec<Receiver<Msg>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let ports: Vec<Ports> = rxs
        .into_iter()
        .enumerate()
        .map(|(w, rx)| {
            let out = (0..k).map(|d| if d != w { Some(txs[d].clone()) } else { None }).collect();
            (rx, out)
        })
        .collect();
    drop(txs);

    type WorkerResult = Result<WorkerOutput>;
    let results: Mutex<Vec<Option<WorkerResult>>> = Mutex::new((0..k).map(|_| None).collect());
    let epoch = Instant::now();

    std::thread::scope(|scope| {
        for (w, (rx, out)) in ports.into_iter().enumerate() {
            let startup = &startup_sends[w];
            let node_sends = &node_sends;
            let results = &results;
            scope.spawn(move || {
                let res = Worker::new(sharded, w, feeds, rx, out, epoch, opts)
                    .and_then(|mut worker| worker.run(startup, node_sends));
                if let Some(slot) = results.lock().get_mut(w) {
                    *slot = Some(res);
                }
            });
        }
    });

    let wall = epoch.elapsed();
    let mut workers = Vec::with_capacity(k);
    let mut values = BTreeMap::new();
    let mut sent: Vec<Vec<(u64, u64)>> = Vec::with_capacity(k);
    for slot in results.into_inner() {
        let (trace, vals, per_dst) =
            slot.ok_or_else(|| RuntimeError::Internal("worker vanished".into()))??;
        workers.push(trace);
        values.extend(vals);
        sent.push(per_dst);
    }
    let mut links = Vec::new();
    for (src, per_dst) in sent.iter().enumerate() {
        for (dst, &(bytes, messages)) in per_dst.iter().enumerate() {
            if bytes > 0 || messages > 0 {
                links.push(LinkStat { src, dst, bytes, messages });
            }
        }
    }
    Ok(RunOutput { values, trace: RunTrace { workers, links, wall } })
}

/// One worker's execution state.
struct Worker<'a> {
    sharded: &'a ShardedGraph,
    w: usize,
    schedule: Vec<NodeId>,
    plan: BufferPlan,
    values: BTreeMap<TensorId, Tensor>,
    /// Remote pieces that arrived before their consumer needed them, keyed
    /// by `(consumer node, input index)`.
    pending: BTreeMap<(usize, usize), Tensor>,
    rx: Receiver<Msg>,
    txs: Vec<Option<Sender<Msg>>>,
    /// Per destination: (bytes, messages) pushed.
    sent: Vec<(u64, u64)>,
    bytes_received: u64,
    pool: BufferPool,
    ops: Vec<OpEvent>,
    busy: Duration,
    epoch: Instant,
    recv_timeout: Duration,
}

impl<'a> Worker<'a> {
    fn new(
        sharded: &'a ShardedGraph,
        w: usize,
        feeds: &[(TensorId, Tensor)],
        rx: Receiver<Msg>,
        txs: Vec<Option<Sender<Msg>>>,
        epoch: Instant,
        opts: &RunOptions,
    ) -> Result<Worker<'a>> {
        let schedule = sharded.worker_schedule(w);
        let plan = plan_buffers(&sharded.graph, &schedule, opts.buffer_reuse);
        let mut values = BTreeMap::new();
        for (t, v) in feeds {
            if sharded.device_of_tensor.get(t.0).copied().flatten() != Some(w) {
                continue;
            }
            let meta = sharded.graph.tensor(*t);
            if meta.kind == TensorKind::Intermediate {
                return Err(RuntimeError::Internal(format!(
                    "fed tensor {:?} is not a leaf",
                    meta.name
                )));
            }
            if v.shape() != &meta.shape {
                return Err(RuntimeError::Internal(format!(
                    "fed shape {} for shard {:?} declared {}",
                    v.shape(),
                    meta.name,
                    meta.shape
                )));
            }
            values.insert(*t, v.clone());
        }
        let k = txs.len();
        Ok(Worker {
            sharded,
            w,
            schedule,
            plan,
            values,
            pending: BTreeMap::new(),
            rx,
            txs,
            sent: vec![(0, 0); k],
            bytes_received: 0,
            pool: BufferPool::new(),
            ops: Vec::new(),
            busy: Duration::ZERO,
            epoch,
            recv_timeout: opts.recv_timeout,
        })
    }

    fn run(
        &mut self,
        startup: &[&CommEdge],
        node_sends: &BTreeMap<NodeId, Vec<&CommEdge>>,
    ) -> Result<WorkerOutput> {
        // Resident leaf bytes, measured from the actual fed shards this
        // worker's non-fetch nodes consume.
        let mut persistent_bytes = 0u64;
        for t in &self.plan.persistent {
            let v = self.values.get(t).ok_or_else(|| {
                RuntimeError::MissingFeed(self.sharded.graph.tensor(*t).name.clone())
            })?;
            persistent_bytes += v.shape().bytes();
        }

        // Owned leaf shards other devices fetch go out before any compute.
        for e in startup {
            self.send_edge(e)?;
        }

        for (pos, &id) in self.schedule.clone().iter().enumerate() {
            let node = self.sharded.graph.node(id);
            let start = self.epoch.elapsed();
            let out = if node.op == "multi_fetch" {
                self.assemble_fetch(id)?
            } else {
                let inputs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|t| {
                        self.values.get(t).ok_or_else(|| {
                            RuntimeError::MissingFeed(self.sharded.graph.tensor(*t).name.clone())
                        })
                    })
                    .collect::<Result<_>>()?;
                execute_node(&self.sharded.graph, id, &inputs)?
            };
            self.pool.apply(self.plan.actions[pos], out.shape().bytes())?;
            let end = self.epoch.elapsed();
            self.busy += end - start;
            self.ops.push(OpEvent { node: id, start, end });
            self.values.insert(node.output, out);
            if let Some(list) = node_sends.get(&id) {
                for e in list {
                    self.send_edge(e)?;
                }
            }
        }

        self.pool.verify_against(&self.plan)?;
        let trace = WorkerTrace {
            device: self.w,
            ops: std::mem::take(&mut self.ops),
            busy: self.busy,
            pool_peak_bytes: self.pool.peak_bytes(),
            persistent_bytes,
            bytes_sent: self.sent.iter().map(|&(b, _)| b).sum(),
            bytes_received: self.bytes_received,
        };
        Ok((trace, std::mem::take(&mut self.values), std::mem::take(&mut self.sent)))
    }

    /// Pushes the piece of `e.tensor` that `e.consumer` needs.
    fn send_edge(&mut self, e: &CommEdge) -> Result<()> {
        let src = self.values.get(&e.tensor).ok_or_else(|| {
            RuntimeError::Internal(format!("comm edge reads unevaluated tensor {:?}", e.tensor))
        })?;
        let piece = extract_piece(src, &e.piece)?;
        let bytes = piece.shape().bytes();
        let tx = self.txs[e.dst].as_ref().ok_or_else(|| {
            RuntimeError::Internal("comm edge addressed to the sending worker".into())
        })?;
        tx.send(Msg { consumer: e.consumer, input_index: e.input_index, piece })
            .map_err(|_| RuntimeError::Comm(format!("worker {} hung up", e.dst)))?;
        self.sent[e.dst].0 += bytes;
        self.sent[e.dst].1 += 1;
        Ok(())
    }

    /// Executes a `multi_fetch` node: local inputs are copied out of the
    /// worker's own values; remote inputs block on the receive port until
    /// their (already-extracted) piece arrives.
    fn assemble_fetch(&mut self, id: NodeId) -> Result<Tensor> {
        let node = self.sharded.graph.node(id);
        let pieces = fetch_pieces(&self.sharded.graph, id)
            .ok_or_else(|| RuntimeError::Internal("assemble on non-fetch node".into()))?;
        let out_shape = self.sharded.graph.tensor(node.output).shape.clone();
        let mut out = Tensor::zeros(out_shape);
        let inputs = node.inputs.clone();
        for (i, &t) in inputs.iter().enumerate() {
            let p = &pieces[i];
            if self.sharded.device_of_tensor[t.0] == Some(self.w) {
                let src = self.values.get(&t).ok_or_else(|| {
                    RuntimeError::Internal(format!("fetch reads unevaluated local {t:?}"))
                })?;
                copy_block(&mut out, src, &p.src_begin, &p.dst_begin, &p.len);
            } else {
                let piece = self.recv_piece(id, i)?;
                self.bytes_received += piece.shape().bytes();
                // The producer already extracted the block: source offsets
                // are zero in the received piece's coordinates.
                let zeros = vec![0i64; p.len.len()];
                copy_block(&mut out, &piece, &zeros, &p.dst_begin, &p.len);
            }
        }
        Ok(out)
    }

    /// The piece for `(consumer, input_index)`, from the stash or the wire.
    fn recv_piece(&mut self, consumer: NodeId, input_index: usize) -> Result<Tensor> {
        loop {
            if let Some(v) = self.pending.remove(&(consumer.0, input_index)) {
                return Ok(v);
            }
            let msg = self.rx.recv_timeout(self.recv_timeout).map_err(|e| match e {
                RecvTimeoutError::Timeout => RuntimeError::Comm(format!(
                    "worker {} stalled waiting for node {consumer:?}",
                    self.w
                )),
                RecvTimeoutError::Disconnected => {
                    RuntimeError::Comm(format!("worker {}: every peer hung up", self.w))
                }
            })?;
            self.pending.insert((msg.consumer.0, msg.input_index), msg.piece);
        }
    }
}

/// Slices the block `[src_begin, src_begin + len)` out of `src`.
fn extract_piece(src: &Tensor, p: &FetchPiece) -> Result<Tensor> {
    let mut out = src.clone();
    for (d, (&b, &l)) in p.src_begin.iter().zip(&p.len).enumerate() {
        out = out
            .slice(d, b as usize, (b + l) as usize)
            .map_err(|e| RuntimeError::Internal(format!("piece extraction: {e}")))?;
    }
    Ok(out)
}

/// Copies the `len`-sized block at `src_begin` of `src` to `dst_begin` of
/// `dst`.
fn copy_block(dst: &mut Tensor, src: &Tensor, src_begin: &[i64], dst_begin: &[i64], len: &[i64]) {
    let lens: Vec<usize> = len.iter().map(|&l| l as usize).collect();
    for idx in Shape::new(lens).indices() {
        let s: Vec<usize> =
            idx.iter().zip(src_begin).map(|(&o, &b)| o + b as usize).collect();
        let d: Vec<usize> =
            idx.iter().zip(dst_begin).map(|(&o, &b)| o + b as usize).collect();
        dst.set(&d, src.at(&s));
    }
}
