//! Reconnect-with-retry semantics of [`PlanClient::connect_with_retry`]:
//! transport failures are retried against the same address with seeded
//! backoff, typed server errors pass through untouched, and an exhausted
//! attempt budget surrenders with the typed `Exhausted` error.

use std::net::{Shutdown, TcpListener};
use std::time::Duration;

use tofu_core::recursive::PartitionOptions;
use tofu_models::{mlp, MlpConfig};
use tofu_serve::client::{ClientError, PlanClient, RetryOptions};
use tofu_serve::protocol::ErrorCode;
use tofu_serve::server::{PlanServer, ServeConfig};

fn fast_retry(attempts: usize) -> RetryOptions {
    RetryOptions {
        attempts,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter_seed: 42,
        request_timeout: Some(Duration::from_secs(5)),
    }
}

fn model() -> tofu_graph::Graph {
    mlp(&MlpConfig { batch: 24, dims: vec![48, 24], classes: 24, with_updates: true })
        .expect("model")
        .graph
}

#[test]
fn dead_server_exhausts_the_attempt_budget_with_a_typed_error() {
    // Reserve a port, then free it: nothing listens there afterwards.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        l.local_addr().expect("addr").to_string()
    };
    match PlanClient::connect_with_retry(&addr, fast_retry(3)) {
        Err(ClientError::Exhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(
                matches!(*last, ClientError::Protocol(_)),
                "last failure should be a transport error, got {last}"
            );
        }
        Err(other) => panic!("expected Exhausted, got {other}"),
        Ok(_) => panic!("connected to a dead address"),
    }
}

#[test]
fn a_dropped_connection_is_reconnected_and_the_request_resent() {
    let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = PlanClient::connect_with_retry(&addr, fast_retry(4)).expect("connect");
    client.ping().expect("ping over the first connection");

    // Sever the established connection under the client: the next request's
    // first attempt fails at the transport layer and must transparently
    // reconnect to the (still live) server and resend.
    client.stream_mut().shutdown(Shutdown::Both).expect("sever connection");
    client.ping().expect("ping resent over a fresh connection");

    let g = model();
    let opts = PartitionOptions { workers: 4, ..Default::default() };
    let served = client.partition("tenant-a", &g, &opts, None).expect("plan after reconnect");
    assert!(!served.fingerprint.is_empty());
    server.shutdown();
}

#[test]
fn typed_server_errors_are_never_retried() {
    let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = PlanClient::connect_with_retry(&addr, fast_retry(5)).expect("connect");
    let g = model();
    let opts = PartitionOptions { workers: 4, ..Default::default() };
    // A zero deadline is a *served answer* (deadline_missed), not a
    // transport failure: it must come back as Server, not Exhausted, and
    // the connection must stay usable (no reconnect churn).
    match client.partition("tenant-a", &g, &opts, Some(0)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::DeadlineMissed),
        other => panic!("expected a typed server error, got {other:?}"),
    }
    client.ping().expect("connection survived the typed error");
    server.shutdown();
}

#[test]
fn without_retry_a_severed_connection_is_a_plain_protocol_error() {
    let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.addr()).expect("connect");
    client.ping().expect("ping");
    client.stream_mut().shutdown(Shutdown::Both).expect("sever connection");
    match client.ping() {
        Err(ClientError::Protocol(_)) => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
    server.shutdown();
}
