//! Differential fuzz harness: the optimized search engine (memoized,
//! dominance-pruned, cached) against the reference `unoptimized_search` on
//! random graphs.
//!
//! The contract (see DESIGN.md "Search performance"): with a beam wide
//! enough to never truncate, both engines walk the same states in the same
//! order and sum costs along the same paths, so the optimized engine's total
//! cost must be **bit-identical** to the reference's — not merely close —
//! and on these deterministic tie-breaks the chosen plan matches too.
//! Worker counts deliberately include primes and non-powers-of-two.

mod common;

use proptest::prelude::*;

use tofu_core::coarsen::coarsen;
use tofu_core::dp::{search, unoptimized_search, DpOptions, ExtraInputs};
use tofu_core::recursive::{partition, PartitionOptions};
use tofu_core::strategies::ShapeView;
use tofu_core::{CoreError, SearchTuning};
use tofu_graph::Graph;

/// Exact-search options: the beam and state bound are far above anything a
/// fuzz-sized graph reaches, so pruning is purely cost-based (sound) and the
/// bit-identity contract applies.
fn exact_opts(ways: usize) -> DpOptions {
    DpOptions { ways, state_bound: 50_000_000, internal_bound: 1 << 22, beam: 50_000_000, ..Default::default() }
}

/// Error-parity contract. A `SearchSpaceExceeded` reference abort is the
/// one place the engines may legitimately diverge: the optimized frontier
/// can stay under a bound the unpruned frontier blows through. Every other
/// outcome must match variant-for-variant.
fn check_error_parity(
    opt: &Result<impl std::fmt::Debug, CoreError>,
    reference: &Result<impl std::fmt::Debug, CoreError>,
) -> bool {
    match (opt, reference) {
        (Ok(_), Ok(_)) => true,
        (_, Err(CoreError::SearchSpaceExceeded { .. })) => false,
        (Err(a), Err(b)) => {
            assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "engines failed differently: optimized {a:?} vs reference {b:?}"
            );
            false
        }
        (a, b) => panic!("engine outcome mismatch: optimized {a:?} vs reference {b:?}"),
    }
}

/// Runs one basic step through both engines and asserts the contract.
fn check_step(g: &Graph, ways: usize) {
    let view = ShapeView::from_graph(g);
    let cg = coarsen(g);
    let extra = ExtraInputs::new();
    let opts = exact_opts(ways);
    let ref_opts = DpOptions { tuning: SearchTuning::reference(), ..opts };
    let optimized = search(g, &view, &cg, &extra, &opts);
    let reference = unoptimized_search(g, &view, &cg, &extra, &ref_opts, None);
    if !check_error_parity(&optimized, &reference) {
        return;
    }
    let optimized = optimized.unwrap();
    let reference = reference.unwrap();
    assert_eq!(
        optimized.comm_bytes.to_bits(),
        reference.comm_bytes.to_bits(),
        "step cost mismatch at ways {ways}: optimized {} vs reference {}",
        optimized.comm_bytes,
        reference.comm_bytes
    );
    assert_eq!(optimized.tensor_spec, reference.tensor_spec, "plan specs diverged at ways {ways}");
    assert_eq!(optimized.node_choice, reference.node_choice, "node choices diverged at ways {ways}");
}

/// Runs a full recursive partition through both engines and asserts the
/// contract step-by-step.
fn check_partition(g: &Graph, workers: usize) {
    let opts = PartitionOptions {
        workers,
        state_bound: 50_000_000,
        internal_bound: 1 << 22,
        beam: 50_000_000,
        ..Default::default()
    };
    let ref_opts = PartitionOptions { tuning: SearchTuning::reference(), ..opts };
    let optimized = partition(g, &opts);
    let reference = partition(g, &ref_opts);
    if !check_error_parity(&optimized, &reference) {
        return;
    }
    let optimized = optimized.unwrap();
    let reference = reference.unwrap();
    assert_eq!(
        optimized.total_comm_bytes().to_bits(),
        reference.total_comm_bytes().to_bits(),
        "total cost mismatch at {workers} workers: optimized {} vs reference {}",
        optimized.total_comm_bytes(),
        reference.total_comm_bytes()
    );
    assert_eq!(optimized.steps.len(), reference.steps.len());
    for (a, b) in optimized.steps.iter().zip(reference.steps.iter()) {
        assert_eq!(a.ways, b.ways);
        assert_eq!(
            a.plan.comm_bytes.to_bits(),
            b.plan.comm_bytes.to_bits(),
            "per-step cost mismatch at {workers} workers"
        );
        assert_eq!(a.plan.tensor_spec, b.plan.tensor_spec, "plan diverged at {workers} workers");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Basic-step differential on layered random DAGs.
    #[test]
    fn step_matches_reference_on_random_dags(
        seed in 0u64..1_000_000,
        ops in 4usize..14,
        ways in prop::sample::select(vec![2usize, 3, 5, 7]),
    ) {
        let g = common::random_dag(seed, ops);
        check_step(&g, ways);
    }

    /// Basic-step differential on conv towers (3-D shapes, halo costs).
    #[test]
    fn step_matches_reference_on_conv_towers(
        seed in 0u64..1_000_000,
        layers in 1usize..4,
        ways in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let g = common::conv_tower(seed, layers);
        check_step(&g, ways);
    }

    /// Full recursive partition differential on trainable MLPs, including
    /// prime and non-power-of-two worker counts (k = k1·…·km recursion with
    /// mixed factors).
    #[test]
    fn partition_matches_reference_on_training_graphs(
        seed in 0u64..1_000_000,
        workers in prop::sample::select(vec![2usize, 3, 4, 5, 6, 7, 8, 12]),
    ) {
        let g = common::random_training_mlp(seed);
        check_partition(&g, workers);
    }
}

/// A fixed-seed smoke check that the harness rejects nothing silently: at
/// least some fuzz cases must reach the Ok/Ok branch end-to-end.
#[test]
fn differential_harness_exercises_success_paths() {
    let mut ok = 0usize;
    for seed in 0..20u64 {
        let g = common::random_dag(seed, 8);
        let view = ShapeView::from_graph(&g);
        let cg = coarsen(&g);
        let extra = ExtraInputs::new();
        if search(&g, &view, &cg, &extra, &exact_opts(2)).is_ok() {
            ok += 1;
        }
    }
    assert!(ok >= 10, "random DAGs almost never partition: {ok}/20");
}
