//! The element-wise operator family.
//!
//! The paper counts 77 element-wise operators among MXNet v0.11's 139 (§4.1);
//! this catalogue mirrors that breadth. Every operator here is describable by
//! a rank-generic identity-access TDL description, so all of them partition
//! cleanly along any dimension and are coalesced by coarsening (§5.1).

use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::ops::{flops_per_elem, shape_like_first, shape_same_all, tdl_ewise1, tdl_ewise2, tdl_ewise_n};
use crate::graph::TensorId;
use crate::registry::{GradCtx, OpCategory, OpDef};

use crate::Result;

/// A named unary scalar kernel.
pub type UnaryKernel = (&'static str, fn(f32) -> f32);

/// A named binary scalar kernel.
pub type BinaryKernel = (&'static str, fn(f32, f32) -> f32);

/// The unary scalar kernel table, shared with the executor.
// The gelu/erf constants are quoted verbatim from their reference texts
// (Hendrycks-Gimpel, Abramowitz-Stegun); rounding them to f32 width by hand
// only invites transcription errors.
#[allow(clippy::excessive_precision)]
pub const UNARY_KERNELS: &[UnaryKernel] = &[
    ("relu", |x| x.max(0.0)),
    ("sigmoid", |x| 1.0 / (1.0 + (-x).exp())),
    ("tanh", f32::tanh),
    ("exp", f32::exp),
    ("log", f32::ln),
    ("sqrt", f32::sqrt),
    ("square", |x| x * x),
    ("negative", |x| -x),
    ("abs", f32::abs),
    ("reciprocal", |x| 1.0 / x),
    ("sin", f32::sin),
    ("cos", f32::cos),
    ("tan", f32::tan),
    ("arcsin", f32::asin),
    ("arccos", f32::acos),
    ("arctan", f32::atan),
    ("sinh", f32::sinh),
    ("cosh", f32::cosh),
    ("arcsinh", f32::asinh),
    ("arccosh", f32::acosh),
    ("arctanh", f32::atanh),
    ("floor", f32::floor),
    ("ceil", f32::ceil),
    ("round", f32::round),
    ("trunc", f32::trunc),
    ("sign", f32::signum),
    ("log2", f32::log2),
    ("log10", f32::log10),
    ("log1p", f32::ln_1p),
    ("expm1", f32::exp_m1),
    ("rsqrt", |x| 1.0 / x.sqrt()),
    ("cbrt", f32::cbrt),
    ("rcbrt", |x| 1.0 / x.cbrt()),
    ("degrees", f32::to_degrees),
    ("radians", f32::to_radians),
    ("relu6", |x| x.clamp(0.0, 6.0)),
    ("elu", |x| if x > 0.0 { x } else { x.exp() - 1.0 }),
    ("gelu", |x| 0.5 * x * (1.0 + (0.7978845608 * (x + 0.044715 * x * x * x)).tanh())),
    ("softrelu", |x| (1.0 + x.exp()).ln()),
    ("softsign", |x| x / (1.0 + x.abs())),
    ("swish", |x| x / (1.0 + (-x).exp())),
    ("hard_sigmoid", |x| (0.2 * x + 0.5).clamp(0.0, 1.0)),
    ("erf", |x| {
        // Abramowitz-Stegun 7.1.26 approximation.
        let t = 1.0 / (1.0 + 0.3275911 * x.abs());
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        y.copysign(x)
    }),
    ("mish", |x| x * ((1.0 + x.exp()).ln()).tanh()),
    ("selu", |x| {
        1.0507 * if x > 0.0 { x } else { 1.67326 * (x.exp() - 1.0) }
    }),
    ("hard_swish", |x| x * (x + 3.0).clamp(0.0, 6.0) / 6.0),
    ("logistic", |x| 1.0 / (1.0 + (-x).exp())),
    ("zeros_like", |_| 0.0),
    ("ones_like", |_| 1.0),
    ("gamma_ln", |x| {
        // Stirling approximation; adequate for catalogue completeness.
        if x <= 0.0 {
            f32::NAN
        } else {
            (x - 0.5) * x.ln() - x + 0.9189385
        }
    }),
];

/// The binary scalar kernel table, shared with the executor.
pub const BINARY_KERNELS: &[BinaryKernel] = &[
    ("add", |a, b| a + b),
    ("sub", |a, b| a - b),
    ("mul", |a, b| a * b),
    ("div", |a, b| a / b),
    ("maximum", f32::max),
    ("minimum", f32::min),
    ("pow", f32::powf),
    ("mod", |a, b| a % b),
    ("hypot", f32::hypot),
    ("squared_difference", |a, b| (a - b) * (a - b)),
    ("arctan2", f32::atan2),
    ("logaddexp", |a, b| {
        let m = a.max(b);
        m + ((a - m).exp() + (b - m).exp()).ln()
    }),
    // Gradient helpers (element-wise over two same-shape tensors).
    ("relu_grad", |dy, x| if x > 0.0 { dy } else { 0.0 }),
    ("sigmoid_grad", |dy, y| dy * y * (1.0 - y)),
    ("tanh_grad", |dy, y| dy * (1.0 - y * y)),
];

/// Scalar-attribute element-wise kernels (`x op k`), shared with the
/// executor; the scalar comes from the `"scalar"` attribute.
pub const SCALAR_KERNELS: &[BinaryKernel] = &[
    ("add_scalar", |x, k| x + k),
    ("sub_scalar", |x, k| x - k),
    ("rsub_scalar", |x, k| k - x),
    ("mul_scalar", |x, k| x * k),
    ("div_scalar", |x, k| x / k),
    ("rdiv_scalar", |x, k| k / x),
    ("pow_scalar", |x, k| x.powf(k)),
    ("leaky_relu", |x, k| if x > 0.0 { x } else { k * x }),
    ("clip_max", |x, k| x.min(k)),
    ("clip_min", |x, k| x.max(k)),
];

// ---- Gradient builders ----------------------------------------------------

fn grad_unary_with_kernel(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // Generic chain rule via dedicated *_grad element-wise ops; dispatch on
    // what the forward op needs.
    unreachable!("grad_unary_with_kernel is a placeholder and never registered: {:?}", ctx.attrs)
}

fn grad_add(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    Ok(vec![Some(ctx.out_grad), Some(ctx.out_grad)])
}

fn grad_sub(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let neg = ctx.op("negative", &[ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(ctx.out_grad), Some(neg)])
}

fn grad_mul(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("mul", &[ctx.out_grad, b], Attrs::new())?;
    let db = ctx.op("mul", &[ctx.out_grad, a], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_div(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
    let da = ctx.op("div", &[ctx.out_grad, b], Attrs::new())?;
    let num = ctx.op("mul", &[ctx.out_grad, a], Attrs::new())?;
    let b2 = ctx.op("mul", &[b, b], Attrs::new())?;
    let frac = ctx.op("div", &[num, b2], Attrs::new())?;
    let db = ctx.op("negative", &[frac], Attrs::new())?;
    Ok(vec![Some(da), Some(db)])
}

fn grad_relu(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("relu_grad", &[ctx.out_grad, ctx.inputs[0]], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_sigmoid(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("sigmoid_grad", &[ctx.out_grad, ctx.output], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_tanh(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("tanh_grad", &[ctx.out_grad, ctx.output], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_exp(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("mul", &[ctx.out_grad, ctx.output], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_log(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("div", &[ctx.out_grad, ctx.inputs[0]], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_negative(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("negative", &[ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_square(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let two_x = ctx.op("mul_scalar", &[ctx.inputs[0]], Attrs::new().with_float("scalar", 2.0))?;
    let dx = ctx.op("mul", &[ctx.out_grad, two_x], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_identity(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    Ok(vec![Some(ctx.out_grad)])
}

fn grad_scalar_mul(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let k = ctx.attrs.float("scalar").unwrap_or(1.0);
    let dx = ctx.op("mul_scalar", &[ctx.out_grad], Attrs::new().with_float("scalar", k))?;
    Ok(vec![Some(dx)])
}

/// `y = x / k` ⇒ `dx = dy / k`. (Sharing `grad_scalar_mul` here would scale
/// the gradient by `k²`; the finite-difference oracle in
/// `tests/gradcheck.rs` guards this.)
fn grad_scalar_div(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let k = ctx.attrs.float("scalar").unwrap_or(1.0);
    let dx = ctx.op("div_scalar", &[ctx.out_grad], Attrs::new().with_float("scalar", k))?;
    Ok(vec![Some(dx)])
}

fn grad_add_n(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    Ok(vec![Some(ctx.out_grad); ctx.inputs.len()])
}

// ---- Definitions ----------------------------------------------------------

fn def(
    name: &'static str,
    category: OpCategory,
    infer_shape: crate::registry::ShapeFn,
    tdl: Option<crate::registry::TdlFn>,
    gradient: Option<crate::registry::GradFn>,
) -> OpDef {
    OpDef { name, category, infer_shape, tdl, gradient, flops: flops_per_elem }
}

fn shape_sgd(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() < 2 {
        return Err("optimizer update expects weight and gradient".into());
    }
    if ins[0] != ins[1] {
        return Err(format!("weight shape {} differs from gradient shape {}", ins[0], ins[1]));
    }
    Ok(ins[0].clone())
}

/// Returns the element-wise operator definitions.
pub fn defs() -> Vec<OpDef> {
    // Silence the never-registered placeholder.
    let _ = grad_unary_with_kernel;

    let mut out = Vec::new();
    for &(name, _) in UNARY_KERNELS {
        let gradient: Option<crate::registry::GradFn> = match name {
            "relu" => Some(grad_relu),
            "sigmoid" | "logistic" => Some(grad_sigmoid),
            "tanh" => Some(grad_tanh),
            "exp" => Some(grad_exp),
            "log" => Some(grad_log),
            "negative" => Some(grad_negative),
            "square" => Some(grad_square),
            _ => None,
        };
        out.push(def(name, OpCategory::Elementwise, shape_like_first, Some(tdl_ewise1), gradient));
    }
    for &(name, _) in BINARY_KERNELS {
        let gradient: Option<crate::registry::GradFn> = match name {
            "add" => Some(grad_add),
            "sub" => Some(grad_sub),
            "mul" => Some(grad_mul),
            "div" => Some(grad_div),
            _ => None,
        };
        out.push(def(name, OpCategory::Elementwise, shape_same_all, Some(tdl_ewise2), gradient));
    }
    for &(name, _) in SCALAR_KERNELS {
        let gradient: Option<crate::registry::GradFn> = match name {
            "add_scalar" | "sub_scalar" => Some(grad_identity),
            "mul_scalar" => Some(grad_scalar_mul),
            "div_scalar" => Some(grad_scalar_div),
            _ => None,
        };
        out.push(def(name, OpCategory::Elementwise, shape_like_first, Some(tdl_ewise1), gradient));
    }
    // Identity / copy and n-ary gradient aggregation.
    out.push(def("identity", OpCategory::Elementwise, shape_like_first, Some(tdl_ewise1), Some(grad_identity)));
    out.push(def("copy", OpCategory::Data, shape_like_first, Some(tdl_ewise1), Some(grad_identity)));
    out.push(def("add_n", OpCategory::Elementwise, shape_same_all, Some(tdl_ewise_n), Some(grad_add_n)));
    // Optimizer updates — "almost all gradient-based optimizers are composed
    // of only element-wise operators" (§5.1).
    out.push(def("sgd_update", OpCategory::Optimizer, shape_sgd, Some(tdl_ewise_n), None));
    out.push(def("sgd_momentum_update", OpCategory::Optimizer, shape_sgd, Some(tdl_ewise_n), None));
    out.push(def("adam_update", OpCategory::Optimizer, shape_sgd, Some(tdl_ewise_n), None));
    out.push(def("adagrad_update", OpCategory::Optimizer, shape_sgd, Some(tdl_ewise_n), None));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_size_matches_paper_scale() {
        // 77 element-wise operators in MXNet v0.11 per §4.1.
        let n = defs().len();
        assert!(n >= 75, "element-wise family has {n} ops");
    }

    #[test]
    fn kernels_compute_expected_values() {
        let relu = UNARY_KERNELS.iter().find(|(n, _)| *n == "relu").unwrap().1;
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        let pow = BINARY_KERNELS.iter().find(|(n, _)| *n == "pow").unwrap().1;
        assert_eq!(pow(2.0, 3.0), 8.0);
        let leaky = SCALAR_KERNELS.iter().find(|(n, _)| *n == "leaky_relu").unwrap().1;
        assert_eq!(leaky(-2.0, 0.1), -0.2);
        assert_eq!(leaky(2.0, 0.1), 2.0);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        let erf = UNARY_KERNELS.iter().find(|(n, _)| *n == "erf").unwrap().1;
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!(erf(10.0) <= 1.0);
    }

    #[test]
    fn grad_kernels_match_derivatives() {
        let sg = BINARY_KERNELS.iter().find(|(n, _)| *n == "sigmoid_grad").unwrap().1;
        // d/dx sigmoid at 0 = 0.25; y = 0.5.
        assert!((sg(1.0, 0.5) - 0.25).abs() < 1e-6);
        let tg = BINARY_KERNELS.iter().find(|(n, _)| *n == "tanh_grad").unwrap().1;
        assert!((tg(1.0, 0.0) - 1.0).abs() < 1e-6);
    }
}
