//! Plan-service bench: latency and throughput of `tofu-serve` answering a
//! multi-tenant request mix from its shared concurrent plan cache, written
//! to `BENCH_serve.json`.
//!
//! This is also a correctness gate, run by `scripts/check.sh`:
//!
//! * every served plan must be **byte-identical** to a local
//!   single-threaded `partition_cached` run for the same request;
//! * the warm phase must be answered from the response cache (a zero warm
//!   hit-rate means the fingerprint or cache layer broke);
//! * the server's single-flight accounting must add up (hits + misses +
//!   joined + rejected == requests).
//!
//! The process exits nonzero when any gate fails.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use tofu_bench::{bench_report, write_report, Json};
use tofu_core::recursive::{partition_cached, PartitionOptions};
use tofu_core::SearchCaches;
use tofu_graph::Graph;
use tofu_models::{mlp, MlpConfig};
use tofu_obs::Collector;
use tofu_serve::client::PlanClient;
use tofu_serve::protocol::plan_to_json;
use tofu_serve::server::{PlanServer, ServeConfig};

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 500;
const TENANTS: [&str; 3] = ["team-vision", "team-nlp", "team-ads"];

/// Request mix: four MLP variants × two worker counts. Widths are multiples
/// of 24 so the 6- and 8-worker factorizations stay divisible.
fn request_mix() -> Vec<(Graph, PartitionOptions)> {
    let variants = [
        MlpConfig { batch: 24, dims: vec![48, 24], classes: 24, with_updates: true },
        MlpConfig { batch: 24, dims: vec![96, 48], classes: 24, with_updates: true },
        MlpConfig { batch: 48, dims: vec![72, 48], classes: 24, with_updates: false },
        MlpConfig { batch: 48, dims: vec![48, 48, 24], classes: 24, with_updates: true },
    ];
    let mut mix = Vec::new();
    for cfg in &variants {
        let g = mlp(cfg).expect("mlp variant").graph;
        for workers in [4usize, 8] {
            mix.push((g.clone(), PartitionOptions { workers, ..Default::default() }));
        }
    }
    mix
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let collector = Collector::new();
    let server = PlanServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            solver_threads: 2,
            queue_cap: 64,
            collector: Some(collector.clone()),
            ..Default::default()
        },
    )
    .expect("bind bench server");
    let addr = server.addr();
    let mix = Arc::new(request_mix());
    let mut failed = false;

    // ---- Warm phase: populate the cache, gate byte-identity. -------------
    println!("plan_serve — warming {} unique requests", mix.len());
    let mut local_caches = SearchCaches::new();
    let mut client = PlanClient::connect(addr).expect("connect warm client");
    for (i, (g, opts)) in mix.iter().enumerate() {
        let served = client
            .partition(TENANTS[i % TENANTS.len()], g, opts, None)
            .expect("warm partition");
        let local = partition_cached(g, opts, &mut local_caches, None).expect("local partition");
        let local_json = plan_to_json(&local).to_json();
        if served.plan.to_json() != local_json {
            eprintln!(
                "FAIL: request {i} ({} workers): served plan differs from local partition_cached",
                opts.workers
            );
            failed = true;
        }
    }

    // ---- Timed phase: multi-tenant warm hammering. -----------------------
    let total_requests = CLIENT_THREADS * REQUESTS_PER_CLIENT;
    println!(
        "hammering with {CLIENT_THREADS} clients × {REQUESTS_PER_CLIENT} requests \
         over {} tenants",
        TENANTS.len()
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let mix = Arc::clone(&mix);
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect bench client");
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                // Deterministic per-thread LCG request stream.
                let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                let mut mismatched = 0usize;
                let mut fingerprints: Vec<String> = vec![String::new(); mix.len()];
                for _ in 0..REQUESTS_PER_CLIENT {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let idx = (state >> 33) as usize % mix.len();
                    let tenant = TENANTS[(state >> 21) as usize % TENANTS.len()];
                    let (g, opts) = &mix[idx];
                    let start = Instant::now();
                    let served = client.partition(tenant, g, opts, None).expect("bench partition");
                    latencies.push(start.elapsed().as_secs_f64());
                    // Warm answers must be stable per request index.
                    if fingerprints[idx].is_empty() {
                        fingerprints[idx] = served.fingerprint.clone();
                    } else if fingerprints[idx] != served.fingerprint {
                        mismatched += 1;
                    }
                }
                (latencies, mismatched)
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(total_requests);
    for h in handles {
        let (lat, mismatched) = h.join().expect("bench client thread");
        if mismatched > 0 {
            eprintln!("FAIL: {mismatched} responses changed fingerprint for a fixed request");
            failed = true;
        }
        latencies.extend(lat);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    // ---- Counters and gates. ---------------------------------------------
    let c = server.counters();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed) as f64;
    let requests = load(&c.requests);
    let hits = load(&c.hits);
    let misses = load(&c.misses);
    let joined = load(&c.joined);
    let rejected = load(&c.rejected);
    let warm_hit_rate = hits / (requests - mix.len() as f64).max(1.0);
    let throughput = total_requests as f64 / elapsed.max(1e-12);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    println!("\n{:>24}: {requests:.0}", "requests");
    println!("{:>24}: {hits:.0} ({:.1}% of timed phase)", "response-cache hits", warm_hit_rate * 100.0);
    println!("{:>24}: {misses:.0} (+{joined:.0} joined, {rejected:.0} rejected)", "solver runs");
    println!("{:>24}: {throughput:.0} req/s over {elapsed:.2}s", "warm throughput");
    println!("{:>24}: p50 {:.1} µs, p99 {:.1} µs", "latency", p50 * 1e6, p99 * 1e6);

    if hits + misses + joined + rejected != requests {
        eprintln!("FAIL: serve counters do not add up");
        failed = true;
    }
    if misses > mix.len() as f64 {
        eprintln!(
            "FAIL: {misses} solver runs for {} unique requests — response cache leaked misses",
            mix.len()
        );
        failed = true;
    }
    if hits <= 0.0 {
        eprintln!("FAIL: zero warm hit-rate — every timed request should hit the cache");
        failed = true;
    }
    let snap = server.caches().snapshot();

    let results = vec![Json::obj(vec![
        ("unique_requests", Json::from(mix.len())),
        ("tenants", Json::from(TENANTS.len())),
        ("client_threads", Json::from(CLIENT_THREADS)),
        ("timed_requests", Json::from(total_requests)),
        ("elapsed_seconds", Json::from(elapsed)),
        ("throughput_req_per_s", Json::from(throughput)),
        ("latency_p50_seconds", Json::from(p50)),
        ("latency_p99_seconds", Json::from(p99)),
        ("warm_hit_rate", Json::from(warm_hit_rate)),
        ("serve_hits", Json::from(hits)),
        ("serve_misses", Json::from(misses)),
        ("serve_joined", Json::from(joined)),
        ("serve_rejected", Json::from(rejected)),
        ("plan_cache_entries", Json::from(snap.plan_entries)),
        ("plan_cache_hit_rate", Json::from(snap.plan_hit_rate)),
        ("byte_identical", Json::Bool(!failed)),
    ])];
    let doc = bench_report(
        "plan_serve",
        vec![
            ("solver_threads", Json::from(2u64)),
            ("queue_cap", Json::from(64u64)),
        ],
        results,
    );
    write_report("BENCH_serve.json", &doc);
    server.shutdown();

    if failed {
        eprintln!("plan_serve: service violated its contract (see FAIL lines)");
        std::process::exit(1);
    }
}
