//! Affine forms over symbolic extents.
//!
//! The paper (Eq. 1) represents a symbolic interval bound as an affine
//! transformation `Σᵢ aᵢ·Xᵢ + c` of the symbolic upper bounds `Xᵢ` of the
//! index-variable ranges. [`AffineForm`] is that representation: a sparse
//! real-coefficient linear form plus constant. Symbol `i` is the extent of
//! index variable `i` of the description being analyzed.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a symbolic extent (`X_i`): the id of the index variable
/// whose range it bounds.
pub type SymId = usize;

/// A sparse affine form `Σ coeff·X_sym + constant` with real coefficients.
///
/// # Examples
///
/// ```
/// use tofu_tdl::AffineForm;
///
/// let half_x = AffineForm::sym(0).scale(0.5);
/// let v = half_x.eval(&|_| 10.0);
/// assert_eq!(v, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AffineForm {
    coeffs: BTreeMap<SymId, f64>,
    constant: f64,
}

impl AffineForm {
    /// The zero form.
    pub fn zero() -> AffineForm {
        AffineForm { coeffs: BTreeMap::new(), constant: 0.0 }
    }

    /// A constant form.
    pub fn constant(c: f64) -> AffineForm {
        AffineForm { coeffs: BTreeMap::new(), constant: c }
    }

    /// The form `1·X_sym`.
    pub fn sym(sym: SymId) -> AffineForm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(sym, 1.0);
        AffineForm { coeffs, constant: 0.0 }
    }

    /// Returns the coefficient of a symbol (0 when absent).
    pub fn coeff(&self, sym: SymId) -> f64 {
        self.coeffs.get(&sym).copied().unwrap_or(0.0)
    }

    /// Returns the constant term.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(symbol, coefficient)` pairs with non-zero coefficient.
    pub fn terms(&self) -> impl Iterator<Item = (SymId, f64)> + '_ {
        self.coeffs.iter().map(|(&s, &c)| (s, c))
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &AffineForm) -> AffineForm {
        let mut out = self.clone();
        for (s, c) in other.terms() {
            let e = out.coeffs.entry(s).or_insert(0.0);
            *e += c;
            if *e == 0.0 {
                out.coeffs.remove(&s);
            }
        }
        out.constant += other.constant;
        out
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &AffineForm) -> AffineForm {
        self.add(&other.scale(-1.0))
    }

    /// Returns `self` scaled by a real factor.
    pub fn scale(&self, k: f64) -> AffineForm {
        if k == 0.0 {
            return AffineForm::zero();
        }
        AffineForm {
            coeffs: self.coeffs.iter().map(|(&s, &c)| (s, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Returns `self + k`.
    pub fn offset(&self, k: f64) -> AffineForm {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// Evaluates the form under a concrete symbol assignment.
    pub fn eval(&self, assignment: &impl Fn(SymId) -> f64) -> f64 {
        self.terms().map(|(s, c)| c * assignment(s)).sum::<f64>() + self.constant
    }

    /// True when the form is identically zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty() && self.constant == 0.0
    }

    /// True when the form is a bare constant (no symbols).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Pointwise minimum with another form — sound as an interval lower bound
    /// whenever all symbols are non-negative, which holds for extents.
    pub fn pointwise_min(&self, other: &AffineForm) -> AffineForm {
        let mut coeffs = BTreeMap::new();
        for s in self.coeffs.keys().chain(other.coeffs.keys()) {
            let v = self.coeff(*s).min(other.coeff(*s));
            if v != 0.0 {
                coeffs.insert(*s, v);
            }
        }
        AffineForm { coeffs, constant: self.constant.min(other.constant) }
    }

    /// Pointwise maximum with another form — sound as an interval upper bound
    /// whenever all symbols are non-negative.
    pub fn pointwise_max(&self, other: &AffineForm) -> AffineForm {
        let mut coeffs = BTreeMap::new();
        for s in self.coeffs.keys().chain(other.coeffs.keys()) {
            let v = self.coeff(*s).max(other.coeff(*s));
            if v != 0.0 {
                coeffs.insert(*s, v);
            }
        }
        AffineForm { coeffs, constant: self.constant.max(other.constant) }
    }

    /// True when `self(x) <= other(x)` for every non-negative symbol
    /// assignment: every coefficient and the constant are no larger.
    pub fn dominated_by(&self, other: &AffineForm) -> bool {
        if self.constant > other.constant + 1e-9 {
            return false;
        }
        for s in self.coeffs.keys().chain(other.coeffs.keys()) {
            if self.coeff(*s) > other.coeff(*s) + 1e-9 {
                return false;
            }
        }
        true
    }

    /// Approximate structural equality with a small numeric tolerance.
    pub fn approx_eq(&self, other: &AffineForm) -> bool {
        self.dominated_by(other) && other.dominated_by(self)
    }
}

impl fmt::Display for AffineForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in self.terms() {
            if !first {
                write!(f, " + ")?;
            }
            if c == 1.0 {
                write!(f, "X{s}")?;
            } else {
                write!(f, "{c}*X{s}")?;
            }
            first = false;
        }
        if self.constant != 0.0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        // 0.5*X0 + 2*X1 + 3.
        let form = AffineForm::sym(0).scale(0.5).add(&AffineForm::sym(1).scale(2.0)).offset(3.0);
        assert_eq!(form.coeff(0), 0.5);
        assert_eq!(form.coeff(1), 2.0);
        assert_eq!(form.coeff(2), 0.0);
        assert_eq!(form.constant_term(), 3.0);
        assert_eq!(form.eval(&|s| if s == 0 { 4.0 } else { 1.0 }), 7.0);
    }

    #[test]
    fn sub_cancels() {
        let x = AffineForm::sym(0);
        assert!(x.sub(&x).is_zero());
        assert!(AffineForm::constant(2.0).is_constant());
        assert!(!x.is_constant());
    }

    #[test]
    fn pointwise_bounds() {
        let a = AffineForm::sym(0).scale(0.5);
        let b = AffineForm::sym(0).offset(-1.0);
        let mn = a.pointwise_min(&b);
        assert_eq!(mn.coeff(0), 0.5);
        assert_eq!(mn.constant_term(), -1.0);
        let mx = a.pointwise_max(&b);
        assert_eq!(mx.coeff(0), 1.0);
        assert_eq!(mx.constant_term(), 0.0);
    }

    #[test]
    fn domination_order() {
        let half = AffineForm::sym(0).scale(0.5);
        let whole = AffineForm::sym(0);
        assert!(half.dominated_by(&whole));
        assert!(!whole.dominated_by(&half));
        assert!(half.approx_eq(&half.clone()));
        assert!(!half.approx_eq(&whole));
    }

    #[test]
    fn display_is_readable() {
        let form = AffineForm::sym(1).scale(0.5).offset(2.0);
        let s = form.to_string();
        assert!(s.contains("X1"));
        assert!(s.contains('2'));
        assert_eq!(AffineForm::zero().to_string(), "0");
    }
}
