//! Deterministic disk-fault injection.
//!
//! [`FaultyStore`] wraps any [`BlobStore`] and corrupts writes according to
//! a [`DiskFaultPlan`] — torn writes, bit flips, dropped shard files and
//! manifest-level confusions. Faults are addressed by checkpoint ordinal
//! plus the shard's write ordinal within that checkpoint (shards are always
//! written in ascending tensor order, so ordinals are deterministic), and
//! each fires exactly once, mirroring the runtime's one-shot transient
//! faults. The corruption happens *through* the real store so recovery sees
//! exactly what a failing disk would have left behind.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::codec::{manifest_name, parse_manifest_name, parse_shard_name};
use crate::store::BlobStore;

/// One injected disk fault. `ckpt` selects the checkpoint whose write is
/// sabotaged; `shard` (where present) is the 0-based ordinal of the shard
/// write within that checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Truncate the shard blob to its first `keep` bytes — a torn write
    /// that slipped past the atomic-rename protocol (e.g. firmware lying
    /// about flush). `keep` is clamped to the blob length.
    TornWrite {
        /// Checkpoint ordinal to sabotage.
        ckpt: u64,
        /// Shard write ordinal within the checkpoint.
        shard: usize,
        /// Bytes to keep from the front of the blob.
        keep: usize,
    },
    /// Flip bit `bit` (modulo the blob's bit length) of the shard blob —
    /// silent media corruption the checksum must catch.
    BitFlip {
        /// Checkpoint ordinal to sabotage.
        ckpt: u64,
        /// Shard write ordinal within the checkpoint.
        shard: usize,
        /// Bit index, taken modulo the blob's bit length.
        bit: u64,
    },
    /// Drop the shard write entirely: the manifest will name a file that
    /// does not exist.
    MissingShard {
        /// Checkpoint ordinal to sabotage.
        ckpt: u64,
        /// Shard write ordinal within the checkpoint.
        shard: usize,
    },
    /// Commit the manifest normally, then delete the checkpoint's first
    /// shard — a manifest left stale by media loss after commit.
    StaleManifest {
        /// Checkpoint ordinal to sabotage.
        ckpt: u64,
    },
    /// After committing checkpoint `ckpt`, also write a byte-identical copy
    /// of its manifest under the *next* ordinal's name — a duplicate that
    /// recovery must reject by the name/body ordinal mismatch.
    DuplicateManifest {
        /// Checkpoint ordinal whose manifest is duplicated.
        ckpt: u64,
    },
}

impl DiskFault {
    fn ckpt(&self) -> u64 {
        match *self {
            DiskFault::TornWrite { ckpt, .. }
            | DiskFault::BitFlip { ckpt, .. }
            | DiskFault::MissingShard { ckpt, .. }
            | DiskFault::StaleManifest { ckpt }
            | DiskFault::DuplicateManifest { ckpt } => ckpt,
        }
    }
}

/// A set of disk faults to inject, deterministic and order-independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// The faults to inject; each fires at most once.
    pub faults: Vec<DiskFault>,
}

impl DiskFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> DiskFaultPlan {
        DiskFaultPlan::default()
    }

    /// Add a fault (builder-style).
    pub fn with(mut self, fault: DiskFault) -> DiskFaultPlan {
        self.faults.push(fault);
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derive a single pseudo-random shard fault (torn write or bit flip)
    /// against checkpoint `ckpt`, using the same SplitMix64 generator as the
    /// runtime's `FaultRng` so matrices stay reproducible from one seed.
    pub fn seeded(seed: u64, ckpt: u64, shards: usize) -> DiskFaultPlan {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let shard = (next() % shards.max(1) as u64) as usize;
        let fault = if next() % 2 == 0 {
            DiskFault::TornWrite { ckpt, shard, keep: (next() % 64) as usize }
        } else {
            DiskFault::BitFlip { ckpt, shard, bit: next() }
        };
        DiskFaultPlan::none().with(fault)
    }
}

struct Armed {
    fault: DiskFault,
    fired: AtomicBool,
}

/// A [`BlobStore`] wrapper that injects the faults of a [`DiskFaultPlan`]
/// into matching writes, each exactly once.
pub struct FaultyStore {
    inner: Arc<dyn BlobStore>,
    armed: Vec<Armed>,
    // Per-checkpoint count of shard writes seen so far, addressing faults
    // by write ordinal.
    seq: Mutex<BTreeMap<u64, usize>>,
}

impl FaultyStore {
    /// Wrap `inner`, arming every fault in `plan`.
    pub fn new(inner: Arc<dyn BlobStore>, plan: DiskFaultPlan) -> FaultyStore {
        FaultyStore {
            inner,
            armed: plan
                .faults
                .into_iter()
                .map(|fault| Armed { fault, fired: AtomicBool::new(false) })
                .collect(),
            seq: Mutex::new(BTreeMap::new()),
        }
    }

    /// Number of faults that have fired so far.
    pub fn fired(&self) -> usize {
        self.armed.iter().filter(|a| a.fired.load(Ordering::SeqCst)).count()
    }

    fn fire(&self, pred: impl Fn(&DiskFault) -> bool) -> Option<DiskFault> {
        for a in &self.armed {
            if pred(&a.fault) && !a.fired.swap(true, Ordering::SeqCst) {
                return Some(a.fault);
            }
        }
        None
    }

    fn first_shard_of(&self, ckpt: u64) -> io::Result<Option<String>> {
        Ok(self
            .inner
            .list()?
            .into_iter()
            .find(|n| parse_shard_name(n) == Some(ckpt)))
    }
}

impl BlobStore for FaultyStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if let Some(ckpt) = parse_shard_name(name) {
            let ordinal = {
                let mut seq = self.seq.lock().unwrap();
                let n = seq.entry(ckpt).or_insert(0);
                let ord = *n;
                *n += 1;
                ord
            };
            if self
                .fire(|f| matches!(*f, DiskFault::MissingShard { ckpt: c, shard } if c == ckpt && shard == ordinal))
                .is_some()
            {
                return Ok(()); // write silently dropped
            }
            let mut data = bytes.to_vec();
            if let Some(DiskFault::TornWrite { keep, .. }) = self.fire(
                |f| matches!(*f, DiskFault::TornWrite { ckpt: c, shard, .. } if c == ckpt && shard == ordinal),
            ) {
                data.truncate(keep.min(data.len()));
            }
            if let Some(DiskFault::BitFlip { bit, .. }) = self.fire(
                |f| matches!(*f, DiskFault::BitFlip { ckpt: c, shard, .. } if c == ckpt && shard == ordinal),
            ) {
                if !data.is_empty() {
                    let i = (bit % (data.len() as u64 * 8)) as usize;
                    data[i / 8] ^= 1 << (i % 8);
                }
            }
            return self.inner.put(name, &data);
        }
        if let Some(ckpt) = parse_manifest_name(name) {
            self.inner.put(name, bytes)?;
            if self
                .fire(|f| matches!(*f, DiskFault::StaleManifest { ckpt: c } if c == ckpt))
                .is_some()
            {
                if let Some(shard) = self.first_shard_of(ckpt)? {
                    self.inner.delete(&shard)?;
                }
            }
            if self
                .fire(|f| matches!(*f, DiskFault::DuplicateManifest { ckpt: c } if c == ckpt))
                .is_some()
            {
                self.inner.put(&manifest_name(ckpt + 1), bytes)?;
            }
            return Ok(());
        }
        self.inner.put(name, bytes)
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.get(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.inner.delete(name)
    }
}

impl std::fmt::Debug for FaultyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStore")
            .field("armed", &self.armed.iter().map(|a| a.fault).collect::<Vec<_>>())
            .field("fired", &self.fired())
            .finish()
    }
}

impl DiskFault {
    /// Short label for reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            DiskFault::TornWrite { .. } => "torn-write",
            DiskFault::BitFlip { .. } => "bit-flip",
            DiskFault::MissingShard { .. } => "missing-shard",
            DiskFault::StaleManifest { .. } => "stale-manifest",
            DiskFault::DuplicateManifest { .. } => "duplicate-manifest",
        }
    }

    /// The checkpoint ordinal this fault targets.
    pub fn target_ckpt(&self) -> u64 {
        self.ckpt()
    }
}
