//! Finite-difference gradient-check oracle over the operator registry.
//!
//! For every differentiable builtin op this builds the graph
//! `loss = sum_all(op(inputs) ⊙ r)` with a fixed random cotangent `r`,
//! differentiates it with `autodiff::backward`, and compares the analytic
//! gradient of every input element against a central finite difference
//! `(loss(x+ε) − loss(x−ε)) / 2ε`. The final test asserts *coverage*: any op
//! registered with a gradient and no probe here fails the suite, so a future
//! differentiable op cannot land unchecked.
//!
//! Numerics: ε = 1e-2 balances f32 round-off (∝ 1/ε) against truncation
//! (∝ ε²); kinked ops (relu, max-like) get inputs bounded away from the kink
//! by more than ε, and log/div get denominators bounded away from zero. The
//! acceptance bound `|fd − an| ≤ 1e-3 + 2e-2·max(|fd|,|an|)` leaves an order
//! of magnitude of headroom over the observed worst case.

use std::collections::BTreeSet;

use proptest::prelude::*;
use tofu_graph::{autodiff, registry, Attrs, Executor, Graph, TensorId};
use tofu_tensor::{Shape, Tensor};

const EPS: f32 = 1e-2;

/// How to synthesize one input tensor.
#[derive(Clone, Copy, Debug)]
enum Feed {
    /// Uniform in ±0.4: fine for smooth ops.
    Smooth,
    /// |x| ≥ 0.15 > ε: keeps relu (and any max) away from its kink.
    AwayFromZero,
    /// x ≥ 0.5: keeps log arguments and divisors well-conditioned.
    Positive,
    /// Integer class labels `i % 3` (never differentiated).
    Labels,
    /// Values spread ≥0.15 apart (distinct residues mod 13, small jitter):
    /// keeps every layer-norm row's standard deviation well away from zero,
    /// where the op's higher derivatives blow up and finite differences
    /// leave the linear regime.
    Spread,
}

fn feed_tensor(style: Feed, shape: &Shape, seed: u64) -> Tensor {
    let base = Tensor::random(shape.clone(), seed, 0.4);
    let data: Vec<f32> = match style {
        Feed::Smooth => return base,
        Feed::AwayFromZero => {
            base.data().iter().map(|&x| if x >= 0.0 { x + 0.15 } else { x - 0.15 }).collect()
        }
        Feed::Positive => base.data().iter().map(|&x| x.abs() + 0.5).collect(),
        Feed::Labels => (0..shape.volume()).map(|i| (i % 3) as f32).collect(),
        Feed::Spread => base
            .data()
            .iter()
            .enumerate()
            .map(|(i, &x)| ((i * 7) % 13) as f32 * 0.25 - 1.5 + x * 0.125)
            .collect(),
    };
    Tensor::from_vec(shape.clone(), data).unwrap()
}

/// One gradient-check case: an op, concrete input shapes, attributes, a feed
/// style per input and the subset of inputs whose gradient is verified.
struct Probe {
    op: &'static str,
    shapes: Vec<Vec<usize>>,
    attrs: Attrs,
    feeds: Vec<Feed>,
    diff: Vec<usize>,
    seed: u64,
    eps: f32,
}

fn probe(op: &'static str, shapes: &[&[usize]], attrs: Attrs, feeds: &[Feed], diff: &[usize]) -> Probe {
    Probe {
        op,
        shapes: shapes.iter().map(|s| s.to_vec()).collect(),
        attrs,
        feeds: feeds.to_vec(),
        diff: diff.to_vec(),
        seed: 0,
        eps: EPS,
    }
}

/// All smooth inputs, all differentiated.
fn smooth(op: &'static str, shapes: &[&[usize]]) -> Probe {
    let feeds = vec![Feed::Smooth; shapes.len()];
    let diff: Vec<usize> = (0..shapes.len()).collect();
    probe(op, shapes, Attrs::new(), &feeds, &diff)
}

/// Layer norm divides by the per-row standard deviation, so its higher
/// derivatives grow as rows flatten: a spread feed keeps σ bounded below and
/// a smaller ε keeps the central difference in the linear regime.
fn layer_norm_probe(dims: &[usize], axis: i64, seed: u64) -> Probe {
    let param = vec![dims[axis as usize]];
    let mut p = probe(
        "layer_norm",
        &[dims, &param, &param],
        Attrs::new().with_int("axis", axis),
        &[Feed::Spread, Feed::Smooth, Feed::Smooth],
        &[0, 1, 2],
    );
    p.seed = seed;
    p.eps = 1e-3;
    p
}

fn close(fd: f32, an: f32) -> bool {
    (fd - an).abs() <= 1e-3 + 2e-2 * fd.abs().max(an.abs())
}

fn eval_loss(g: &Graph, feeds: &[(TensorId, Tensor)], loss: TensorId) -> f32 {
    let mut ex = Executor::new();
    for (t, v) in feeds {
        ex.feed(*t, v.clone());
    }
    ex.run(g).unwrap()[&loss].data()[0]
}

/// Builds `loss = sum_all(op(inputs) ⊙ r)`, differentiates, and checks every
/// element of every `diff` input against a central difference.
fn check_probe(p: &Probe) {
    let mut g = Graph::new();
    let ins: Vec<TensorId> = p
        .shapes
        .iter()
        .enumerate()
        .map(|(i, s)| g.add_input(&format!("in{i}"), Shape::new(s.clone())))
        .collect();
    let y = g
        .add_op(p.op, "y", &ins, p.attrs.clone())
        .unwrap_or_else(|e| panic!("{}: failed to build: {e}", p.op));
    let r = g.add_input("r", g.tensor(y).shape.clone());
    let yr = g.add_op("mul", "yr", &[y, r], Attrs::new()).unwrap();
    let loss = g.add_op("sum_all", "loss", &[yr], Attrs::new()).unwrap();
    let wrt: Vec<TensorId> = p.diff.iter().map(|&i| ins[i]).collect();
    let info = autodiff::backward(&mut g, loss, &wrt)
        .unwrap_or_else(|e| panic!("{}: backward failed: {e}", p.op));

    let mut feeds: Vec<(TensorId, Tensor)> = ins
        .iter()
        .zip(&p.feeds)
        .enumerate()
        .map(|(i, (&t, &style))| {
            (t, feed_tensor(style, &g.tensor(t).shape, p.seed * 131 + i as u64 + 1))
        })
        .collect();
    feeds.push((r, feed_tensor(Feed::Smooth, &g.tensor(r).shape, p.seed * 131 + 77)));

    // One full run yields every analytic gradient.
    let mut ex = Executor::new();
    for (t, v) in &feeds {
        ex.feed(*t, v.clone());
    }
    let vals = ex.run(&g).unwrap_or_else(|e| panic!("{}: forward failed: {e}", p.op));

    for &i in &p.diff {
        let gt = info
            .grad(ins[i])
            .unwrap_or_else(|| panic!("{}: no gradient for input {i}", p.op));
        let analytic = vals[&gt].clone();
        let volume = p.shapes[i].iter().product::<usize>().max(1);
        for e in 0..volume {
            let fd = {
                let mut plus = feeds.clone();
                let mut minus = feeds.clone();
                for (variant, delta) in [(&mut plus, p.eps), (&mut minus, -p.eps)] {
                    let (_, v) = &mut variant[i];
                    let mut data = v.data().to_vec();
                    data[e] += delta;
                    *v = Tensor::from_vec(v.shape().clone(), data).unwrap();
                }
                (eval_loss(&g, &plus, loss) - eval_loss(&g, &minus, loss)) / (2.0 * p.eps)
            };
            let an = analytic.data()[e];
            assert!(
                close(fd, an),
                "{}: input {i} element {e}: finite difference {fd} vs analytic {an}",
                p.op
            );
        }
    }
}

/// The probe table: one (or more) concrete case per differentiable op.
fn probes() -> Vec<Probe> {
    use Feed::{AwayFromZero, Labels, Positive, Smooth};
    let ax1 = || Attrs::new().with_int("axis", 1);
    vec![
        // Elementwise, unary.
        smooth("identity", &[&[3, 4]]),
        smooth("copy", &[&[3, 4]]),
        smooth("negative", &[&[3, 4]]),
        smooth("square", &[&[3, 4]]),
        smooth("exp", &[&[3, 4]]),
        smooth("sigmoid", &[&[3, 4]]),
        smooth("logistic", &[&[3, 4]]),
        smooth("tanh", &[&[3, 4]]),
        probe("relu", &[&[3, 4]], Attrs::new(), &[AwayFromZero], &[0]),
        probe("log", &[&[3, 4]], Attrs::new(), &[Positive], &[0]),
        // Elementwise, binary / n-ary.
        smooth("add", &[&[3, 4], &[3, 4]]),
        smooth("sub", &[&[3, 4], &[3, 4]]),
        smooth("mul", &[&[3, 4], &[3, 4]]),
        probe("div", &[&[3, 4], &[3, 4]], Attrs::new(), &[Smooth, Positive], &[0, 1]),
        smooth("add_n", &[&[3, 4], &[3, 4], &[3, 4]]),
        // Scalar-attr elementwise.
        probe("add_scalar", &[&[3, 4]], Attrs::new().with_float("scalar", 0.7), &[Smooth], &[0]),
        probe("sub_scalar", &[&[3, 4]], Attrs::new().with_float("scalar", 0.7), &[Smooth], &[0]),
        probe("mul_scalar", &[&[3, 4]], Attrs::new().with_float("scalar", 0.7), &[Smooth], &[0]),
        probe("div_scalar", &[&[3, 4]], Attrs::new().with_float("scalar", 1.7), &[Smooth], &[0]),
        // Linear algebra.
        smooth("matmul", &[&[3, 4], &[4, 2]]),
        smooth("matmul_tn", &[&[4, 3], &[4, 2]]),
        smooth("matmul_nt", &[&[3, 4], &[2, 4]]),
        smooth("transpose", &[&[3, 4]]),
        smooth("batch_matmul", &[&[2, 3, 4], &[2, 4, 2]]),
        smooth("batch_matmul_tn", &[&[2, 4, 3], &[2, 4, 2]]),
        smooth("batch_matmul_nt", &[&[2, 3, 4], &[2, 2, 4]]),
        // Attention family.
        smooth("proj_heads", &[&[4, 6], &[2, 6, 3]]),
        smooth("unproj_heads", &[&[2, 4, 3], &[2, 3, 6]]),
        // Normalization and reductions.
        probe("softmax", &[&[3, 5]], Attrs::new(), &[Smooth], &[0]),
        probe("softmax", &[&[2, 3, 4]], Attrs::new().with_int("axis", 2), &[Smooth], &[0]),
        layer_norm_probe(&[3, 8], 1, 0),
        layer_norm_probe(&[2, 3, 4], 2, 0),
        probe("bias_add", &[&[3, 4], &[4]], ax1(), &[Smooth, Smooth], &[0, 1]),
        probe(
            "scale_shift",
            &[&[3, 4], &[4], &[4]],
            ax1(),
            &[Smooth, Smooth, Smooth],
            &[0, 1, 2],
        ),
        probe("softmax_ce", &[&[6, 4], &[6]], Attrs::new(), &[Smooth, Labels], &[0]),
        smooth("sum_all", &[&[3, 4]]),
        // Convolution family (NC[H]W data, IO[H]W filters).
        probe(
            "conv1d",
            &[&[2, 2, 6], &[2, 3, 3]],
            Attrs::new(),
            &[Smooth, Smooth],
            &[0, 1],
        ),
        probe(
            "conv2d",
            &[&[1, 2, 5, 5], &[2, 2, 3, 3]],
            Attrs::new(),
            &[Smooth, Smooth],
            &[0, 1],
        ),
        probe(
            "conv2d",
            &[&[1, 2, 5, 5], &[2, 2, 3, 3]],
            Attrs::new().with_int("stride", 2).with_int("pad", 1),
            &[Smooth, Smooth],
            &[0, 1],
        ),
        probe(
            "pool2d",
            &[&[1, 2, 4, 4]],
            Attrs::new().with_str("mode", "avg"),
            &[Smooth],
            &[0],
        ),
        smooth("global_avg_pool", &[&[2, 3, 4, 4]]),
        // Data movement.
        probe(
            "slice_axis",
            &[&[4, 3]],
            Attrs::new().with_int("axis", 0).with_int("begin", 1).with_int("end", 3),
            &[Smooth],
            &[0],
        ),
    ]
}

#[test]
fn finite_differences_validate_every_probe() {
    for p in probes() {
        check_probe(&p);
    }
}

/// Coverage gate: every op registered with a gradient must have a probe.
/// Adding a differentiable op without extending the table fails this test.
#[test]
fn every_differentiable_op_has_a_probe() {
    let covered: BTreeSet<&str> = probes().iter().map(|p| p.op).collect();
    let mut missing = Vec::new();
    for def in registry::all_ops() {
        if def.gradient.is_some() && !covered.contains(def.name) {
            missing.push(def.name);
        }
    }
    assert!(
        missing.is_empty(),
        "differentiable ops without a gradient-check probe: {missing:?} — \
         add a probe to probes() in this file"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Fuzzed shapes for the dense kernels: matmul over random (m, k, n).
    #[test]
    fn matmul_gradchecks_on_random_shapes(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000,
    ) {
        let mut p = smooth("matmul", &[&[m, k], &[k, n]]);
        p.seed = seed;
        check_probe(&p);
    }

    /// Fuzzed shapes for the batched kernel, all three transposition layouts.
    #[test]
    fn batch_matmul_gradchecks_on_random_shapes(
        b in 1usize..4, m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..1000,
    ) {
        for (op, s0, s1) in [
            ("batch_matmul", vec![b, m, k], vec![b, k, n]),
            ("batch_matmul_tn", vec![b, k, m], vec![b, k, n]),
            ("batch_matmul_nt", vec![b, m, k], vec![b, n, k]),
        ] {
            let mut p = smooth(op, &[&s0, &s1]);
            p.seed = seed;
            check_probe(&p);
        }
    }

    /// Softmax over every axis of a random rank-3 shape.
    #[test]
    fn softmax_gradchecks_on_random_axes(
        d0 in 1usize..4, d1 in 1usize..4, d2 in 1usize..4, axis in 0i64..3, seed in 0u64..1000,
    ) {
        let mut p = probe(
            "softmax",
            &[&[d0, d1, d2]],
            Attrs::new().with_int("axis", axis),
            &[Feed::Smooth],
            &[0],
        );
        p.seed = seed;
        check_probe(&p);
    }

    /// Layer norm over a random axis, gamma/beta sized to match.
    #[test]
    fn layer_norm_gradchecks_on_random_axes(
        d0 in 2usize..4, d1 in 2usize..4, d2 in 2usize..5, axis in 0i64..3, seed in 0u64..1000,
    ) {
        check_probe(&layer_norm_probe(&[d0, d1, d2], axis, seed));
    }

    /// Head-indexed projections over random (heads, tokens, widths).
    #[test]
    fn head_projection_gradchecks_on_random_shapes(
        h in 1usize..4, n in 1usize..5, d in 1usize..5, k in 1usize..4, seed in 0u64..1000,
    ) {
        let mut p = smooth("proj_heads", &[&[n, d], &[h, d, k]]);
        p.seed = seed;
        check_probe(&p);
        let mut q = smooth("unproj_heads", &[&[h, n, k], &[h, k, d]]);
        q.seed = seed;
        check_probe(&q);
    }
}
