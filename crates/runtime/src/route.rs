//! Plan-time send routing.
//!
//! The old data plane resolved every push at send time: a `BTreeMap` lookup
//! per executed node to find its outgoing comm edges, a per-run clone fan-out
//! of every channel sender, and a `fetch_pieces` re-decode per received
//! message to learn what the payload should look like. [`RoutePlan`] hoists
//! all of that to plan time, once per attempt:
//!
//! - every cross-device edge gets a dense receiver-side **slot** (numbered in
//!   [`ShardedGraph::comm_edges`] order, so the assignment is a pure function
//!   of the graph and identical across attempts and resumes);
//! - each sender's routes are grouped by producing schedule position into a
//!   flat array with per-position spans, so the send path is an indexed slice
//!   walk with no map lookups;
//! - each receiver gets a [`SlotExpect`] per slot — the full-integrity
//!   cross-check data the old path re-derived from the graph per message —
//!   and a pre-decoded [`FetchPlan`] per `multi_fetch` position, so assembly
//!   never re-parses node attributes.
//!
//! Resume filtering reproduces the original send-list logic exactly: edges
//! whose consumer ran before the checkpoint are dropped, and edges produced
//! before the sender's cut (or by leaves) are owed as startup sends. Slots
//! are graph-static, so a resumed attempt's slot numbering matches the
//! original run's.

use std::collections::BTreeMap;

use tofu_core::{fetch_pieces, FetchPiece, ShardedGraph};
use tofu_graph::{NodeId, TensorId};

/// One pre-resolved push: everything the sender needs to extract, stamp and
/// address a piece without consulting the graph.
#[derive(Debug, Clone)]
pub(crate) struct SendRoute {
    /// Receiving worker.
    pub(crate) dst: usize,
    /// Tensor the piece is cut from (must be in the sender's values).
    pub(crate) tensor: TensorId,
    /// The consuming `multi_fetch` node (for failure attribution).
    pub(crate) consumer: NodeId,
    /// Position of `tensor` in the consumer's input list.
    pub(crate) input_index: usize,
    /// Receiver-side slot the piece lands in.
    pub(crate) slot: u32,
    /// The block to extract.
    pub(crate) piece: FetchPiece,
}

/// What must arrive in one receive slot — the receiver's full-integrity
/// cross-check, resolved at plan time.
#[derive(Debug, Clone)]
pub(crate) struct SlotExpect {
    /// Worker the piece must come from.
    pub(crate) src: usize,
    /// Consuming `multi_fetch` node.
    pub(crate) consumer: NodeId,
    /// Input index within the consumer.
    pub(crate) input_index: usize,
    /// Block shape of the payload.
    pub(crate) dims: Vec<usize>,
}

/// One input of a pre-decoded `multi_fetch` assembly.
#[derive(Debug, Clone)]
pub(crate) enum FetchSource {
    /// Read from the worker's own values.
    Local(TensorId),
    /// Wait for the piece in this receive slot.
    Remote {
        /// Receive slot the piece arrives in.
        slot: u32,
    },
}

/// A pre-decoded `multi_fetch` input: where the block comes from and where
/// it lands in the output.
#[derive(Debug, Clone)]
pub(crate) struct FetchInput {
    pub(crate) source: FetchSource,
    pub(crate) piece: FetchPiece,
}

/// All inputs of one `multi_fetch` node, pre-decoded.
#[derive(Debug, Clone, Default)]
pub(crate) struct FetchPlan {
    pub(crate) inputs: Vec<FetchInput>,
}

/// One worker's routing table.
#[derive(Debug, Default)]
pub(crate) struct WorkerRoutes {
    /// Routes pushed before any compute: leaf shards, plus (on resume) owed
    /// snapshot sends.
    pub(crate) startup: Vec<SendRoute>,
    /// Producer-side routes, grouped by producing local schedule position.
    pub(crate) sends: Vec<SendRoute>,
    /// Per local schedule position: half-open `[lo, hi)` range into `sends`.
    pub(crate) spans: Vec<(u32, u32)>,
    /// Per receive slot: the expected arrival.
    pub(crate) slots: Vec<SlotExpect>,
    /// Per local schedule position: the pre-decoded assembly of a
    /// `multi_fetch` node (`None` for every other op).
    pub(crate) fetches: Vec<Option<FetchPlan>>,
}

/// The full interconnect routing of one attempt.
#[derive(Debug, Default)]
pub(crate) struct RoutePlan {
    pub(crate) workers: Vec<WorkerRoutes>,
}

impl RoutePlan {
    /// Resolves every route of `sharded` for an attempt starting at
    /// `resume_cuts` (`None` = from scratch). `local_pos[node]` is the
    /// node's position within its own worker's schedule.
    pub(crate) fn new(
        sharded: &ShardedGraph,
        local_pos: &[usize],
        resume_cuts: Option<&[usize]>,
    ) -> RoutePlan {
        let k = sharded.workers;
        let mut workers: Vec<WorkerRoutes> = (0..k).map(|_| WorkerRoutes::default()).collect();
        let edges = sharded.comm_edges();

        // Slot numbering: dense per receiver, in comm_edges order — a pure
        // function of the graph, independent of any resume cut.
        let mut slot_of: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        for e in &edges {
            let slot = workers[e.dst].slots.len() as u32;
            slot_of.insert((e.consumer.0, e.input_index), slot);
            workers[e.dst].slots.push(SlotExpect {
                src: e.src,
                consumer: e.consumer,
                input_index: e.input_index,
                dims: e.piece.len.iter().map(|&l| l.max(0) as usize).collect(),
            });
        }

        // Sender side: group routes by producing position, honoring the
        // resume filter (see the module docs).
        let mut by_pos: Vec<BTreeMap<usize, Vec<SendRoute>>> = vec![BTreeMap::new(); k];
        for e in &edges {
            let route = SendRoute {
                dst: e.dst,
                tensor: e.tensor,
                consumer: e.consumer,
                input_index: e.input_index,
                slot: slot_of[&(e.consumer.0, e.input_index)],
                piece: e.piece.clone(),
            };
            let producer = sharded.graph.producer(e.tensor);
            match resume_cuts {
                Some(cuts) => {
                    if local_pos[e.consumer.0] < cuts[e.dst] {
                        continue; // consumer ran before the checkpoint
                    }
                    match producer {
                        Some(p) if local_pos[p.0] >= cuts[e.src] => {
                            by_pos[e.src].entry(local_pos[p.0]).or_default().push(route)
                        }
                        // Leaf shard, or produced before the sender's cut:
                        // owed — replayed from the snapshot at startup.
                        _ => workers[e.src].startup.push(route),
                    }
                }
                None => match producer {
                    Some(p) => by_pos[e.src].entry(local_pos[p.0]).or_default().push(route),
                    None => workers[e.src].startup.push(route),
                },
            }
        }

        for w in 0..k {
            let schedule = sharded.worker_schedule(w);
            let routes = &mut workers[w];
            routes.spans = Vec::with_capacity(schedule.len());
            routes.fetches = Vec::with_capacity(schedule.len());
            for (pos, &id) in schedule.iter().enumerate() {
                let lo = routes.sends.len() as u32;
                if let Some(list) = by_pos[w].remove(&pos) {
                    routes.sends.extend(list);
                }
                routes.spans.push((lo, routes.sends.len() as u32));
                routes.fetches.push(fetch_pieces(&sharded.graph, id).map(|pieces| {
                    let node = sharded.graph.node(id);
                    let inputs = node
                        .inputs
                        .iter()
                        .zip(pieces)
                        .enumerate()
                        .map(|(i, (&t, piece))| {
                            let source = if sharded.device_of_tensor[t.0] == Some(w) {
                                FetchSource::Local(t)
                            } else {
                                FetchSource::Remote { slot: slot_of[&(id.0, i)] }
                            };
                            FetchInput { source, piece }
                        })
                        .collect();
                    FetchPlan { inputs }
                }));
            }
        }
        RoutePlan { workers }
    }
}
