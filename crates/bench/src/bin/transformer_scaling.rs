//! Transformer decoder scaling sweep (Fig. 8-11 style, on the workload the
//! paper predates): simulated throughput and OOM curves for a GPT-style
//! decoder block at paper-scale sequence lengths, across 1/2/4/8 simulated
//! GPUs, written to `BENCH_transformer.json`.
//!
//! Besides the curves, the run is a regression gate on two properties:
//!
//! 1. **Strategy structure** — at every multi-worker point the plan must be
//!    genuinely multi-axis: different ops split along different TDL axes,
//!    with at least one head-parallel or reduction split (`split:h`,
//!    `reduce:h`, `split:j`, `reduce:k`) in use — never a degenerate
//!    single-axis data-parallel plan. At seq=512 (where the seq/width ratio
//!    makes the megatron partition globally optimal) the gate further
//!    requires the exact megatron-style ids on every structure node; at
//!    longer sequences the DP legitimately mixes in sequence-parallel steps
//!    (`split:n`), which the curves record.
//! 2. **Comm bytes** — the simulated inter-GPU traffic of every point must
//!    match the committed `BENCH_transformer.json` exactly (the simulator is
//!    deterministic; any drift is a real partitioning or codegen change and
//!    must be re-committed deliberately).

use tofu_bench::{bench_report, write_report, Json};
use tofu_core::{partition, NodeChoice, PartitionOptions, PartitionPlan};
use tofu_graph::{Graph, NodeId};
use tofu_models::{decoder_block, DecoderConfig};
use tofu_obs::json::parse;
use tofu_sim::{Machine, TofuSimOptions};

/// Paper-scale sequence lengths (tokens per step; batch folded in).
const SEQS: [usize; 5] = [512, 1024, 2048, 4096, 8192];
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const D_MODEL: usize = 1024;
const HEADS: usize = 16;
const D_FF: usize = 4096;
const CLASSES: usize = 1024;
/// At this sequence length the megatron partition is globally optimal and
/// the gate requires it exactly; longer sequences may mix sequence splits.
const MEGATRON_SEQ: usize = 512;

/// Forward nodes whose chosen strategy defines the megatron structure.
const STRUCTURE: [(&str, &str); 5] = [
    ("q_proj", "split:h"),
    ("attn_out", "reduce:h"),
    ("ffn1", "split:j"),
    ("ffn2", "reduce:k"),
    ("scores", "split:b"),
];

/// Per-recursion-step strategy ids of the named node.
fn chosen(g: &Graph, plan: &PartitionPlan, name: &str) -> Vec<String> {
    let Some(id) = (0..g.num_nodes()).map(NodeId).find(|&n| g.node(n).name == name) else {
        return Vec::new();
    };
    plan.steps
        .iter()
        .map(|step| match &step.plan.node_choice[id.0] {
            NodeChoice::Strategy(s) => s.id.clone(),
            NodeChoice::Ewise(spec) => format!("ewise:{spec:?}"),
        })
        .collect()
}

/// Collapses per-step ids for display: "split:h" or "split:n|split:h".
fn display_ids(ids: &[String]) -> String {
    let mut out: Vec<&str> = Vec::new();
    for id in ids {
        if out.last() != Some(&id.as_str()) {
            out.push(id);
        }
    }
    out.join("|")
}

fn committed_comm(doc: &Json, seq: usize, workers: usize) -> Option<f64> {
    let rows = doc.get("results")?.as_array()?;
    rows.iter()
        .find(|r| {
            r.get("seq").and_then(Json::as_f64) == Some(seq as f64)
                && r.get("workers").and_then(Json::as_f64) == Some(workers as f64)
        })?
        .get("comm_bytes")
        .and_then(Json::as_f64)
}

fn main() {
    let machine = Machine::p2_8xlarge();
    let committed = std::fs::read_to_string("BENCH_transformer.json")
        .ok()
        .and_then(|s| parse(&s).ok());
    let mut results: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    println!(
        "Transformer decoder scaling: d_model={D_MODEL}, heads={HEADS}, d_ff={D_FF} \
         on {} simulated GPUs ({} GB each)",
        machine.gpus,
        machine.mem_capacity as f64 / 1e9,
    );
    println!(
        "{:<6} {:<8} {:>14} {:>12} {:>10} {:>10}  structure",
        "seq", "workers", "tokens/s", "comm bytes", "peak GB", "search ms"
    );
    println!("{}", "-".repeat(100));

    for seq in SEQS {
        let cfg = DecoderConfig {
            seq,
            d_model: D_MODEL,
            heads: HEADS,
            d_ff: D_FF,
            classes: CLASSES,
            with_updates: true,
        };
        let m = decoder_block(&cfg).expect("decoder builds");
        for workers in WORKERS {
            let plan =
                match partition(&m.graph, &PartitionOptions { workers, ..Default::default() }) {
                    Ok(p) => p,
                    Err(e) => {
                        failures.push(format!("seq={seq} w={workers}: partition failed: {e}"));
                        continue;
                    }
                };
            let run = match tofu_sim::run_partitioned(
                &m.graph,
                &plan,
                seq,
                &machine,
                &TofuSimOptions::default(),
            ) {
                Ok(r) => r,
                Err(e) => {
                    failures.push(format!("seq={seq} w={workers}: simulation failed: {e}"));
                    continue;
                }
            };

            let structure: Vec<(String, Vec<String>)> = STRUCTURE
                .iter()
                .map(|&(node, _)| (node.to_string(), chosen(&m.graph, &plan, node)))
                .collect();
            if workers > 1 {
                let all: Vec<&str> = structure
                    .iter()
                    .flat_map(|(_, ids)| ids.iter().map(String::as_str))
                    .collect();
                let distinct: std::collections::BTreeSet<&str> = all.iter().copied().collect();
                // Non-token-axis splits: head splits on the projections
                // (`split:h`/`reduce:h`), feature splits on the MLP
                // (`split:j`/`reduce:k`), or the batched attention matmuls'
                // batch axis (`split:b`), which for this graph IS the head
                // dimension. Pure token-data-parallelism would pick
                // `split:n`/`split:i` everywhere and contains none of these.
                let model_parallel = ["split:h", "reduce:h", "split:j", "reduce:k", "split:b"]
                    .iter()
                    .any(|a| distinct.contains(a));
                if distinct.len() < 2 || !model_parallel {
                    failures.push(format!(
                        "seq={seq} w={workers}: plan is not multi-axis (ids {distinct:?}) — \
                         the search degenerated to single-axis parallelism"
                    ));
                }
                if seq == MEGATRON_SEQ {
                    for &(node, want) in &STRUCTURE {
                        let ids = &structure.iter().find(|(n, _)| n == node).unwrap().1;
                        if !ids.iter().all(|id| id == want) {
                            failures.push(format!(
                                "seq={seq} w={workers}: node {node} chose {}, expected the \
                                 megatron-style {want} at this scale",
                                display_ids(ids)
                            ));
                        }
                    }
                }
            }

            let peak = run.per_device_gb.iter().copied().fold(0.0, f64::max);
            let (tokens_per_sec, oom) = match run.outcome.throughput() {
                Some(t) => (t, false),
                None => (0.0, true),
            };
            let summary = if workers == 1 {
                "single device (replicated)".to_string()
            } else {
                structure
                    .iter()
                    .map(|(n, ids)| format!("{n}={}", display_ids(ids)))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!(
                "{:<6} {:<8} {:>14} {:>12.0} {:>10.2} {:>10.1}  {}",
                seq,
                workers,
                if oom { "OOM".to_string() } else { format!("{tokens_per_sec:.1}") },
                run.comm_bytes,
                peak,
                plan.search_time.as_secs_f64() * 1e3,
                summary,
            );

            if let Some(base) =
                committed.as_ref().and_then(|d| committed_comm(d, seq, workers))
            {
                if (run.comm_bytes - base).abs() > 1e-6 * base.max(1.0) {
                    failures.push(format!(
                        "seq={seq} w={workers}: comm bytes {:.0} drifted from committed {:.0}",
                        run.comm_bytes, base
                    ));
                }
            }

            results.push(Json::obj(vec![
                ("seq", Json::from(seq)),
                ("workers", Json::from(workers)),
                ("tokens_per_sec", Json::from(tokens_per_sec)),
                ("oom", Json::Bool(oom)),
                ("comm_bytes", Json::from(run.comm_bytes)),
                ("plan_comm_bytes", Json::from(plan.total_comm_bytes())),
                ("peak_gb", Json::from(peak)),
                ("compute_only_seconds", Json::from(run.compute_only_seconds)),
                (
                    "structure",
                    Json::obj(
                        structure
                            .iter()
                            .map(|(n, ids)| (n.as_str(), Json::from(display_ids(ids).as_str())))
                            .collect(),
                    ),
                ),
            ]));
        }
    }

    write_report(
        "BENCH_transformer.json",
        &bench_report(
            "transformer_scaling",
            vec![
                ("d_model", Json::from(D_MODEL)),
                ("heads", Json::from(HEADS)),
                ("d_ff", Json::from(D_FF)),
                ("classes", Json::from(CLASSES)),
            ],
            results,
        ),
    );
    if !failures.is_empty() {
        eprintln!("\ntransformer_scaling FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("\nBENCH_transformer.json written; megatron structure and comm bytes verified.");
}
