//! Reduction, broadcast and softmax kernels.

use crate::{Result, Shape, Tensor, TensorError};

/// Reduction mode for [`Tensor::reduce_axis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// Sum of elements.
    Sum,
    /// Maximum element.
    Max,
    /// Minimum element.
    Min,
    /// Product of elements.
    Prod,
}

impl Tensor {
    /// Reduces along `axis`, removing the dimension.
    pub fn reduce_axis(&self, axis: usize, kind: ReduceKind) -> Result<Tensor> {
        let extent = self.shape().try_dim(axis)?;
        let mut dims = self.shape().dims().to_vec();
        dims.remove(axis);
        let out_shape = Shape::new(dims);
        let inner: usize = self.shape().dims()[axis + 1..].iter().product();
        let outer: usize = self.shape().dims()[..axis].iter().product();
        let mut out = vec![
            match kind {
                ReduceKind::Sum => 0.0,
                ReduceKind::Max => f32::NEG_INFINITY,
                ReduceKind::Min => f32::INFINITY,
                ReduceKind::Prod => 1.0,
            };
            out_shape.volume().max(1)
        ];
        for o in 0..outer {
            for e in 0..extent {
                let base = (o * extent + e) * inner;
                for i in 0..inner {
                    let v = self.data()[base + i];
                    let acc = &mut out[o * inner + i];
                    *acc = match kind {
                        ReduceKind::Sum => *acc + v,
                        ReduceKind::Max => acc.max(v),
                        ReduceKind::Min => acc.min(v),
                        ReduceKind::Prod => *acc * v,
                    };
                }
            }
        }
        Tensor::from_vec(out_shape, out)
    }

    /// Sums along `axis`, removing the dimension.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, ReduceKind::Sum)
    }

    /// Adds a rank-1 bias of extent `shape[axis]` broadcast over all other
    /// dimensions.
    pub fn broadcast_add(&self, bias: &Tensor, axis: usize) -> Result<Tensor> {
        if bias.shape().rank() != 1 {
            return Err(TensorError::Incompatible("bias must be rank 1".into()));
        }
        let extent = self.shape().try_dim(axis)?;
        if bias.shape().dim(0) != extent {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: bias.shape().dims().to_vec(),
            });
        }
        let inner: usize = self.shape().dims()[axis + 1..].iter().product();
        let mut out = self.clone();
        for (flat, v) in out.data_mut().iter_mut().enumerate() {
            let coord = (flat / inner) % extent;
            *v += bias.data()[coord];
        }
        Ok(out)
    }

    /// Row-wise softmax of a rank-2 tensor `(batch, classes)`.
    pub fn softmax(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::Incompatible("softmax expects rank-2 input".into()));
        }
        let (b, c) = (self.shape().dim(0), self.shape().dim(1));
        let mut out = self.clone();
        for row in 0..b {
            let slice = &mut out.data_mut()[row * c..(row + 1) * c];
            let mx = slice.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut denom = 0.0;
            for v in slice.iter_mut() {
                *v = (*v - mx).exp();
                denom += *v;
            }
            for v in slice.iter_mut() {
                *v /= denom;
            }
        }
        Ok(out)
    }

    /// Mean softmax cross-entropy against integer labels.
    pub fn softmax_cross_entropy(&self, labels: &[usize]) -> Result<f32> {
        let probs = self.softmax()?;
        let (b, c) = (self.shape().dim(0), self.shape().dim(1));
        if labels.len() != b {
            return Err(TensorError::Incompatible(format!(
                "{} labels for batch {b}",
                labels.len()
            )));
        }
        let mut loss = 0.0;
        for (row, &label) in labels.iter().enumerate() {
            if label >= c {
                return Err(TensorError::Incompatible(format!("label {label} >= classes {c}")));
            }
            loss -= probs.data()[row * c + label].max(1e-12).ln();
        }
        Ok(loss / b as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_vec(Shape::new(vec![2, 3]), vec![1., 2., 3., 4., 5., 6.]).unwrap()
    }

    #[test]
    fn reduce_each_kind() {
        let t = t23();
        assert_eq!(t.reduce_axis(0, ReduceKind::Sum).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(t.reduce_axis(1, ReduceKind::Sum).unwrap().data(), &[6., 15.]);
        assert_eq!(t.reduce_axis(0, ReduceKind::Max).unwrap().data(), &[4., 5., 6.]);
        assert_eq!(t.reduce_axis(0, ReduceKind::Min).unwrap().data(), &[1., 2., 3.]);
        assert_eq!(t.reduce_axis(1, ReduceKind::Prod).unwrap().data(), &[6., 120.]);
    }

    #[test]
    fn reduce_to_scalar() {
        let v = Tensor::arange(4);
        let s = v.sum_axis(0).unwrap();
        assert_eq!(s.shape().rank(), 0);
        assert_eq!(s.data(), &[6.0]);
    }

    #[test]
    fn reduce_axis_out_of_range() {
        assert!(t23().sum_axis(2).is_err());
    }

    #[test]
    fn broadcast_add_per_column_and_row() {
        let t = t23();
        let bias_cols = Tensor::from_vec(Shape::new(vec![3]), vec![10., 20., 30.]).unwrap();
        let out = t.broadcast_add(&bias_cols, 1).unwrap();
        assert_eq!(out.data(), &[11., 22., 33., 14., 25., 36.]);
        let bias_rows = Tensor::from_vec(Shape::new(vec![2]), vec![100., 200.]).unwrap();
        let out = t.broadcast_add(&bias_rows, 0).unwrap();
        assert_eq!(out.data(), &[101., 102., 103., 204., 205., 206.]);
    }

    #[test]
    fn broadcast_add_validates() {
        let t = t23();
        let wrong = Tensor::from_vec(Shape::new(vec![2]), vec![0., 0.]).unwrap();
        assert!(t.broadcast_add(&wrong, 1).is_err());
        let rank2 = Tensor::zeros(Shape::new(vec![1, 3]));
        assert!(t.broadcast_add(&rank2, 1).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = t23();
        let s = t.softmax().unwrap();
        for row in 0..2 {
            let sum: f32 = s.data()[row * 3..(row + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Softmax is shift invariant.
        let shifted = t.add_scalar(100.0).softmax().unwrap();
        assert!(shifted.allclose(&s, 1e-5));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits =
            Tensor::from_vec(Shape::new(vec![1, 3]), vec![100., 0., 0.]).unwrap();
        let loss = logits.softmax_cross_entropy(&[0]).unwrap();
        assert!(loss < 1e-3);
        let bad = logits.softmax_cross_entropy(&[1]).unwrap();
        assert!(bad > 10.0);
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let logits = Tensor::zeros(Shape::new(vec![2, 3]));
        assert!(logits.softmax_cross_entropy(&[0]).is_err());
        assert!(logits.softmax_cross_entropy(&[0, 5]).is_err());
    }
}
