//! Static memory planning (the §6 "leveraging the existing memory planner"
//! substrate).
//!
//! Like MXNet's planner, buffers are assigned by a greedy liveness scan over
//! a serial schedule: an intermediate tensor's buffer becomes free after its
//! last consumer and can then be reused by a later allocation. The partition
//! pass inserts extra control dependencies precisely so that each worker's
//! sub-schedule stays serial and this reuse keeps working (§6, Fig. 7); the
//! `reuse` flag models the ablation where those dependencies are missing and
//! no cross-operator reuse is safe.

use std::collections::BTreeMap;

use crate::graph::{Graph, NodeId, TensorId, TensorKind};

/// Result of planning one device's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPlan {
    /// Peak bytes of transient (intermediate) buffers.
    pub peak_transient_bytes: u64,
    /// Bytes of persistent tensors (inputs and weights).
    pub persistent_bytes: u64,
    /// Number of physical buffers allocated (≤ number of intermediates when
    /// reuse succeeds).
    pub buffers_allocated: usize,
}

impl MemPlan {
    /// Total peak memory: persistent plus transient peak.
    pub fn total_bytes(&self) -> u64 {
        self.peak_transient_bytes + self.persistent_bytes
    }
}

/// True when MXNet would run this operator in place (same-shape
/// element-wise math and gradient aggregation).
fn is_inplace_capable(g: &Graph, id: NodeId) -> bool {
    let node = g.node(id);
    if node.op == "add_n" {
        return true;
    }
    match crate::registry::lookup(&node.op) {
        Ok(def) => matches!(
            def.category,
            crate::registry::OpCategory::Elementwise | crate::registry::OpCategory::Optimizer
        ),
        Err(_) => false,
    }
}

/// Plans memory for the whole graph in insertion order.
pub fn plan_memory(g: &Graph, reuse: bool) -> MemPlan {
    let schedule: Vec<NodeId> = g.node_ids().collect();
    plan_memory_for_schedule(g, &schedule, reuse)
}

/// Plans memory for a sub-schedule (e.g. one worker's nodes of a partitioned
/// graph). Only tensors produced by scheduled nodes count as transient;
/// persistent bytes cover inputs/weights this device *owns* (consumed by a
/// non-fetch node of the schedule — a `multi_fetch` of a remote tensor only
/// materializes the fetched piece, which is the fetch node's own output).
///
/// A tensor produced here but consumed by other devices stays live until
/// the local step at which its last remote consumer has run (the §6
/// behavior: the buffer is released once the remote fetch completed).
pub fn plan_memory_for_schedule(g: &Graph, schedule: &[NodeId], reuse: bool) -> MemPlan {
    let mut produced: BTreeMap<TensorId, usize> = BTreeMap::new();
    for (pos, &id) in schedule.iter().enumerate() {
        produced.insert(g.node(id).output, pos);
    }

    // Global last-consumer index of every tensor (one pass over the graph).
    let mut global_last: Vec<usize> = vec![0; g.num_tensors()];
    for id in g.node_ids() {
        for &t in &g.node(id).inputs {
            global_last[t.0] = global_last[t.0].max(id.0);
        }
    }
    // Map a global node index to the local schedule position at (or after)
    // which it has certainly happened. Schedule ids ascend by construction.
    let global_ids: Vec<usize> = schedule.iter().map(|n| n.0).collect();
    let to_local = |global: usize| -> usize {
        match global_ids.binary_search(&global) {
            Ok(p) => p,
            Err(p) => p.min(schedule.len().saturating_sub(1)),
        }
    };
    let mut last_use: BTreeMap<TensorId, usize> = BTreeMap::new();
    for (pos, &id) in schedule.iter().enumerate() {
        for &t in &g.node(id).inputs {
            let e = last_use.entry(t).or_insert(pos);
            *e = (*e).max(pos);
        }
    }
    // Locally produced tensors with remote consumers: extend their liveness
    // to the local step aligned with the last remote consumer.
    for (&t, &def_pos) in &produced {
        let remote_last = global_last[t.0];
        let local = to_local(remote_last).max(def_pos);
        let e = last_use.entry(t).or_insert(local);
        *e = (*e).max(local);
    }

    // Persistent bytes: inputs/weights consumed by non-fetch nodes of the
    // schedule (i.e. resident on this device).
    let mut persistent = 0u64;
    let mut seen_persistent: Vec<TensorId> = Vec::new();
    for &id in schedule {
        let node = g.node(id);
        if node.op == "multi_fetch" {
            continue;
        }
        for &t in &node.inputs {
            let meta = g.tensor(t);
            let external = meta.kind != TensorKind::Intermediate;
            if external && !produced.contains_key(&t) && !seen_persistent.contains(&t) {
                seen_persistent.push(t);
                persistent += meta.shape.bytes();
            }
        }
    }

    // Greedy buffer reuse over the serial schedule.
    let mut free_buffers: Vec<u64> = Vec::new(); // sizes of free physical buffers
    let mut live: Vec<(TensorId, u64, usize)> = Vec::new(); // (tensor, buffer size, last use)
    let mut current = 0u64;
    let mut peak = 0u64;
    let mut allocated = 0usize;

    for (pos, &id) in schedule.iter().enumerate() {
        let node = g.node(id);
        let out = node.output;
        let need = g.tensor(out).shape.bytes();
        // In-place execution (MXNet marks element-wise operators in-place):
        // when the first input's buffer dies at this very node, the output
        // takes it over without any new allocation.
        let in_place_slot = if reuse && is_inplace_capable(g, id) {
            node.inputs.first().and_then(|&t| {
                live.iter().position(|&(lt, size, last)| {
                    lt == t && last == pos && size >= need
                })
            })
        } else {
            None
        };
        if let Some(i) = in_place_slot {
            let (_, size, _) = live.swap_remove(i);
            let last = last_use.get(&out).copied().unwrap_or(usize::MAX);
            live.push((out, size, last));
            continue;
        }
        // Reuse a free buffer when one exists. MXNet's planner assigns
        // buffers offline with full liveness knowledge, so it can resize
        // assignments freely; model that by growing an undersized free
        // buffer instead of allocating a disjoint one (the pool's high-water
        // mark then tracks the true live-byte peak, not fragmentation).
        let slot = if reuse {
            // Prefer an exact/over-sized fit, else the largest free buffer.
            free_buffers
                .iter()
                .enumerate()
                .filter(|(_, &size)| size >= need)
                .min_by_key(|(_, &size)| size)
                .map(|(i, _)| i)
                .or_else(|| {
                    free_buffers
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &size)| size)
                        .map(|(i, _)| i)
                })
        } else {
            None
        };
        let size = match slot {
            Some(i) => {
                let size = free_buffers.swap_remove(i);
                if size < need {
                    current += need - size;
                    peak = peak.max(current);
                }
                size.max(need)
            }
            None => {
                allocated += 1;
                current += need;
                peak = peak.max(current);
                need
            }
        };
        let last = last_use.get(&out).copied().unwrap_or(usize::MAX);
        live.push((out, size, last));

        // Release buffers whose last consumer just ran. Without reuse the
        // planner cannot reclaim them at all — this models the missing
        // control dependencies of Fig. 7, where ops of the partitioned graph
        // have no ordering that would make reclamation safe.
        if reuse {
            let mut i = 0;
            while i < live.len() {
                if live[i].2 <= pos {
                    let (_, size, _) = live.swap_remove(i);
                    free_buffers.push(size);
                } else {
                    i += 1;
                }
            }
        }
    }

    MemPlan { peak_transient_bytes: peak, persistent_bytes: persistent, buffers_allocated: allocated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attrs;
    use tofu_tensor::Shape;

    /// A chain of n element-wise ops over a 1 KiB tensor.
    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![256]));
        for i in 0..n {
            t = g.add_op("relu", &format!("r{i}"), &[t], Attrs::new()).unwrap();
        }
        g
    }

    #[test]
    fn chain_runs_in_place_with_one_buffer() {
        // Element-wise chains execute in place (as MXNet marks them): after
        // the first allocation every step reuses the same buffer.
        let g = chain(10);
        let plan = plan_memory(&g, true);
        assert_eq!(plan.buffers_allocated, 1, "allocated {}", plan.buffers_allocated);
        assert_eq!(plan.peak_transient_bytes, 1024);
        assert_eq!(plan.persistent_bytes, 1024);
    }

    #[test]
    fn no_reuse_allocates_per_node() {
        let g = chain(10);
        let plan = plan_memory(&g, false);
        assert_eq!(plan.buffers_allocated, 10);
        // Without reuse every transient stays live: 10 x 1 KiB.
        assert_eq!(plan.peak_transient_bytes, 10 * 1024);
        let with_reuse = plan_memory(&g, true);
        assert!(plan.peak_transient_bytes > with_reuse.peak_transient_bytes);
    }

    #[test]
    fn fan_out_keeps_source_live() {
        // x -> a, x -> b, (a, b) -> c: x stays live until both consumers ran.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![256]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let b = g.add_op("tanh", "b", &[x], Attrs::new()).unwrap();
        let _c = g.add_op("add", "c", &[a, b], Attrs::new()).unwrap();
        let plan = plan_memory(&g, true);
        // a and b live at once; the add runs in place on a's buffer.
        assert_eq!(plan.peak_transient_bytes, 2 * 1024);
    }

    #[test]
    fn weights_count_as_persistent() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 8]));
        let w = g.add_weight("w", Shape::new(vec![8, 2]));
        let _y = g.add_op("matmul", "mm", &[x, w], Attrs::new()).unwrap();
        let plan = plan_memory(&g, true);
        assert_eq!(plan.persistent_bytes, (4 * 8 + 8 * 2) * 4);
        assert_eq!(plan.peak_transient_bytes, 4 * 2 * 4);
    }

    #[test]
    fn total_adds_up() {
        let g = chain(3);
        let p = plan_memory(&g, true);
        assert_eq!(p.total_bytes(), p.peak_transient_bytes + p.persistent_bytes);
    }

    #[test]
    fn sub_schedule_scopes_to_workers_nodes() {
        let g = chain(4);
        let first_two: Vec<NodeId> = g.node_ids().take(2).collect();
        let plan = plan_memory_for_schedule(&g, &first_two, true);
        // r0 allocates; r1 runs in place. But r1's output feeds r2, which is
        // outside this schedule, so it must stay live: peak is one buffer
        // (the in-place takeover keeps a single physical buffer).
        assert_eq!(plan.peak_transient_bytes, 1024);
    }
}
