//! Overlay acceptance test: for one sharded model, the simulator's predicted
//! trace and the runtime's measured trace must use the *same* span names on
//! the matching device lanes, so the two process groups line up event for
//! event when loaded into chrome://tracing together.

use std::collections::BTreeSet;

use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_obs::{Collector, Phase, Track, PID_SIM_BASE};
use tofu_runtime::{run_with_options, RunOptions};
use tofu_sim::{simulate_traced, Machine};
use tofu_tensor::Tensor;

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.25)
        };
        out.push((t, v));
    }
    out
}

fn shard(g: &Graph, workers: usize) -> (ShardedGraph, Vec<(TensorId, Tensor)>) {
    let plan = partition(g, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(g, &plan, &GenOptions::default()).unwrap();
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        shard_feeds.extend(sharded.scatter(t, &v).unwrap());
    }
    (sharded, shard_feeds)
}

/// Names of the op/fetch spans recorded on the given track.
fn op_names(obs: &Collector, track: Track) -> BTreeSet<String> {
    obs.events()
        .into_iter()
        .filter(|e| {
            e.track == track
                && matches!(e.phase, Phase::Complete { .. })
                && (e.cat == "op" || e.cat == "fetch")
        })
        .map(|e| e.name)
        .collect()
}

/// Names of the cumulative link-byte counters seen anywhere in the trace for
/// lanes belonging to the given process group.
fn link_counter_names(obs: &Collector, sim: bool) -> BTreeSet<String> {
    obs.events()
        .into_iter()
        .filter(|e| {
            matches!(e.phase, Phase::Counter { .. })
                && e.name.starts_with("link ")
                && e.track.device().is_some()
                && (e.track.pid >= PID_SIM_BASE) == sim
        })
        .map(|e| e.name)
        .collect()
}

#[test]
fn sim_and_runtime_lanes_share_op_names() {
    let workers = 2;
    let m = mlp(&MlpConfig { batch: 16, dims: vec![32, 32], classes: 16, with_updates: true })
        .unwrap();
    let (sharded, shard_feeds) = shard(&m.graph, workers);

    let obs = Collector::new();
    simulate_traced(
        &sharded.graph,
        &sharded.device_of_node,
        &sharded.device_of_tensor,
        &Machine::p2_8xlarge(),
        false,
        Some(&obs),
    );
    let opts = RunOptions { collector: Some(obs.clone()), ..Default::default() };
    run_with_options(&sharded, &shard_feeds, &opts).unwrap();

    for d in 0..workers {
        let measured = op_names(&obs, Track::runtime(d));
        let predicted = op_names(&obs, Track::sim(d));
        assert!(!measured.is_empty(), "device {d}: runtime lane recorded no op spans");
        assert_eq!(
            measured, predicted,
            "device {d}: measured and predicted lanes must use identical op names"
        );
    }

    // Both sides report traffic with the same per-link counter names, so the
    // byte timelines overlay too.
    let measured_links = link_counter_names(&obs, false);
    let predicted_links = link_counter_names(&obs, true);
    assert!(!measured_links.is_empty(), "multi-worker run must report link bytes");
    assert_eq!(measured_links, predicted_links);
}
