//! Attention building blocks: head-indexed projections and layer norm.
//!
//! Multi-head attention needs to move between the token layout `(N, D)` and
//! the head layout `(H, N, K)` with `D = H·K`. There is no reshape operator
//! in the catalogue (reshape is not expressible in TDL's one-variable-per-
//! dimension access language), so the projections themselves are head-
//! indexed: `proj_heads` contracts a token matrix against a rank-3 weight
//! `(H, D, K)` and produces the head layout directly, and `unproj_heads`
//! contracts the head layout back down to tokens. Both are clean TDL
//! reductions, so interval analysis discovers the megatron-style splits
//! without any special cases: splitting `h` of `proj_heads` splits only the
//! weight (column-parallel QKV), and the `reduce:h` strategy of
//! `unproj_heads` is exactly the row-parallel output projection with output
//! reduction.
//!
//! `layer_norm` normalizes rows along the last axis; like softmax, the row
//! is an opaque TDL function of the whole row, so the normalized axis is
//! unsplittable while every batch/token axis partitions.

use tofu_tdl::{builder::Idx, DescBuilder, Reducer, TdlDesc};
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::graph::TensorId;
use crate::registry::{GradCtx, OpCategory, OpDef};
use crate::Result;

// ---- Shape inference ---------------------------------------------------------

fn two_inputs(ins: &[Shape], r0: usize, r1: usize, op: &str) -> std::result::Result<(), String> {
    if ins.len() != 2 || ins[0].rank() != r0 || ins[1].rank() != r1 {
        return Err(format!("{op} expects (rank-{r0}, rank-{r1}) inputs"));
    }
    Ok(())
}

/// `proj_heads(X:(N,D), W:(H,D,K)) -> (H,N,K)`.
fn shape_proj_heads(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    two_inputs(ins, 2, 3, "proj_heads")?;
    if ins[0].dim(1) != ins[1].dim(1) {
        return Err(format!("model dims {} vs {}", ins[0].dim(1), ins[1].dim(1)));
    }
    Ok(Shape::new(vec![ins[1].dim(0), ins[0].dim(0), ins[1].dim(2)]))
}

/// `unproj_heads(C:(H,N,K), W:(H,K,D)) -> (N,D)`.
fn shape_unproj_heads(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    two_inputs(ins, 3, 3, "unproj_heads")?;
    if ins[0].dim(0) != ins[1].dim(0) || ins[0].dim(2) != ins[1].dim(1) {
        return Err(format!("incompatible head shapes {} and {}", ins[0], ins[1]));
    }
    Ok(Shape::new(vec![ins[0].dim(1), ins[1].dim(2)]))
}

/// `proj_heads_grad_x(dO:(H,N,K), W:(H,D,K)) -> (N,D)`.
fn shape_proj_heads_grad_x(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    two_inputs(ins, 3, 3, "proj_heads_grad_x")?;
    if ins[0].dim(0) != ins[1].dim(0) || ins[0].dim(2) != ins[1].dim(2) {
        return Err(format!("incompatible grad shapes {} and {}", ins[0], ins[1]));
    }
    Ok(Shape::new(vec![ins[0].dim(1), ins[1].dim(1)]))
}

/// `proj_heads_grad_w(X:(N,D), dO:(H,N,K)) -> (H,D,K)`.
fn shape_proj_heads_grad_w(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    two_inputs(ins, 2, 3, "proj_heads_grad_w")?;
    if ins[0].dim(0) != ins[1].dim(1) {
        return Err(format!("token dims {} vs {}", ins[0].dim(0), ins[1].dim(1)));
    }
    Ok(Shape::new(vec![ins[1].dim(0), ins[0].dim(1), ins[1].dim(2)]))
}

/// `unproj_heads_grad_c(dY:(N,D), W:(H,K,D)) -> (H,N,K)`.
fn shape_unproj_heads_grad_c(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    two_inputs(ins, 2, 3, "unproj_heads_grad_c")?;
    if ins[0].dim(1) != ins[1].dim(2) {
        return Err(format!("model dims {} vs {}", ins[0].dim(1), ins[1].dim(2)));
    }
    Ok(Shape::new(vec![ins[1].dim(0), ins[0].dim(0), ins[1].dim(1)]))
}

/// `unproj_heads_grad_w(C:(H,N,K), dY:(N,D)) -> (H,K,D)`.
fn shape_unproj_heads_grad_w(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    two_inputs(ins, 3, 2, "unproj_heads_grad_w")?;
    if ins[0].dim(1) != ins[1].dim(0) {
        return Err(format!("token dims {} vs {}", ins[0].dim(1), ins[1].dim(0)));
    }
    Ok(Shape::new(vec![ins[0].dim(0), ins[0].dim(2), ins[1].dim(1)]))
}

fn norm_axis(ins: &[Shape], attrs: &Attrs) -> std::result::Result<usize, String> {
    let rank = ins.first().ok_or("expected input")?.rank();
    let axis = attrs.int_or("axis", rank as i64 - 1);
    if axis < 0 || axis as usize >= rank {
        return Err(format!("axis {axis} out of range for rank {rank}"));
    }
    Ok(axis as usize)
}

/// `layer_norm(x, gamma, beta)`: shape-preserving, params of extent
/// `x.dim(axis)` (axis defaults to the last).
fn shape_layer_norm(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 3 || ins[1].rank() != 1 || ins[2].rank() != 1 {
        return Err("layer_norm expects (x, gamma, beta)".into());
    }
    let axis = norm_axis(ins, attrs)?;
    if ins[1].dim(0) != ins[0].dim(axis) || ins[2].dim(0) != ins[0].dim(axis) {
        return Err("gamma/beta extents must match the normalized axis".into());
    }
    Ok(ins[0].clone())
}

fn shape_layer_norm_xhat(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("layer_norm_xhat expects one input".into());
    }
    norm_axis(ins, attrs)?;
    Ok(ins[0].clone())
}

/// `layer_norm_x_grad(dy, x, gamma) -> dx`.
fn shape_layer_norm_x_grad(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 3 || ins[0] != ins[1] || ins[2].rank() != 1 {
        return Err("layer_norm_x_grad expects (dy, x, gamma) with dy ≡ x".into());
    }
    let axis = norm_axis(ins, attrs)?;
    if ins[2].dim(0) != ins[0].dim(axis) {
        return Err("gamma extent must match the normalized axis".into());
    }
    Ok(ins[0].clone())
}

// ---- TDL descriptions --------------------------------------------------------

fn tdl_proj_heads(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[h, n, k] = Σ_d X[n, d] · W[h, d, k].
    let mut b = DescBuilder::new("proj_heads", &[2, 3]);
    let (h, n, k) = (b.output_var("h"), b.output_var("n"), b.output_var("k"));
    let d = b.reduce_var("d");
    let body = b.input(0, &[n.at(), d.at()]) * b.input(1, &[h.at(), d.at(), k.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_unproj_heads(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[n, d] = Σ_{h,k} C[h, n, k] · W[h, k, d]; reduce:h is the
    // row-parallel output projection.
    let mut b = DescBuilder::new("unproj_heads", &[3, 3]);
    let (n, d) = (b.output_var("n"), b.output_var("d"));
    let (h, k) = (b.reduce_var("h"), b.reduce_var("k"));
    let body = b.input(0, &[h.at(), n.at(), k.at()]) * b.input(1, &[h.at(), k.at(), d.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_proj_heads_grad_x(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // dX[n, d] = Σ_{h,k} dO[h, n, k] · W[h, d, k].
    let mut b = DescBuilder::new("proj_heads_grad_x", &[3, 3]);
    let (n, d) = (b.output_var("n"), b.output_var("d"));
    let (h, k) = (b.reduce_var("h"), b.reduce_var("k"));
    let body = b.input(0, &[h.at(), n.at(), k.at()]) * b.input(1, &[h.at(), d.at(), k.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_proj_heads_grad_w(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // dW[h, d, k] = Σ_n X[n, d] · dO[h, n, k].
    let mut b = DescBuilder::new("proj_heads_grad_w", &[2, 3]);
    let (h, d, k) = (b.output_var("h"), b.output_var("d"), b.output_var("k"));
    let n = b.reduce_var("n");
    let body = b.input(0, &[n.at(), d.at()]) * b.input(1, &[h.at(), n.at(), k.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_unproj_heads_grad_c(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // dC[h, n, k] = Σ_d dY[n, d] · W[h, k, d].
    let mut b = DescBuilder::new("unproj_heads_grad_c", &[2, 3]);
    let (h, n, k) = (b.output_var("h"), b.output_var("n"), b.output_var("k"));
    let d = b.reduce_var("d");
    let body = b.input(0, &[n.at(), d.at()]) * b.input(1, &[h.at(), k.at(), d.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_unproj_heads_grad_w(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // dW[h, k, d] = Σ_n C[h, n, k] · dY[n, d].
    let mut b = DescBuilder::new("unproj_heads_grad_w", &[3, 2]);
    let (h, k, d) = (b.output_var("h"), b.output_var("k"), b.output_var("d"));
    let n = b.reduce_var("n");
    let body = b.input(0, &[h.at(), n.at(), k.at()]) * b.input(1, &[n.at(), d.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

/// Row description shared by the layer-norm family: every non-axis dim is a
/// plain output var, the normalized axis is an opaque function of the whole
/// row (so it never splits), and `extra` names rank-1 parameter inputs
/// indexed by the axis var.
fn tdl_norm_rows(
    name: &str,
    opaque: &str,
    ranks: &[usize],
    rows: &[usize],
    params: &[usize],
    rank: usize,
    axis: usize,
) -> Option<TdlDesc> {
    let mut b = DescBuilder::new(name, ranks);
    let vars: Vec<_> = (0..rank)
        .map(|dd| b.output_var(if dd == axis { "i".to_string() } else { format!("d{dd}") }))
        .collect();
    let coords: Vec<Idx> = (0..rank)
        .map(|dd| if dd == axis { Idx::full() } else { vars[dd].at() })
        .collect();
    let mut args: Vec<_> = rows.iter().map(|&idx| b.input(idx, &coords)).collect();
    for &idx in params {
        args.push(b.input(idx, &[vars[axis].at()]));
    }
    let body = b.opaque(opaque, args, &[vars[axis]]);
    b.build(body).ok()
}

fn tdl_layer_norm(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = norm_axis(ins, attrs).ok()?;
    tdl_norm_rows("layer_norm", "ln_row", &[rank, 1, 1], &[0], &[1, 2], rank, axis)
}

fn tdl_layer_norm_xhat(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = norm_axis(ins, attrs).ok()?;
    tdl_norm_rows("layer_norm_xhat", "ln_xhat_row", &[rank], &[0], &[], rank, axis)
}

fn tdl_layer_norm_x_grad(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = norm_axis(ins, attrs).ok()?;
    tdl_norm_rows(
        "layer_norm_x_grad",
        "ln_x_grad_row",
        &[rank, rank, 1],
        &[0, 1],
        &[2],
        rank,
        axis,
    )
}

fn tdl_softmax_grad(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = norm_axis(ins, attrs).ok()?;
    tdl_norm_rows("softmax_grad", "softmax_grad_row", &[rank, rank], &[0, 1], &[], rank, axis)
}

// ---- Gradients ---------------------------------------------------------------

fn grad_proj_heads(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (x, w) = (ctx.inputs[0], ctx.inputs[1]);
    let dx = ctx.op("proj_heads_grad_x", &[ctx.out_grad, w], Attrs::new())?;
    let dw = ctx.op("proj_heads_grad_w", &[x, ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(dx), Some(dw)])
}

fn grad_unproj_heads(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (c, w) = (ctx.inputs[0], ctx.inputs[1]);
    let dc = ctx.op("unproj_heads_grad_c", &[ctx.out_grad, w], Attrs::new())?;
    let dw = ctx.op("unproj_heads_grad_w", &[c, ctx.out_grad], Attrs::new())?;
    Ok(vec![Some(dc), Some(dw)])
}

fn grad_layer_norm(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (x, gamma) = (ctx.inputs[0], ctx.inputs[1]);
    let rank = ctx.shape(x).rank() as i64;
    let axis = ctx.attrs.int_or("axis", rank - 1);
    let a = Attrs::new().with_int("axis", axis);
    let dx = ctx.op("layer_norm_x_grad", &[ctx.out_grad, x, gamma], a.clone())?;
    let xhat = ctx.op("layer_norm_xhat", &[x], a.clone())?;
    let dgamma = ctx.op("mul_reduce", &[ctx.out_grad, xhat], a.clone())?;
    let dbeta = ctx.op("reduce_to_axis", &[ctx.out_grad], a)?;
    Ok(vec![Some(dx), Some(dgamma), Some(dbeta)])
}

// ---- Flops -------------------------------------------------------------------

fn flops_proj(ins: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    // 2 flops per multiply-accumulate; the contracted volume is whatever the
    // inputs hold beyond the output.
    let macs = (ins[0].volume().max(1) as f64 / out.volume().max(1) as f64).max(1.0)
        * ins[1].volume() as f64;
    2.0 * macs.max(out.volume() as f64)
}

/// Returns the attention/normalization operator definitions.
pub fn defs() -> Vec<OpDef> {
    vec![
        OpDef {
            name: "proj_heads",
            category: OpCategory::Linalg,
            infer_shape: shape_proj_heads,
            tdl: Some(tdl_proj_heads),
            gradient: Some(grad_proj_heads),
            flops: flops_proj,
        },
        OpDef {
            name: "unproj_heads",
            category: OpCategory::Linalg,
            infer_shape: shape_unproj_heads,
            tdl: Some(tdl_unproj_heads),
            gradient: Some(grad_unproj_heads),
            flops: flops_proj,
        },
        OpDef {
            name: "proj_heads_grad_x",
            category: OpCategory::Linalg,
            infer_shape: shape_proj_heads_grad_x,
            tdl: Some(tdl_proj_heads_grad_x),
            gradient: None,
            flops: flops_proj,
        },
        OpDef {
            name: "proj_heads_grad_w",
            category: OpCategory::Linalg,
            infer_shape: shape_proj_heads_grad_w,
            tdl: Some(tdl_proj_heads_grad_w),
            gradient: None,
            flops: flops_proj,
        },
        OpDef {
            name: "unproj_heads_grad_c",
            category: OpCategory::Linalg,
            infer_shape: shape_unproj_heads_grad_c,
            tdl: Some(tdl_unproj_heads_grad_c),
            gradient: None,
            flops: flops_proj,
        },
        OpDef {
            name: "unproj_heads_grad_w",
            category: OpCategory::Linalg,
            infer_shape: shape_unproj_heads_grad_w,
            tdl: Some(tdl_unproj_heads_grad_w),
            gradient: None,
            flops: flops_proj,
        },
        OpDef {
            name: "layer_norm",
            category: OpCategory::Reduction,
            infer_shape: shape_layer_norm,
            tdl: Some(tdl_layer_norm),
            gradient: Some(grad_layer_norm),
            flops: |_, out, _| 8.0 * out.volume() as f64,
        },
        OpDef {
            name: "layer_norm_xhat",
            category: OpCategory::Reduction,
            infer_shape: shape_layer_norm_xhat,
            tdl: Some(tdl_layer_norm_xhat),
            gradient: None,
            flops: |_, out, _| 5.0 * out.volume() as f64,
        },
        OpDef {
            name: "layer_norm_x_grad",
            category: OpCategory::Reduction,
            infer_shape: shape_layer_norm_x_grad,
            tdl: Some(tdl_layer_norm_x_grad),
            gradient: None,
            flops: |_, out, _| 12.0 * out.volume() as f64,
        },
        OpDef {
            name: "softmax_grad",
            category: OpCategory::Reduction,
            infer_shape: shape_softmax_grad,
            tdl: Some(tdl_softmax_grad),
            gradient: None,
            flops: |_, out, _| 4.0 * out.volume() as f64,
        },
    ]
}

/// `softmax_grad(dy, y) -> dx`, both the same shape; `axis` defaults to the
/// last.
fn shape_softmax_grad(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0] != ins[1] {
        return Err("softmax_grad expects two same-shape inputs (dy, y)".into());
    }
    norm_axis(ins, attrs)?;
    Ok(ins[0].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tdl::{discover_strategies, InputRequirement};

    #[test]
    fn proj_heads_shapes() {
        let x = Shape::new(vec![16, 32]);
        let w = Shape::new(vec![4, 32, 8]);
        let out = shape_proj_heads(&[x.clone(), w], &Attrs::new()).unwrap();
        assert_eq!(out.dims(), &[4, 16, 8]);
        let bad = Shape::new(vec![4, 31, 8]);
        assert!(shape_proj_heads(&[x, bad], &Attrs::new()).is_err());
    }

    #[test]
    fn unproj_heads_shapes() {
        let c = Shape::new(vec![4, 16, 8]);
        let w = Shape::new(vec![4, 8, 32]);
        let out = shape_unproj_heads(&[c, w], &Attrs::new()).unwrap();
        assert_eq!(out.dims(), &[16, 32]);
    }

    #[test]
    fn grad_shapes_mirror_forward_operands() {
        let (n, d, h, k) = (16, 32, 4, 8);
        let x = Shape::new(vec![n, d]);
        let wq = Shape::new(vec![h, d, k]);
        let dout = Shape::new(vec![h, n, k]);
        assert_eq!(
            shape_proj_heads_grad_x(&[dout.clone(), wq.clone()], &Attrs::new()).unwrap(),
            x
        );
        assert_eq!(
            shape_proj_heads_grad_w(&[x.clone(), dout.clone()], &Attrs::new()).unwrap(),
            wq
        );
        let wo = Shape::new(vec![h, k, d]);
        let dy = Shape::new(vec![n, d]);
        assert_eq!(
            shape_unproj_heads_grad_c(&[dy.clone(), wo.clone()], &Attrs::new()).unwrap(),
            dout
        );
        assert_eq!(shape_unproj_heads_grad_w(&[dout, dy], &Attrs::new()).unwrap(), wo);
    }

    #[test]
    fn proj_heads_head_split_splits_only_the_weight() {
        let desc = tdl_proj_heads(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        // h, n, k output splits plus reduce:d.
        assert_eq!(s.len(), 4);
        let head = s.iter().find(|st| st.id == "split:h").unwrap();
        assert_eq!(head.inputs[0], InputRequirement::Replicated, "X is replicated");
        assert!(matches!(head.inputs[1], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn unproj_heads_has_row_parallel_reduction_over_heads() {
        let desc = tdl_unproj_heads(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        // n, d splits plus reduce:h and reduce:k.
        assert_eq!(s.len(), 4);
        let red_h = s.iter().find(|st| st.id == "reduce:h").unwrap();
        assert!(red_h.output.is_reduce());
        assert!(matches!(red_h.inputs[0], InputRequirement::Split { dim: 0, .. }));
        assert!(matches!(red_h.inputs[1], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn layer_norm_splits_every_axis_but_the_normalized_one() {
        let ins = [Shape::new(vec![4, 16, 32]), Shape::new(vec![32]), Shape::new(vec![32])];
        let desc = tdl_layer_norm(&ins, &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 2, "only the two batch/token dims split");
        for st in &s {
            assert!(st.id.starts_with("split:d"), "{}", st.id);
            // Params are replicated under batch splits.
            assert_eq!(st.inputs[1], InputRequirement::Replicated);
            assert_eq!(st.inputs[2], InputRequirement::Replicated);
        }
    }

    #[test]
    fn softmax_grad_rank3_splits_batch_and_token_dims() {
        let ins = [Shape::new(vec![4, 16, 16]), Shape::new(vec![4, 16, 16])];
        let desc = tdl_softmax_grad(&ins, &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn layer_norm_shape_validates_params() {
        let x = Shape::new(vec![8, 16]);
        let good = Shape::new(vec![16]);
        let bad = Shape::new(vec![8]);
        assert!(shape_layer_norm(&[x.clone(), good.clone(), good.clone()], &Attrs::new()).is_ok());
        assert!(shape_layer_norm(&[x, good, bad], &Attrs::new()).is_err());
    }
}
