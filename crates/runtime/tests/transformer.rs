//! Differential runtime test for the transformer decoder workload: a full
//! training step (forward, backward, SGD update) of `decoder_block`, sharded
//! across 1/2/4 workers, must reproduce the single-device `Executor::run`.
//!
//! Tolerances: a partitioned reduction (`reduce:*` strategies and `multi_fetch`
//! gathers) re-associates f32 sums, so multi-worker results are compared at
//! 1e-4; one worker performs the identical op sequence and is held to 1e-6.

use std::collections::BTreeMap;

use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::{Executor, Graph, TensorId, TensorKind};
use tofu_models::{decoder_block, DecoderConfig};
use tofu_runtime::run;
use tofu_tensor::Tensor;

fn small_cfg() -> DecoderConfig {
    DecoderConfig { seq: 16, d_model: 32, heads: 4, d_ff: 64, classes: 8, with_updates: true }
}

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

fn shard(
    g: &Graph,
    workers: usize,
) -> (ShardedGraph, Vec<(TensorId, Tensor)>, BTreeMap<TensorId, Tensor>) {
    let plan = partition(g, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(g, &plan, &GenOptions::default()).unwrap();
    assert!(sharded.exact);
    let original = feeds(g);
    let mut base = Executor::new();
    let mut shard_feeds = Vec::new();
    for (t, v) in &original {
        base.feed(*t, v.clone());
        shard_feeds.extend(sharded.scatter(*t, v).unwrap());
    }
    let base_vals = base.run(g).unwrap();
    (sharded, shard_feeds, base_vals)
}

fn check_outputs(
    g: &Graph,
    sharded: &ShardedGraph,
    got: &BTreeMap<TensorId, Tensor>,
    base: &BTreeMap<TensorId, Tensor>,
    tensors: &[TensorId],
    tol: f32,
) {
    for &t in tensors {
        let expect = &base[&t];
        let gathered = sharded.gather(t, expect.shape(), got).unwrap();
        assert!(gathered.allclose(expect, tol), "tensor {} diverged", g.tensor(t).name);
    }
}

#[test]
fn decoder_single_worker_matches_executor() {
    let m = decoder_block(&small_cfg()).unwrap();
    let (sharded, shard_feeds, base) = shard(&m.graph, 1);
    let out = run(&sharded, &shard_feeds).unwrap();
    let check: Vec<TensorId> =
        std::iter::once(m.loss).chain(m.grads.iter().map(|&(_, gw)| gw)).collect();
    check_outputs(&m.graph, &sharded, &out.values, &base, &check, 1e-6);
    assert_eq!(out.trace.workers.len(), 1);
    assert_eq!(out.trace.comm_bytes(), 0, "one worker must not communicate");
}

#[test]
fn decoder_multi_worker_matches_executor() {
    let m = decoder_block(&small_cfg()).unwrap();
    let check: Vec<TensorId> =
        std::iter::once(m.loss).chain(m.grads.iter().map(|&(_, gw)| gw)).collect();
    for workers in [2, 4] {
        let (sharded, shard_feeds, base) = shard(&m.graph, workers);
        let out = run(&sharded, &shard_feeds).unwrap();
        check_outputs(&m.graph, &sharded, &out.values, &base, &check, 1e-4);
        assert_eq!(out.trace.workers.len(), workers);
        assert!(out.trace.comm_bytes() > 0, "{workers} workers must communicate");
    }
}
