#!/usr/bin/env bash
# The repo's CI gate: lint with warnings-as-errors, then the full test suite.
# Usage: scripts/check.sh  (optionally TOFU_SEED=n for a shifted random stream)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
# The fault suite must abort runs in milliseconds; a hang here means the
# fail-fast path regressed, so cap it hard rather than stalling CI.
timeout 300 cargo test -q -p tofu-runtime --test faults
cargo test --workspace -q
# Record the fault-matrix detection latencies and recovery outcomes
# (exits non-zero unless every injected fault recovers bit-identically).
cargo run --release -q -p tofu-bench --bin fault_matrix
