//! Checkpoint commit, discovery/validation, and retention GC.
//!
//! Commit protocol: write every shard blob (ascending tensor order), then
//! write the manifest. Each blob individually goes through the store's
//! atomic-durable `put`, and the manifest is the commit point — recovery
//! ignores shards that no readable, valid manifest names. Validation is
//! total: a checkpoint is used only if its manifest self-checksum, its
//! name/body ordinal agreement, and every named shard's presence, size,
//! checksum and decode all hold. Anything else is skipped with a typed
//! [`RejectReason`] and the scan falls back to the next-newest candidate.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

use tofu_tensor::Tensor;

use crate::codec::{
    decode_shard, encode_shard, fnv1a64, manifest_name, parse_manifest_name, parse_shard_name,
    shard_name, Manifest, ShardEntry, FORMAT_VERSION,
};
use crate::store::BlobStore;

/// A plan-independent checkpoint in transit to or from disk: full
/// (unsharded) tensor values keyed by tensor id, plus the barrier cadence
/// needed to re-derive per-worker resume cuts at any worker width.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableCheckpoint {
    /// Checkpoint ordinal (1-based barrier index).
    pub ckpt: u64,
    /// Barrier cadence in original steps.
    pub every: u64,
    /// Full tensor values, keyed by tensor id.
    pub tensors: BTreeMap<u64, Tensor>,
}

impl DurableCheckpoint {
    /// Total payload bytes across all tensors.
    pub fn bytes(&self) -> u64 {
        self.tensors.values().map(|t| t.shape().bytes()).sum()
    }
}

/// What a completed [`write_checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteStats {
    /// Shard blobs written.
    pub shards: usize,
    /// Total bytes written (shards, plus the manifest when committed).
    pub bytes: u64,
    /// Whether the manifest was written (the checkpoint is committed).
    pub committed: bool,
}

/// Write checkpoint `snap` to `store`: all shards, then — iff `commit` —
/// the manifest that makes them durable. `commit: false` models a process
/// that died between data writes and the commit point.
pub fn write_checkpoint(
    store: &dyn BlobStore,
    snap: &DurableCheckpoint,
    commit: bool,
) -> io::Result<WriteStats> {
    let mut entries = Vec::with_capacity(snap.tensors.len());
    let mut bytes = 0u64;
    for (&tensor, t) in &snap.tensors {
        let blob = encode_shard(tensor, t);
        let file = shard_name(snap.ckpt, tensor);
        entries.push(ShardEntry {
            tensor,
            file: file.clone(),
            bytes: blob.len() as u64,
            checksum: fnv1a64(&blob),
        });
        store.put(&file, &blob)?;
        bytes += blob.len() as u64;
    }
    if !commit {
        return Ok(WriteStats { shards: entries.len(), bytes, committed: false });
    }
    let manifest = Manifest {
        version: FORMAT_VERSION,
        ckpt: snap.ckpt,
        every: snap.every,
        shards: entries,
    }
    .encode();
    bytes += manifest.len() as u64;
    store.put(&manifest_name(snap.ckpt), &manifest)?;
    Ok(WriteStats { shards: snap.tensors.len(), bytes, committed: true })
}

/// Why a checkpoint candidate was skipped during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The manifest blob could not be read from the store.
    Unreadable(String),
    /// The manifest failed its self-checksum or structural validation.
    BadManifest(String),
    /// The ordinal in the manifest body disagrees with the blob name —
    /// a stale or duplicated manifest committed under the wrong name.
    IdMismatch {
        /// Ordinal parsed from the blob name.
        name: u64,
        /// Ordinal recorded inside the manifest body.
        body: u64,
    },
    /// The manifest cadence disagrees with the cadence the run expects.
    WrongCadence {
        /// Cadence the restarting run was configured with.
        want: u64,
        /// Cadence recorded in the manifest.
        got: u64,
    },
    /// A shard named by the manifest is absent.
    MissingShard {
        /// Blob name of the absent shard.
        file: String,
    },
    /// A shard's size differs from the manifest record (torn write).
    SizeMismatch {
        /// Blob name of the shard.
        file: String,
        /// Size the manifest recorded.
        want: u64,
        /// Size actually found.
        got: u64,
    },
    /// A shard's checksum or decode failed (corruption).
    ShardCorrupt {
        /// Blob name of the shard.
        file: String,
        /// The underlying codec failure.
        detail: String,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Unreadable(d) => write!(f, "manifest unreadable: {d}"),
            RejectReason::BadManifest(d) => write!(f, "manifest invalid: {d}"),
            RejectReason::IdMismatch { name, body } => {
                write!(f, "manifest name says checkpoint {name} but body says {body}")
            }
            RejectReason::WrongCadence { want, got } => {
                write!(f, "cadence mismatch: run expects every={want}, manifest has every={got}")
            }
            RejectReason::MissingShard { file } => write!(f, "shard {file} missing"),
            RejectReason::SizeMismatch { file, want, got } => {
                write!(f, "shard {file} is {got} bytes, manifest says {want}")
            }
            RejectReason::ShardCorrupt { file, detail } => {
                write!(f, "shard {file} corrupt: {detail}")
            }
        }
    }
}

/// A skipped checkpoint candidate: which ordinal, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedCheckpoint {
    /// Ordinal parsed from the rejected manifest's name.
    pub ckpt: u64,
    /// Why validation refused it.
    pub reason: RejectReason,
}

/// Outcome of [`recover_latest`].
#[derive(Debug)]
pub struct Recovery {
    /// The newest fully-valid checkpoint, if any survived validation.
    pub snapshot: Option<DurableCheckpoint>,
    /// Newer candidates that were skipped, newest first, each with a typed
    /// reason.
    pub rejected: Vec<RejectedCheckpoint>,
    /// Wall time spent listing and validating.
    pub wall: Duration,
}

fn validate_candidate(
    store: &dyn BlobStore,
    ckpt: u64,
    expected_every: Option<u64>,
) -> Result<DurableCheckpoint, RejectReason> {
    let bytes = match store.get(&manifest_name(ckpt)) {
        Ok(b) => b,
        Err(e) => return Err(RejectReason::Unreadable(e.to_string())),
    };
    let m = Manifest::decode(&bytes).map_err(|e| RejectReason::BadManifest(e.to_string()))?;
    if m.ckpt != ckpt {
        return Err(RejectReason::IdMismatch { name: ckpt, body: m.ckpt });
    }
    if let Some(want) = expected_every {
        if m.every != want {
            return Err(RejectReason::WrongCadence { want, got: m.every });
        }
    }
    let mut tensors = BTreeMap::new();
    for entry in &m.shards {
        let blob = match store.get(&entry.file) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RejectReason::MissingShard { file: entry.file.clone() });
            }
            Err(e) => return Err(RejectReason::Unreadable(e.to_string())),
        };
        if blob.len() as u64 != entry.bytes {
            return Err(RejectReason::SizeMismatch {
                file: entry.file.clone(),
                want: entry.bytes,
                got: blob.len() as u64,
            });
        }
        if fnv1a64(&blob) != entry.checksum {
            return Err(RejectReason::ShardCorrupt {
                file: entry.file.clone(),
                detail: "blob checksum does not match manifest".to_string(),
            });
        }
        let (tensor, t) = decode_shard(&blob).map_err(|e| RejectReason::ShardCorrupt {
            file: entry.file.clone(),
            detail: e.to_string(),
        })?;
        if tensor != entry.tensor {
            return Err(RejectReason::ShardCorrupt {
                file: entry.file.clone(),
                detail: format!("header says tensor {tensor}, manifest says {}", entry.tensor),
            });
        }
        tensors.insert(tensor, t);
    }
    Ok(DurableCheckpoint { ckpt, every: m.every, tensors })
}

/// Find the newest fully-valid checkpoint in `store`.
///
/// Candidates (manifests) are scanned newest-first; each is validated in
/// full and either returned or recorded in [`Recovery::rejected`] with a
/// typed reason. Pass `expected_every` to additionally require the stored
/// cadence to match the restarting run's configuration.
pub fn recover_latest(
    store: &dyn BlobStore,
    expected_every: Option<u64>,
) -> io::Result<Recovery> {
    let start = Instant::now();
    let mut ids: Vec<u64> =
        store.list()?.iter().filter_map(|n| parse_manifest_name(n)).collect();
    ids.sort_unstable();
    let mut rejected = Vec::new();
    let mut snapshot = None;
    for &ckpt in ids.iter().rev() {
        match validate_candidate(store, ckpt, expected_every) {
            Ok(snap) => {
                snapshot = Some(snap);
                break;
            }
            Err(reason) => rejected.push(RejectedCheckpoint { ckpt, reason }),
        }
    }
    Ok(Recovery { snapshot, rejected, wall: start.elapsed() })
}

/// Delete all but the newest `retain` committed checkpoints, plus any
/// orphan shards older than the oldest retained one. Manifests are deleted
/// before their shards so a crash mid-GC can only leave orphan shards
/// (harmless), never a manifest whose shards are gone.
///
/// Returns the number of blobs removed.
pub fn gc(store: &dyn BlobStore, retain: usize) -> io::Result<usize> {
    let names = store.list()?;
    let mut ids: Vec<u64> = names.iter().filter_map(|n| parse_manifest_name(n)).collect();
    ids.sort_unstable();
    let kept: Vec<u64> = ids.iter().rev().take(retain.max(1)).copied().collect();
    let oldest_kept = kept.last().copied().unwrap_or(0);
    let mut removed = 0;
    for &ckpt in &ids {
        if !kept.contains(&ckpt) {
            store.delete(&manifest_name(ckpt))?;
            removed += 1;
        }
    }
    for name in &names {
        if let Some(ckpt) = parse_shard_name(name) {
            if !kept.contains(&ckpt) && ckpt < oldest_kept {
                store.delete(name)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}
