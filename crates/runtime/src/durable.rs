//! Durable checkpoints: whole-process crash recovery from disk.
//!
//! The in-memory recovery ladder (retry → elastic reshard) dies with the
//! coordinating process: every consistent checkpoint lives in the
//! [`CheckpointStore`]'s heap. This module persists checkpoints through
//! [`tofu_durable`] the moment they become consistent, and
//! [`run_with_durable_recovery`] closes the loop — a simulated
//! whole-process crash drops *all* in-memory state, then a fresh runtime:
//!
//! 1. **Discovers** the newest *valid* checkpoint on disk. Every candidate
//!    manifest is validated in full (self-checksum, name/body ordinal
//!    agreement, per-shard presence + size + checksum + decode); corrupt or
//!    torn candidates are skipped with a typed
//!    [`RejectReason`](tofu_durable::RejectReason), never silently used.
//! 2. **Reshards** it onto the current fleet. Durable checkpoints store
//!    *full* tensors keyed by original ids — plan-independent, exactly like
//!    the elastic path's [`FullSnapshot`] — so the restart width may differ
//!    from the width that wrote the checkpoint.
//! 3. **Resumes** at the checkpoint barrier, bit-identical to an
//!    undisturbed run resumed from the same cut, while continuing to
//!    persist and GC later checkpoints.
//!
//! Persistence rides the [`CheckpointSink`] hook: the worker whose barrier
//! record makes checkpoint `k` consistent commits it (shards first, then
//! the manifest — the commit point), then prunes superseded checkpoints
//! down to the retention budget. Disk faults from
//! [`FaultPlan::disk`](crate::FaultPlan) are injected into those writes via
//! [`FaultyStore`], deterministic and one-shot like every other injected
//! fault.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tofu_core::{generate, partition_cached, GenOptions, PartitionOptions, SearchCaches, ShardedGraph};
use tofu_durable::{
    gc, recover_latest, write_checkpoint, BlobStore, DurableCheckpoint, FaultyStore,
    RejectedCheckpoint,
};
use tofu_graph::{Graph, TensorId};
use tofu_obs::{Collector, Track};
use tofu_tensor::Tensor;

use crate::checkpoint::{BarrierUnit, CheckpointSink, CheckpointStore};
use crate::error::{RunFailure, RuntimeError};
use crate::fault::FaultState;
use crate::reshard::{assemble_snapshot, scatter_snapshot, FullSnapshot};
use crate::{run_attempt, Attempt, Result, RunOptions, RunOutput};

/// Where [`run_with_durable_recovery`] simulates the whole-process crash,
/// relative to the durable commit of a chosen checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die while persisting checkpoint `k`: shard files hit the disk but
    /// the manifest — the commit point — never does. Recovery must fall
    /// back to checkpoint `k - 1` (or scratch) and ignore the orphans.
    BeforeCommit(usize),
    /// Die right after checkpoint `k`'s manifest commits (before GC runs).
    /// Recovery must find `k` valid and resume from it.
    AfterCommit(usize),
}

impl CrashPoint {
    fn ckpt(&self) -> usize {
        match *self {
            CrashPoint::BeforeCommit(k) | CrashPoint::AfterCommit(k) => k,
        }
    }
}

/// Configuration of [`run_with_durable_recovery`].
pub struct DurableOptions {
    /// Where checkpoints are persisted. [`DirStore`](tofu_durable::DirStore)
    /// for a real directory, [`MemStore`](tofu_durable::MemStore) for tests.
    pub store: Arc<dyn BlobStore>,
    /// How many committed checkpoints to keep; older ones are GCed after
    /// each commit. Clamped to at least 1.
    pub retain: usize,
    /// Simulated whole-process crash. `None` runs straight through (still
    /// persisting every checkpoint).
    pub crash: Option<CrashPoint>,
    /// Worker count of the restarted process; `None` restarts at the
    /// original width. The checkpoint reshards either way.
    pub restart_workers: Option<usize>,
}

impl DurableOptions {
    /// Persist to `store` with default retention (2), no simulated crash.
    pub fn new(store: Arc<dyn BlobStore>) -> DurableOptions {
        DurableOptions { store, retain: 2, crash: None, restart_workers: None }
    }
}

impl std::fmt::Debug for DurableOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableOptions")
            .field("retain", &self.retain)
            .field("crash", &self.crash)
            .field("restart_workers", &self.restart_workers)
            .finish_non_exhaustive()
    }
}

/// What a durable run (and its optional crash-restart) did.
#[derive(Debug)]
pub struct DurableReport {
    /// The final (post-restart) run's output, keyed by the restart plan's
    /// tensor ids.
    pub output: RunOutput,
    /// The sharded graph of the restart plan — gather originals with
    /// [`ShardedGraph::gather`] or
    /// [`gather_shards`](crate::gather_shards), and use it to build the
    /// bit-identity baseline via
    /// [`resume_from_snapshot`](crate::resume_from_snapshot).
    pub sharded: ShardedGraph,
    /// Worker count of the restarted (final) run.
    pub width: usize,
    /// Post-mortem of the simulated crash, when one was configured.
    pub crashed: Option<RunFailure>,
    /// Slowest peer abort-detection latency of the crash.
    pub detection: Option<Duration>,
    /// Checkpoint the restart resumed from (`None` = restarted from
    /// scratch: no valid checkpoint survived on disk).
    pub resumed_from: Option<usize>,
    /// The validated snapshot the restart resumed from, for constructing
    /// bit-identity baselines at the restart width.
    pub snapshot: Option<FullSnapshot>,
    /// Checkpoint candidates recovery rejected, newest first, each with its
    /// typed reason.
    pub rejected: Vec<RejectedCheckpoint>,
    /// Checkpoints committed across both incarnations.
    pub written: usize,
    /// Bytes written across both incarnations (shards + manifests).
    pub written_bytes: u64,
    /// Blobs removed by retention GC.
    pub gc_removed: usize,
    /// Total wall time spent in durable commits.
    pub write_wall: Duration,
    /// Wall time of recovery discovery + validation.
    pub validate_wall: Duration,
    /// Wall time resharding the recovered snapshot onto the restart plan.
    pub restore_wall: Duration,
    /// Bytes of full-tensor snapshot the restore resharded.
    pub restore_bytes: u64,
}

/// The [`CheckpointSink`] that makes checkpoints durable: assembles the
/// consistent barrier into a plan-independent snapshot, commits it (shards
/// first, manifest last), then GCs superseded checkpoints. One instance per
/// process incarnation; `floor` dedups persists (checkpoints become
/// consistent in ascending order, and a restart must not rewrite the
/// checkpoint it resumed from).
struct Persister {
    store: Arc<FaultyStore>,
    every: usize,
    retain: usize,
    /// Simulated crash, fired at most once.
    crash: Option<CrashPoint>,
    crash_fired: AtomicBool,
    /// Highest checkpoint already persisted (persists are skipped at or
    /// below it).
    floor: AtomicUsize,
    written: AtomicUsize,
    bytes: AtomicU64,
    gc_removed: AtomicUsize,
    write_us: AtomicU64,
    obs: Option<Collector>,
    /// Serializes commits: concurrent workers can complete different
    /// barriers back to back, and shard/manifest write order is the
    /// correctness argument.
    io: Mutex<()>,
}

impl Persister {
    fn new(
        store: Arc<FaultyStore>,
        every: usize,
        retain: usize,
        crash: Option<CrashPoint>,
        floor: usize,
        obs: Option<Collector>,
    ) -> Persister {
        Persister {
            store,
            every,
            retain: retain.max(1),
            crash,
            crash_fired: AtomicBool::new(false),
            floor: AtomicUsize::new(floor),
            written: AtomicUsize::new(0),
            bytes: AtomicU64::new(0),
            gc_removed: AtomicUsize::new(0),
            write_us: AtomicU64::new(0),
            obs,
            io: Mutex::new(()),
        }
    }

    fn write_wall(&self) -> Duration {
        Duration::from_micros(self.write_us.load(Ordering::SeqCst))
    }
}

fn to_durable(snap: &FullSnapshot) -> DurableCheckpoint {
    DurableCheckpoint {
        ckpt: snap.ckpt as u64,
        every: snap.every as u64,
        tensors: snap.tensors.iter().map(|(t, v)| (t.0 as u64, v.clone())).collect(),
    }
}

fn from_durable(d: DurableCheckpoint) -> FullSnapshot {
    FullSnapshot {
        ckpt: d.ckpt as usize,
        every: d.every as usize,
        tensors: d.tensors.into_iter().map(|(id, t)| (TensorId(id as usize), t)).collect(),
    }
}

impl CheckpointSink for Persister {
    fn on_consistent(
        &self,
        sharded: &ShardedGraph,
        worker: usize,
        ckpt: usize,
        values: &[std::collections::BTreeMap<TensorId, Arc<Tensor>>],
    ) -> Result<()> {
        let _serial = self.io.lock();
        if ckpt <= self.floor.load(Ordering::SeqCst) {
            return Ok(());
        }
        let snap = assemble_snapshot(sharded, ckpt, values, self.every)?;
        let durable = to_durable(&snap);
        let t0 = Instant::now();
        let obs_t0 = self.obs.as_ref().map(|c| c.now_us()).unwrap_or(0.0);
        let crash_here = |point: CrashPoint| {
            self.crash == Some(point) && !self.crash_fired.swap(true, Ordering::SeqCst)
        };
        if crash_here(CrashPoint::BeforeCommit(ckpt)) {
            // The doomed process got its shard files out but died before
            // the manifest — the commit point — existed.
            write_checkpoint(&*self.store, &durable, false)
                .map_err(|e| RuntimeError::Durable { worker, detail: e.to_string() })?;
            return Err(RuntimeError::Injected {
                worker,
                detail: format!(
                    "simulated process crash before durable commit of checkpoint {ckpt}"
                ),
            });
        }
        let stats = write_checkpoint(&*self.store, &durable, true)
            .map_err(|e| RuntimeError::Durable { worker, detail: e.to_string() })?;
        self.floor.store(ckpt, Ordering::SeqCst);
        self.written.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(stats.bytes, Ordering::SeqCst);
        self.write_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::SeqCst);
        if let Some(c) = &self.obs {
            c.complete(
                Track::control(),
                "durable",
                &format!("commit checkpoint {ckpt}"),
                obs_t0,
                c.now_us(),
            );
            c.add_total("ckpt/written", 1.0);
            c.add_total("ckpt/bytes", stats.bytes as f64);
        }
        if crash_here(CrashPoint::AfterCommit(ckpt)) {
            // Committed, but the process died before GC could run: older
            // manifests survive as stale-but-valid fallbacks.
            return Err(RuntimeError::Injected {
                worker,
                detail: format!(
                    "simulated process crash after durable commit of checkpoint {ckpt}"
                ),
            });
        }
        let removed = gc(&*self.store, self.retain)
            .map_err(|e| RuntimeError::Durable { worker, detail: e.to_string() })?;
        if removed > 0 {
            self.gc_removed.fetch_add(removed, Ordering::SeqCst);
            if let Some(c) = &self.obs {
                c.add_total("ckpt/gc", removed as f64);
            }
        }
        Ok(())
    }
}

/// Partitions `g` for exactly `workers` workers and lowers the plan.
fn plan_at(
    g: &Graph,
    base: &PartitionOptions,
    workers: usize,
    caches: &mut SearchCaches,
    obs: Option<&Collector>,
) -> Result<ShardedGraph> {
    let plan = partition_cached(g, &PartitionOptions { workers, ..*base }, caches, obs)?;
    Ok(generate(g, &plan, &GenOptions::default())?)
}

fn scatter_feeds(
    sharded: &ShardedGraph,
    feeds: &[(TensorId, Tensor)],
) -> Result<Vec<(TensorId, Tensor)>> {
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds {
        shard_feeds.extend(sharded.scatter(*t, v)?);
    }
    Ok(shard_feeds)
}

/// Runs `g` with every consistent checkpoint persisted durably, optionally
/// simulating a whole-process crash and recovering from disk.
///
/// Takes the **original** graph and full-tensor feeds (like
/// [`run_with_elastic_recovery`](crate::run_with_elastic_recovery)):
/// partitioning and feed scattering are done per incarnation, because the
/// restarted process may run at a different width
/// ([`DurableOptions::restart_workers`]) than the one that crashed.
///
/// With a [`CrashPoint`] configured, the first incarnation *must* die there
/// (a crash point past the last barrier is an [`RuntimeError::InvalidOptions`]
/// — the run would complete instead of crashing). All of its in-memory
/// state — checkpoint store, fault state, values — is dropped; only the
/// blob store carries over, exactly like a real process death. The fresh
/// incarnation discovers the newest valid checkpoint ([`recover_latest`]),
/// reshards it onto the restart plan, resumes, and keeps persisting.
///
/// Disk faults in [`FaultPlan::disk`](crate::FaultPlan) corrupt the doomed
/// incarnation's writes; recovery detects each corruption during validation
/// and reports it in [`DurableReport::rejected`] with a typed reason —
/// falling back to an older checkpoint (or scratch), never resuming from
/// corrupt bytes.
pub fn run_with_durable_recovery(
    g: &Graph,
    feeds: &[(TensorId, Tensor)],
    part_opts: &PartitionOptions,
    opts: &RunOptions,
    durable: &DurableOptions,
    caches: &mut SearchCaches,
) -> Result<DurableReport> {
    let invalid = |m: &str| Err(RuntimeError::InvalidOptions(m.into()));
    if part_opts.workers == 0 {
        return invalid("cannot run on zero workers");
    }
    let Some(cp) = opts.checkpoint else {
        return invalid(
            "durable recovery persists checkpoint barriers; set a \
             CheckpointPolicy::every_original cadence",
        );
    };
    if cp.every == 0 {
        return invalid("checkpoint interval must be positive");
    }
    if cp.unit != BarrierUnit::OriginalSteps {
        return invalid(
            "durable checkpoints reshard across plans; use the plan-independent barriers of \
             CheckpointPolicy::every_original",
        );
    }
    if !opts.churn.is_empty() {
        return invalid(
            "churn plans reshape the fleet mid-run; durable recovery restarts whole processes — \
             use run_with_elastic_recovery for churn",
        );
    }
    if durable.restart_workers == Some(0) {
        return invalid("cannot restart on zero workers");
    }

    let obs = opts.collector.clone();
    // Disk faults are consumed here, by the store wrapper; the in-memory
    // run must not see them (plain validation rejects a non-empty plan).
    let mut run_opts = opts.clone();
    let disk = std::mem::take(&mut run_opts.faults.disk);
    let store = Arc::new(FaultyStore::new(durable.store.clone(), disk));

    let mut crashed: Option<RunFailure> = None;
    let mut detection = None;
    let mut written = 0usize;
    let mut written_bytes = 0u64;
    let mut gc_removed = 0usize;
    let mut write_wall = Duration::ZERO;

    if let Some(crash) = durable.crash {
        let sharded = plan_at(g, part_opts, part_opts.workers, caches, obs.as_ref())?;
        crate::validate(&sharded, &run_opts)?;
        let shard_feeds = scatter_feeds(&sharded, feeds)?;
        let persister = Arc::new(Persister::new(
            store.clone(),
            cp.every,
            durable.retain,
            Some(crash),
            0,
            obs.clone(),
        ));
        let faults = FaultState::new(&run_opts.faults);
        let cell = Mutex::new(CheckpointStore::with_sink(persister.clone()));
        let device_map: Vec<usize> = (0..sharded.workers).collect();
        let outcome =
            run_attempt(&sharded, &shard_feeds, &run_opts, &faults, &cell, None, &device_map, None);
        written += persister.written.load(Ordering::SeqCst);
        written_bytes += persister.bytes.load(Ordering::SeqCst);
        gc_removed += persister.gc_removed.load(Ordering::SeqCst);
        write_wall += persister.write_wall();
        match outcome {
            Err(RuntimeError::Failed(f)) => {
                detection = f.max_detection();
                if let Some(c) = &obs {
                    c.instant(
                        Track::control(),
                        "durable",
                        &format!("process crashed: {}", f.cause),
                    );
                }
                crashed = Some(*f);
            }
            Ok(_) => {
                return Err(RuntimeError::InvalidOptions(format!(
                    "the simulated crash point (checkpoint {}) was never reached: the run \
                     completed — move the crash to an earlier barrier",
                    crash.ckpt()
                )));
            }
            Err(e) => return Err(e),
        }
        // Whole-process crash: `cell` (every in-memory checkpoint), the
        // fault state and the persister drop here. Only `store` survives.
    }

    // ===== fresh process =====
    let t_validate = Instant::now();
    let obs_t0 = obs.as_ref().map(|c| c.now_us()).unwrap_or(0.0);
    let recovery = recover_latest(&*store, Some(cp.every as u64))
        .map_err(|e| RuntimeError::Durable { worker: usize::MAX, detail: e.to_string() })?;
    let validate_wall = t_validate.elapsed();
    if let Some(c) = &obs {
        for r in &recovery.rejected {
            c.add_total("ckpt/rejected", 1.0);
            c.instant(
                Track::control(),
                "durable",
                &format!("rejected checkpoint {}: {}", r.ckpt, r.reason),
            );
        }
        c.complete(Track::control(), "durable", "discover newest valid checkpoint", obs_t0, c.now_us());
    }
    let snapshot = recovery.snapshot.map(from_durable);
    let resumed_from = snapshot.as_ref().map(|s| s.ckpt);

    let width = durable.restart_workers.unwrap_or(part_opts.workers);
    let sharded = plan_at(g, part_opts, width, caches, obs.as_ref())?;
    crate::validate(&sharded, &run_opts)?;
    let persister = Arc::new(Persister::new(
        store.clone(),
        cp.every,
        durable.retain,
        None,
        resumed_from.unwrap_or(0),
        obs.clone(),
    ));
    let faults = FaultState::new(&run_opts.faults);
    let cell = Mutex::new(CheckpointStore::with_sink(persister.clone()));
    let device_map: Vec<usize> = (0..sharded.workers).collect();

    let t_restore = Instant::now();
    let (resume, restore_bytes) = match &snapshot {
        Some(snap) => (Some(scatter_snapshot(snap, &sharded)?), snap.bytes()),
        None => (None, 0),
    };
    let restore_wall = t_restore.elapsed();
    if let Some(c) = &obs {
        let what = match resumed_from {
            Some(k) => format!("restart at width {width}: resume from durable checkpoint {k}"),
            None => format!("restart at width {width}: no valid checkpoint, from scratch"),
        };
        c.instant(Track::control(), "durable", &what);
    }
    let shard_feeds =
        if resume.is_some() { Vec::new() } else { scatter_feeds(&sharded, feeds)? };
    let output = match run_attempt(
        &sharded,
        &shard_feeds,
        &run_opts,
        &faults,
        &cell,
        resume.as_ref(),
        &device_map,
        None,
    )? {
        Attempt::Done(out) => out,
        Attempt::Yielded { .. } => {
            return Err(RuntimeError::Internal("attempt yielded without a yield barrier".into()));
        }
    };
    written += persister.written.load(Ordering::SeqCst);
    written_bytes += persister.bytes.load(Ordering::SeqCst);
    gc_removed += persister.gc_removed.load(Ordering::SeqCst);
    write_wall += persister.write_wall();

    Ok(DurableReport {
        output,
        sharded,
        width,
        crashed,
        detection,
        resumed_from,
        snapshot,
        rejected: recovery.rejected,
        written,
        written_bytes,
        gc_removed,
        write_wall,
        validate_wall,
        restore_wall,
        restore_bytes,
    })
}
