//! Fig. 8: WResNet training throughput (samples/sec) on 8 simulated GPUs
//! for Ideal, SmallBatch, Swapping and Tofu, with the paper's measured
//! numbers beside each bar. "OOM" marks configurations that exceed the
//! 12 GB device memory, as in the paper.

use tofu_bench::{
    batch_candidates, bench_report, fmt_outcome, fmt_paper, outcome_json, paper_json, rule,
    write_report, wresnet_builder, Json,
};
use tofu_core::baselines::Algorithm;
use tofu_sim::{ideal, small_batch, swap, Machine};

/// Paper Fig. 8 absolute throughputs (samples/sec); `None` = OOM.
/// Rows: (layers, [per width 4, 6, 8, 10] x [ideal, smallbatch, swap, tofu]).
type Row = [[Option<f64>; 4]; 4];

const PAPER: [(usize, Row); 3] = [
    (
        50,
        [
            [Some(47.0), Some(46.0), Some(28.0), Some(41.0)],
            [Some(18.0), Some(16.0), Some(12.0), Some(17.0)],
            [Some(10.0), None, Some(5.9), Some(9.3)],
            [Some(6.4), None, Some(4.0), Some(6.0)],
        ],
    ),
    (
        101,
        [
            [Some(27.0), Some(23.0), Some(11.0), Some(20.0)],
            [Some(9.4), None, Some(5.4), Some(8.7)],
            [Some(5.3), None, Some(3.2), Some(4.8)],
            [Some(3.3), None, Some(2.1), Some(3.1)],
        ],
    ),
    (
        152,
        [
            [Some(19.0), None, Some(7.7), Some(11.0)],
            [Some(6.5), None, Some(3.4), Some(5.4)],
            [Some(3.6), None, Some(2.2), Some(2.7)],
            [Some(2.3), None, Some(1.6), Some(1.9)],
        ],
    ),
];

fn main() {
    let machine = Machine::p2_8xlarge();
    let quick = std::env::args().any(|a| a == "--quick");
    let widths: &[usize] = if quick { &[4] } else { &[4, 6, 8, 10] };
    let depths: &[(usize, Row)] = if quick { &PAPER[..1] } else { &PAPER };
    // The ideal baseline saturates with a large batch; the others sweep.
    let candidates = batch_candidates();
    let wres_candidates: Vec<usize> =
        candidates.iter().copied().filter(|&b| b <= 128).collect();

    let mut results: Vec<Json> = Vec::new();
    for (layers, paper) in depths {
        println!("\nFig. 8: Wide ResNet-{layers} throughput (samples/sec), ours | paper");
        println!(
            "{:<6} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            "W", "Ideal", "(paper)", "SmallB", "(paper)", "Swap", "(paper)", "Tofu", "(paper)"
        );
        rule(96);
        for (wi, &width) in widths.iter().enumerate() {
            let build = wresnet_builder(*layers, width);
            let ideal_out = ideal(&build, 128, &machine);
            let sb_out = small_batch(&build, &wres_candidates, &machine);
            let swap_out = swap(&build, &wres_candidates, &machine);
            let (tofu_out, _) = tofu_bench::partitioned_sweep(
                &build,
                Algorithm::Tofu,
                &wres_candidates,
                &machine,
            );
            println!(
                "{:<6} {} {} | {} {} | {} {} | {} {}",
                width,
                fmt_outcome(&ideal_out),
                fmt_paper(paper[wi][0]),
                fmt_outcome(&sb_out),
                fmt_paper(paper[wi][1]),
                fmt_outcome(&swap_out),
                fmt_paper(paper[wi][2]),
                fmt_outcome(&tofu_out),
                fmt_paper(paper[wi][3]),
            );
            results.push(Json::obj(vec![
                ("layers", Json::from(*layers)),
                ("width", Json::from(width)),
                ("ideal", outcome_json(&ideal_out)),
                ("small_batch", outcome_json(&sb_out)),
                ("swap", outcome_json(&swap_out)),
                ("tofu", outcome_json(&tofu_out)),
                (
                    "paper",
                    Json::Arr(paper[wi].iter().map(|&v| paper_json(v)).collect()),
                ),
            ]));
        }
    }
    write_report(
        "BENCH_fig8.json",
        &bench_report("fig8", vec![("quick", Json::Bool(quick))], results),
    );
    println!(
        "\nShape checks: Tofu should be within 60-98% of Ideal, beat Swap everywhere,\n\
         and lose only to SmallBatch on WResNet-50-4/101-4 (convolutions stay\n\
         efficient at small batches); SmallBatch must OOM on the larger configs."
    );
}
