//! Offline stand-in for `crossbeam` 0.8 (see `vendor/README.md`).
//!
//! Implements the [`channel`] module's MPMC channels over
//! `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam where this
//! workspace relies on them: cloneable senders *and* receivers,
//! disconnection when the last peer of either side drops, and blocking
//! `send`/`recv` (bounded channels block senders at capacity).

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        // Signals receivers (data or sender-disconnect) and senders
        // (space or receiver-disconnect) alike.
        cond: Condvar,
        capacity: Option<usize>,
    }

    /// Error of [`Sender::send`]: every receiver disconnected. Carries the
    /// unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error of [`Receiver::recv`]: channel empty and every sender
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and every sender disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and every sender disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloneable.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel buffering at most `cap` messages (a zero capacity
    /// is rounded up to one slot; true rendezvous is not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cond: Condvar::new(),
            capacity,
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.cond.wait(st).unwrap();
                    }
                    _ => {
                        st.queue.push_back(value);
                        self.0.cond.notify_all();
                        return Ok(());
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.cond.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.cond.wait(st).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.cond.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.0.cond.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.0.cond.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.cond.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.cond.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = channel::unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = channel::unbounded::<usize>();
        let mut producers = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 50 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
