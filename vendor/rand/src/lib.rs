//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over half-open
//! numeric ranges. The generator is SplitMix64 — deterministic and
//! well-distributed, but a *different stream* than upstream `StdRng`
//! (ChaCha12) for the same seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` part of rand's trait).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        // 24-bit mantissa so `u < 1.0` exactly.
        let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f32> = (0..8).map(|_| a.gen_range(-1.0f32..1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.gen_range(-1.0f32..1.0)).collect();
        let vc: Vec<f32> = (0..8).map(|_| c.gen_range(-1.0f32..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = r.gen_range(2usize..9);
            assert!((2..9).contains(&i));
        }
    }
}
