//! Fault matrix sweep: injects every fault class into a 4-worker MLP run
//! and records detection latency (fault trip → last peer observing the
//! abort) and recovery outcome, written to `BENCH_faults.json` so the
//! fail-fast properties have a tracked trajectory.
//!
//! Matrix:
//! - kill each worker at an early / mid / late schedule position,
//! - drop / duplicate / corrupt one message on the busiest link,
//! - force one worker's buffer pool over budget.
//!
//! Every faulted run is then retried through `run_with_recovery` with
//! checkpoints every quarter of the global schedule; `recovered_exact`
//! records whether the retry reproduced the undisturbed output bit for bit.
//!
//! Two whole-process crash-restart rows ride along: the process dies just
//! before / just after a durable commit, and a fresh incarnation recovers
//! from disk (`run_with_durable_recovery`); their `restore_us` records the
//! time to reshard the recovered checkpoint onto the restart plan.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use std::sync::Arc;

use tofu_bench::{bench_report, feeds, write_report, Json};
use tofu_core::{generate, partition, GenOptions, PartitionOptions, SearchCaches, ShardedGraph};
use tofu_graph::TensorId;
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    resume_from_snapshot, run_with_durable_recovery, run_with_options, run_with_recovery,
    CheckpointPolicy, CrashPoint, DirStore, DurableOptions, Fault, FaultPlan, MessageFault,
    RecoveryOptions, RunOptions, RuntimeError,
};
use tofu_tensor::Tensor;

fn bit_identical(a: &BTreeMap<TensorId, Tensor>, b: &BTreeMap<TensorId, Tensor>) -> bool {
    a.len() == b.len()
        && a.iter().all(|(t, va)| {
            b.get(t).is_some_and(|vb| {
                va.data().iter().map(|x| x.to_bits()).eq(vb.data().iter().map(|x| x.to_bits()))
            })
        })
}

struct Row {
    fault: String,
    cause: &'static str,
    blamed_worker: usize,
    detection_max_us: u128,
    detection_peers: usize,
    abort_wall_us: u128,
    /// Reshard-the-recovered-checkpoint wall time; zero for in-memory rows.
    restore_us: u128,
    recovered_exact: bool,
    recovery_attempts: usize,
}

fn cause_label(e: &RuntimeError) -> &'static str {
    match e {
        RuntimeError::Injected { .. } => "injected",
        RuntimeError::Comm { .. } => "comm",
        RuntimeError::Pool { .. } => "pool",
        RuntimeError::WorkerPanic { .. } => "panic",
        RuntimeError::Exec { .. } => "exec",
        RuntimeError::MissingFeed { .. } => "missing-feed",
        _ => "other",
    }
}

fn main() {
    let workers = 4;
    let model = mlp(&MlpConfig { batch: 16, dims: vec![64, 64], classes: 16, with_updates: true })
        .expect("mlp builds");
    let g = &model.graph;
    let plan =
        partition(g, &PartitionOptions { workers, ..Default::default() }).expect("partition");
    let sharded: ShardedGraph = generate(g, &plan, &GenOptions::default()).expect("generate");
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        shard_feeds.extend(sharded.scatter(t, &v).expect("scatter"));
    }
    let baseline =
        run_with_options(&sharded, &shard_feeds, &RunOptions::default()).expect("healthy run");
    let busiest = baseline
        .trace
        .links
        .iter()
        .max_by_key(|l| l.messages)
        .expect("multi-worker run communicates");
    let every = (sharded.graph.num_nodes() / 4).max(1);

    let mut cases: Vec<(String, Fault)> = Vec::new();
    for w in 0..workers {
        let len = sharded.worker_schedule(w).len();
        for (tag, pos) in [("early", 0), ("mid", len / 2), ("late", len - 1)] {
            cases.push((format!("kill w{w} {tag}"), Fault::Kill { worker: w, pos }));
        }
    }
    for (tag, action) in [
        ("drop", MessageFault::Drop),
        ("duplicate", MessageFault::Duplicate),
        ("corrupt", MessageFault::Corrupt),
    ] {
        cases.push((
            format!("{tag} msg 0 on {}->{}", busiest.src, busiest.dst),
            Fault::Message { src: busiest.src, dst: busiest.dst, index: 0, action },
        ));
    }
    let mid1 = sharded.worker_schedule(1).len() / 2;
    cases.push(("pool over budget w1".to_string(), Fault::PoolOverBudget { worker: 1, pos: mid1 }));

    println!(
        "{:<28} {:>8} {:>7} {:>12} {:>6} {:>12} {:>9} {:>9}",
        "fault", "cause", "blamed", "detect µs", "peers", "abort µs", "recovered", "attempts"
    );
    println!("{}", "-".repeat(100));
    let mut rows: Vec<Row> = Vec::new();
    for (label, fault) in cases {
        let opts = RunOptions {
            faults: FaultPlan::single(fault),
            checkpoint: Some(CheckpointPolicy::every(every)),
            recv_timeout: Duration::from_secs(5),
            ..Default::default()
        };
        let t0 = Instant::now();
        let failure = match run_with_options(&sharded, &shard_feeds, &opts) {
            Err(RuntimeError::Failed(f)) => *f,
            Ok(_) => {
                eprintln!("{label}: fault was not detected — skipping row");
                continue;
            }
            Err(e) => {
                eprintln!("{label}: unexpected error {e} — skipping row");
                continue;
            }
        };
        let abort_wall = t0.elapsed();
        let detection_max =
            failure.detection.iter().map(|&(_, d)| d).max().unwrap_or(Duration::ZERO);
        let report = run_with_recovery(
            &sharded,
            &shard_feeds,
            &opts,
            &RecoveryOptions { max_attempts: 3, backoff: Duration::from_millis(1), ..Default::default() },
        );
        let (recovered_exact, attempts) = match &report {
            Ok(r) => (bit_identical(&r.output.values, &baseline.values), r.attempts),
            Err(_) => (false, 0),
        };
        let row = Row {
            fault: label,
            cause: cause_label(&failure.cause),
            blamed_worker: failure.worker,
            detection_max_us: detection_max.as_micros(),
            detection_peers: failure.detection.len(),
            abort_wall_us: abort_wall.as_micros(),
            restore_us: 0,
            recovered_exact,
            recovery_attempts: attempts,
        };
        println!(
            "{:<28} {:>8} {:>7} {:>12} {:>6} {:>12} {:>9} {:>9}",
            row.fault,
            row.cause,
            row.blamed_worker,
            row.detection_max_us,
            row.detection_peers,
            row.abort_wall_us,
            row.recovered_exact,
            row.recovery_attempts
        );
        rows.push(row);
    }

    // Whole-process crash-restart rows: the process dies around a durable
    // commit of checkpoint 2 and a fresh incarnation recovers from disk.
    let full_feeds = feeds(g);
    let every_orig = (g.num_nodes() / 4).max(1);
    let part = PartitionOptions { workers, ..Default::default() };
    let mut caches = SearchCaches::default();
    let root =
        std::env::temp_dir().join(format!("tofu-fault-matrix-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (label, crash) in [
        ("process crash before durable commit 2", CrashPoint::BeforeCommit(2)),
        ("process crash after durable commit 2", CrashPoint::AfterCommit(2)),
    ] {
        let dir = root.join(label.replace(' ', "-"));
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::every_original(every_orig)),
            ..Default::default()
        };
        let durable = DurableOptions {
            crash: Some(crash),
            ..DurableOptions::new(Arc::new(DirStore::open(&dir).expect("open DirStore")))
        };
        let t0 = Instant::now();
        let report = run_with_durable_recovery(g, &full_feeds, &part, &opts, &durable, &mut caches)
            .unwrap_or_else(|e| panic!("{label}: durable run failed: {e}"));
        let wall = t0.elapsed();
        let failure = report.crashed.as_ref().expect("the first incarnation crashed");
        let durable_baseline = match &report.snapshot {
            Some(snap) => {
                resume_from_snapshot(&report.sharded, &[], &RunOptions::default(), snap)
                    .expect("baseline resume")
                    .values
            }
            None => {
                let mut sf = Vec::new();
                for (t, v) in &full_feeds {
                    sf.extend(report.sharded.scatter(*t, v).expect("scatter"));
                }
                run_with_options(&report.sharded, &sf, &RunOptions::default())
                    .expect("baseline run")
                    .values
            }
        };
        let row = Row {
            fault: label.to_string(),
            cause: cause_label(&failure.cause),
            blamed_worker: failure.worker,
            detection_max_us: report.detection.unwrap_or_default().as_micros(),
            detection_peers: failure.detection.len(),
            abort_wall_us: wall.as_micros(),
            restore_us: report.restore_wall.as_micros(),
            recovered_exact: bit_identical(&report.output.values, &durable_baseline),
            recovery_attempts: 2,
        };
        println!(
            "{:<28} {:>8} {:>7} {:>12} {:>6} {:>12} {:>9} {:>9}",
            row.fault,
            row.cause,
            row.blamed_worker,
            row.detection_max_us,
            row.detection_peers,
            row.abort_wall_us,
            row.recovered_exact,
            row.recovery_attempts
        );
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&root);

    let results = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("fault", Json::from(r.fault.as_str())),
                ("cause", Json::from(r.cause)),
                ("blamed_worker", Json::from(r.blamed_worker)),
                ("detection_max_us", Json::from(r.detection_max_us as f64)),
                ("detection_peers", Json::from(r.detection_peers)),
                ("abort_wall_us", Json::from(r.abort_wall_us as f64)),
                ("restore_us", Json::from(r.restore_us as f64)),
                ("recovered_exact", Json::Bool(r.recovered_exact)),
                ("recovery_attempts", Json::from(r.recovery_attempts)),
            ])
        })
        .collect();
    let doc = bench_report(
        "fault_matrix",
        vec![
            ("workers", Json::from(workers)),
            ("nodes", Json::from(sharded.graph.num_nodes())),
            ("checkpoint_every", Json::from(every)),
        ],
        results,
    );
    write_report("BENCH_faults.json", &doc);
    let all_recovered = rows.iter().all(|r| r.recovered_exact);
    println!("({} rows, all recovered bit-identical: {all_recovered})", rows.len());
    if !all_recovered {
        std::process::exit(1);
    }
}
