//! Ablations of Tofu's design choices (the §5/§6 optimizations DESIGN.md
//! calls out): output reduction, Fig.-7 control dependencies, Fig.-6 fetch
//! buffers, coarsening, and the DP beam width.

use tofu_core::baselines::{run, Algorithm};
use tofu_core::recursive::{partition, PartitionOptions};
use tofu_models::{rnn, wresnet, RnnConfig, WResNetConfig};
use tofu_sim::{per_device_memory, run_partitioned, Machine, TofuSimOptions};

fn main() {
    let machine = Machine::p2_8xlarge();

    // Workloads sized so every variant completes quickly.
    let rnn_model = rnn(&RnnConfig {
        layers: 4,
        hidden: 2048,
        batch: 256,
        steps: 20,
        embed: 1024,
        vocab: 4096,
        with_updates: true,
    })
    .expect("rnn builds");
    let wres_model = wresnet(&WResNetConfig {
        layers: 50,
        width: 6,
        batch: 32,
        ..Default::default()
    })
    .expect("wresnet builds");

    println!("Ablation 1: output-reduction strategies (Tofu vs ICML18 search)");
    for (name, g) in [("RNN-4-2K", &rnn_model.graph), ("WResNet-50-6", &wres_model.graph)] {
        let with = run(g, Algorithm::Tofu, 8).expect("tofu plan");
        let without = run(g, Algorithm::Icml18, 8).expect("icml18 plan");
        println!(
            "  {name:<14} comm with reduction: {:>8.2} GB   without: {:>8.2} GB   ({:.2}x)",
            with.total_comm_bytes() / 1e9,
            without.total_comm_bytes() / 1e9,
            without.total_comm_bytes() / with.total_comm_bytes().max(1.0)
        );
    }

    println!("\nAblation 2: Fig.-7 control dependencies (per-GPU peak memory)");
    let plan = partition(&rnn_model.graph, &PartitionOptions::default()).expect("plan");
    for control_deps in [true, false] {
        let run = run_partitioned(
            &rnn_model.graph,
            &plan,
            256,
            &machine,
            &TofuSimOptions { control_deps, optimizer_copies: 1.0 },
        )
        .expect("generation succeeds");
        let peak = run.per_device_gb.iter().copied().fold(0.0, f64::max);
        println!(
            "  control deps {:<5} peak per-GPU memory: {peak:>7.2} GB",
            if control_deps { "on" } else { "off" },
        );
    }

    println!("\nAblation 3: Fig.-6 fetch buffers in later recursion steps");
    for floor in [1u64 << 20, u64::MAX] {
        let plan = partition(
            &rnn_model.graph,
            &PartitionOptions { fetch_buffer_floor: floor, ..Default::default() },
        )
        .expect("plan");
        println!(
            "  fetch buffers {:<9} total comm: {:>8.2} GB  (deltas {:?})",
            if floor == u64::MAX { "ignored" } else { "tracked" },
            plan.total_comm_bytes() / 1e9,
            plan.step_costs().iter().map(|c| (c / 1e9 * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }

    println!("\nAblation 4: DP beam width (search quality vs time)");
    for beam in [8usize, 64, 512] {
        let plan = partition(
            &wres_model.graph,
            &PartitionOptions { beam, ..Default::default() },
        )
        .expect("plan");
        println!(
            "  beam {beam:<5} comm {:>8.2} GB   search {:?}",
            plan.total_comm_bytes() / 1e9,
            plan.search_time
        );
    }

    println!("\nAblation 5: buffer reuse across the whole partitioned graph");
    let sharded = tofu_core::generate(
        &wres_model.graph,
        &partition(&wres_model.graph, &PartitionOptions::default()).expect("plan"),
        &tofu_core::GenOptions::default(),
    )
    .expect("generate");
    for reuse in [true, false] {
        let mems = per_device_memory(
            &sharded.graph,
            &sharded.device_of_node,
            machine.gpus,
            reuse,
            1.0,
        );
        let peak = mems.iter().map(|m| m.peak_gb()).fold(0.0, f64::max);
        println!("  planner reuse {:<5} peak per-GPU: {peak:>7.2} GB", if reuse { "on" } else { "off" });
    }
}
