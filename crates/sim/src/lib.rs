//! Discrete-event multi-GPU simulator.
//!
//! The paper's evaluation ran on an EC2 p2.8xlarge (8× K80, 12 GB each,
//! 21 GB/s PCI-e peer-to-peer, 10 GB/s shared host link). This crate
//! substitutes that testbed with a cost-model simulation — see DESIGN.md for
//! why the substitution preserves the evaluation's *relative* results:
//!
//! - [`machine`]: the hardware model (capacities, bandwidth hierarchy);
//! - [`compute`]: flop-based kernel times with op-dependent utilization
//!   curves (matmuls starve at small batches; convolutions do not — the two
//!   §7.2 effects);
//! - [`event`]: per-device serial execution with link-serialized transfers;
//! - [`memory`]: per-device peak memory via the static planner plus the
//!   `3W` optimizer rule;
//! - [`baselines`]: Ideal, SmallBatch, LRU Swapping (shared host link) and
//!   Operator Placement (MXNet and TensorFlow flavors);
//! - [`tofu`]: simulation of Tofu-partitioned graphs (and any other
//!   [`tofu_core::PartitionPlan`], enabling the Fig. 10 comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod compare;
pub mod compute;
pub mod event;
pub mod machine;
pub mod memory;
pub mod tofu;

pub use baselines::{ideal, lru_swap_traffic, op_placement, small_batch, swap, ModelBuilder};
pub use compare::{compare_trace, DeviceReport, TraceReport};
pub use compute::node_seconds;
pub use event::{simulate, simulate_traced, simulate_with_leaf_devices, SimResult};
pub use machine::Machine;
pub use memory::{device_memory, per_device_memory, DeviceMemory};
pub use tofu::{run_partitioned, simulate_degraded, DegradedRun, PartitionedRun, TofuSimOptions};

/// One training configuration's simulated result.
#[derive(Debug, Clone, Copy)]
pub enum Outcome {
    /// The configuration runs; summary attached.
    Ran(Perf),
    /// The configuration exceeds device memory (an "OOM" bar in the paper's
    /// figures).
    Oom {
        /// The peak per-device demand observed (GB).
        peak_gb: f64,
    },
}

impl Outcome {
    /// Throughput in samples/second; `None` for OOM.
    pub fn throughput(&self) -> Option<f64> {
        match self {
            Outcome::Ran(p) => Some(p.throughput),
            Outcome::Oom { .. } => None,
        }
    }

    /// True when the configuration ran.
    pub fn ran(&self) -> bool {
        matches!(self, Outcome::Ran(_))
    }
}

/// Performance summary of one simulated configuration.
#[derive(Debug, Clone, Copy)]
pub struct Perf {
    /// Time per training iteration (seconds).
    pub iter_seconds: f64,
    /// Samples per second.
    pub throughput: f64,
    /// Global mini-batch size used.
    pub batch: usize,
    /// Peak per-device memory (GB).
    pub peak_gb: f64,
    /// Fraction of the iteration attributable to communication.
    pub comm_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let p = Perf {
            iter_seconds: 1.0,
            throughput: 64.0,
            batch: 64,
            peak_gb: 1.0,
            comm_fraction: 0.1,
        };
        assert_eq!(Outcome::Ran(p).throughput(), Some(64.0));
        assert!(Outcome::Ran(p).ran());
        assert_eq!(Outcome::Oom { peak_gb: 20.0 }.throughput(), None);
        assert!(!Outcome::Oom { peak_gb: 20.0 }.ran());
    }
}
