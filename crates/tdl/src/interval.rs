//! Symbolic intervals and the Fig. 4 interval arithmetic.
//!
//! An interval `I = [Σ lᵢXᵢ + c_l, Σ uᵢXᵢ + c_u]` tracks the range of an
//! index expression during abstract interpretation of a TDL body. Only the
//! affine operations of Fig. 4 are defined; interval products and
//! comparisons raise [`TdlError::NonAffine`], mirroring the paper ("Product
//! or comparison between two intervals are not supported and will raise an
//! error").

use crate::affine::AffineForm;
use crate::expr::TdlError;
use crate::Result;

/// A closed symbolic interval `[lo, hi]` whose bounds are affine forms over
/// the symbolic extents.
///
/// # Examples
///
/// ```
/// use tofu_tdl::SymInterval;
///
/// // Variable x over its full range [0, X0], shifted by 2: [2, X0 + 2].
/// let x = SymInterval::full_var(0);
/// let shifted = x.offset(2.0);
/// assert_eq!(shifted.lo().constant_term(), 2.0);
/// assert_eq!(shifted.hi().coeff(0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SymInterval {
    lo: AffineForm,
    hi: AffineForm,
}

impl SymInterval {
    /// Creates an interval from explicit bounds.
    pub fn new(lo: AffineForm, hi: AffineForm) -> SymInterval {
        SymInterval { lo, hi }
    }

    /// The degenerate interval `[c, c]`.
    pub fn point(c: f64) -> SymInterval {
        SymInterval { lo: AffineForm::constant(c), hi: AffineForm::constant(c) }
    }

    /// The full range `[0, X_var]` of index variable `var` — the default
    /// initialization `ZV[u_i = 1]` of the paper.
    pub fn full_var(var: usize) -> SymInterval {
        SymInterval { lo: AffineForm::zero(), hi: AffineForm::sym(var) }
    }

    /// The lower half `[0, X_var/2]` of a variable's range — the paper's
    /// `ZV[u_b = 1/2]` initialization used to analyze worker 0.
    pub fn lower_half_var(var: usize) -> SymInterval {
        SymInterval { lo: AffineForm::zero(), hi: AffineForm::sym(var).scale(0.5) }
    }

    /// The upper half `[X_var/2, X_var]` — the paper's
    /// `ZV[l_b = 1/2, u_b = 1]` initialization used to analyze worker 1.
    pub fn upper_half_var(var: usize) -> SymInterval {
        SymInterval { lo: AffineForm::sym(var).scale(0.5), hi: AffineForm::sym(var) }
    }

    /// The slice `[k/parts · X_var, (k+1)/parts · X_var]` of a variable's
    /// range — used when a recursion step splits across `parts > 2` workers.
    pub fn fraction_var(var: usize, k: usize, parts: usize) -> SymInterval {
        let x = AffineForm::sym(var);
        SymInterval {
            lo: x.scale(k as f64 / parts as f64),
            hi: x.scale((k + 1) as f64 / parts as f64),
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> &AffineForm {
        &self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> &AffineForm {
        &self.hi
    }

    /// Fig. 4: `I ± k`.
    pub fn offset(&self, k: f64) -> SymInterval {
        SymInterval { lo: self.lo.offset(k), hi: self.hi.offset(k) }
    }

    /// Fig. 4: `I × k`. A negative factor swaps the bounds.
    pub fn scale(&self, k: f64) -> SymInterval {
        if k >= 0.0 {
            SymInterval { lo: self.lo.scale(k), hi: self.hi.scale(k) }
        } else {
            SymInterval { lo: self.hi.scale(k), hi: self.lo.scale(k) }
        }
    }

    /// Fig. 4: `I ± I'` (interval addition).
    pub fn add(&self, other: &SymInterval) -> SymInterval {
        SymInterval { lo: self.lo.add(&other.lo), hi: self.hi.add(&other.hi) }
    }

    /// Fig. 4: interval subtraction `I - I'`.
    pub fn sub(&self, other: &SymInterval) -> SymInterval {
        SymInterval { lo: self.lo.sub(&other.hi), hi: self.hi.sub(&other.lo) }
    }

    /// Interval product — **not affine**, always an error (Fig. 4).
    pub fn mul(&self, _other: &SymInterval) -> Result<SymInterval> {
        Err(TdlError::NonAffine("product of two symbolic intervals".into()))
    }

    /// Convex hull of two intervals: pointwise-min of the lower bounds and
    /// pointwise-max of the upper bounds (sound because extents are
    /// non-negative).
    pub fn hull(&self, other: &SymInterval) -> SymInterval {
        SymInterval {
            lo: self.lo.pointwise_min(&other.lo),
            hi: self.hi.pointwise_max(&other.hi),
        }
    }

    /// Symbolic width `hi - lo` of the interval.
    pub fn width(&self) -> AffineForm {
        self.hi.sub(&self.lo)
    }

    /// True when `self` covers `other` for every non-negative assignment.
    pub fn covers(&self, other: &SymInterval) -> bool {
        self.lo.dominated_by(&other.lo) && other.hi.dominated_by(&self.hi)
    }

    /// Approximate structural equality.
    pub fn approx_eq(&self, other: &SymInterval) -> bool {
        self.lo.approx_eq(&other.lo) && self.hi.approx_eq(&other.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_two_example() {
        // The paper's shift_two: B = lambda i: A[i+2]. Splitting i into
        // halves gives A regions [2, X/2 + 2] and [X/2 + 2, X + 2].
        let w0 = SymInterval::lower_half_var(0).offset(2.0);
        assert_eq!(w0.lo().constant_term(), 2.0);
        assert_eq!(w0.hi().coeff(0), 0.5);
        assert_eq!(w0.hi().constant_term(), 2.0);
        let w1 = SymInterval::upper_half_var(0).offset(2.0);
        assert_eq!(w1.lo().coeff(0), 0.5);
        assert_eq!(w1.hi().coeff(0), 1.0);
    }

    #[test]
    fn scale_negative_swaps_bounds() {
        let i = SymInterval::full_var(0); // [0, X0]
        let neg = i.scale(-1.0); // [-X0, 0]
        assert_eq!(neg.lo().coeff(0), -1.0);
        assert!(neg.hi().is_zero());
    }

    #[test]
    fn interval_addition() {
        // x + dx with x in [0, X0], dx in [0, X1] -> [0, X0 + X1].
        let sum = SymInterval::full_var(0).add(&SymInterval::full_var(1));
        assert!(sum.lo().is_zero());
        assert_eq!(sum.hi().coeff(0), 1.0);
        assert_eq!(sum.hi().coeff(1), 1.0);
    }

    #[test]
    fn interval_subtraction() {
        let d = SymInterval::full_var(0).sub(&SymInterval::point(1.0));
        assert_eq!(d.lo().constant_term(), -1.0);
        assert_eq!(d.hi().coeff(0), 1.0);
    }

    #[test]
    fn product_raises_non_affine() {
        let a = SymInterval::full_var(0);
        assert!(matches!(a.mul(&a), Err(TdlError::NonAffine(_))));
    }

    #[test]
    fn hull_and_covers() {
        let lower = SymInterval::lower_half_var(0);
        let upper = SymInterval::upper_half_var(0);
        let hull = lower.hull(&upper);
        assert!(hull.approx_eq(&SymInterval::full_var(0)));
        assert!(hull.covers(&lower));
        assert!(hull.covers(&upper));
        assert!(!lower.covers(&upper));
    }

    #[test]
    fn width_of_half_range() {
        let w = SymInterval::lower_half_var(0).width();
        assert_eq!(w.coeff(0), 0.5);
        assert_eq!(w.constant_term(), 0.0);
    }

    #[test]
    fn fraction_matches_halves() {
        assert!(SymInterval::fraction_var(0, 0, 2).approx_eq(&SymInterval::lower_half_var(0)));
        assert!(SymInterval::fraction_var(0, 1, 2).approx_eq(&SymInterval::upper_half_var(0)));
        let third = SymInterval::fraction_var(0, 1, 3);
        assert!((third.lo().coeff(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((third.hi().coeff(0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
