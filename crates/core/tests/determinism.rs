//! Determinism: two searches over the same graph under the same
//! configuration (and the same `TOFU_SEED`, which only perturbs tensor
//! *value* sampling — the search never consumes randomness) must produce
//! byte-identical plans and identical `dp/*` and `cache/*` counter totals.

mod common;

use std::collections::BTreeMap;

use tofu_core::recursive::{partition_with_obs, PartitionOptions, PartitionPlan};
use tofu_core::SearchTuning;
use tofu_graph::Graph;
use tofu_models::{mlp, wresnet, MlpConfig, WResNetConfig};
use tofu_obs::Collector;

fn search_counters(c: &Collector) -> BTreeMap<String, f64> {
    c.totals()
        .into_iter()
        .filter(|(k, _)| k.starts_with("dp/") || k.starts_with("cache/"))
        .collect()
}

fn run(g: &Graph, opts: &PartitionOptions) -> (PartitionPlan, BTreeMap<String, f64>) {
    let obs = Collector::new();
    let plan = partition_with_obs(g, opts, Some(&obs)).unwrap();
    (plan, search_counters(&obs))
}

fn assert_identical_runs(g: &Graph, opts: &PartitionOptions) {
    let (plan_a, counters_a) = run(g, opts);
    let (plan_b, counters_b) = run(g, opts);

    assert_eq!(
        plan_a.total_comm_bytes().to_bits(),
        plan_b.total_comm_bytes().to_bits(),
        "total cost differs across identical runs"
    );
    assert_eq!(plan_a.steps.len(), plan_b.steps.len());
    for (a, b) in plan_a.steps.iter().zip(plan_b.steps.iter()) {
        assert_eq!(a.ways, b.ways);
        assert_eq!(a.plan.comm_bytes.to_bits(), b.plan.comm_bytes.to_bits());
        // Byte-identical plan: same spec for every tensor, same execution
        // choice for every node.
        assert_eq!(a.plan.tensor_spec, b.plan.tensor_spec);
        assert_eq!(a.plan.node_choice, b.plan.node_choice);
    }
    assert_eq!(plan_a.tiling, plan_b.tiling, "tiling assignment differs across runs");
    assert_eq!(counters_a, counters_b, "dp/cache counter totals differ across identical runs");
    // The optimized engine must actually have reported its counters —
    // otherwise this test vacuously compares empty maps.
    if !opts.tuning.reference {
        for key in ["dp/states_explored", "dp/strategies_feasible", "cache/strategy_miss"] {
            assert!(counters_a.contains_key(key), "missing expected counter {key}");
        }
    }
}

#[test]
fn mlp_partition_is_deterministic() {
    let model = mlp(&MlpConfig { batch: 24, dims: vec![48, 24], classes: 12, with_updates: true })
        .unwrap();
    for workers in [2usize, 6, 8] {
        assert_identical_runs(
            &model.graph,
            &PartitionOptions { workers, ..Default::default() },
        );
    }
}

#[test]
fn wresnet_partition_is_deterministic() {
    let model = wresnet(&WResNetConfig {
        layers: 50,
        width: 1,
        batch: 8,
        image: 16,
        classes: 8,
        with_updates: true,
    })
    .unwrap();
    assert_identical_runs(&model.graph, &PartitionOptions { workers: 4, ..Default::default() });
}

#[test]
fn reference_engine_is_deterministic_too() {
    let model = mlp(&MlpConfig { batch: 16, dims: vec![32, 32], classes: 8, with_updates: true })
        .unwrap();
    assert_identical_runs(
        &model.graph,
        &PartitionOptions { workers: 4, tuning: SearchTuning::reference(), ..Default::default() },
    );
}

#[test]
fn random_dags_are_deterministic() {
    for seed in [3u64, 17, 99] {
        let g = common::random_training_mlp(seed);
        assert_identical_runs(&g, &PartitionOptions { workers: 4, ..Default::default() });
    }
}
