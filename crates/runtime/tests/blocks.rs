//! Property tests for the block-copy primitives behind `multi_fetch`
//! assembly: extracting a piece and copying it into a destination block must
//! round-trip exactly, over random shapes, offsets and extents — and must
//! never touch destination elements outside the block.

use proptest::prelude::*;
use tofu_core::FetchPiece;
use tofu_runtime::{copy_block, extract_piece, FaultRng};
use tofu_tensor::{Shape, Tensor};

/// Numbers every element so any misplaced copy is visible.
fn sequential(shape: Shape) -> Tensor {
    let n = shape.volume();
    Tensor::from_vec(shape, (0..n).map(|i| i as f32 + 1.0).collect()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// extract_piece followed by copy_block places exactly the source block
    /// at the destination offset, and copy_block straight from the source
    /// agrees with it.
    #[test]
    fn block_copy_round_trips(
        src_dims in prop::collection::vec(1usize..6, 1..4),
        seed in 0u64..1_000_000_000,
    ) {
        let mut rng = FaultRng::new(seed);
        let rank = src_dims.len();
        // A block inside the source, and a destination with per-dimension
        // slack so the block lands at a random interior offset.
        let len: Vec<i64> =
            src_dims.iter().map(|&d| 1 + rng.below(d as u64) as i64).collect();
        let src_begin: Vec<i64> = src_dims
            .iter()
            .zip(&len)
            .map(|(&d, &l)| rng.below(d as u64 - l as u64 + 1) as i64)
            .collect();
        let dst_dims: Vec<usize> =
            len.iter().map(|&l| l as usize + rng.below(4) as usize).collect();
        let dst_begin: Vec<i64> = dst_dims
            .iter()
            .zip(&len)
            .map(|(&d, &l)| rng.below(d as u64 - l as u64 + 1) as i64)
            .collect();

        let src = sequential(Shape::new(src_dims.clone()));
        let piece = FetchPiece {
            src_begin: src_begin.clone(),
            dst_begin: dst_begin.clone(),
            len: len.clone(),
        };

        // Path 1: extract then copy (what a remote fetch does).
        let extracted = extract_piece(&src, &piece).unwrap();
        let len_usize: Vec<usize> = len.iter().map(|&l| l as usize).collect();
        prop_assert_eq!(extracted.shape().dims(), len_usize.as_slice());
        let mut via_extract = Tensor::zeros(Shape::new(dst_dims.clone()));
        let zeros = vec![0i64; rank];
        copy_block(&mut via_extract, &extracted, &zeros, &dst_begin, &len);

        // Path 2: copy straight out of the source (what a local fetch does).
        let mut direct = Tensor::zeros(Shape::new(dst_dims.clone()));
        copy_block(&mut direct, &src, &src_begin, &dst_begin, &len);

        for idx in Shape::new(dst_dims.clone()).indices() {
            let inside = idx.iter().enumerate().all(|(d, &i)| {
                i >= dst_begin[d] as usize && i < dst_begin[d] as usize + len[d] as usize
            });
            let want = if inside {
                let src_idx: Vec<usize> = idx
                    .iter()
                    .enumerate()
                    .map(|(d, &i)| i - dst_begin[d] as usize + src_begin[d] as usize)
                    .collect();
                src.at(&src_idx)
            } else {
                0.0
            };
            prop_assert_eq!(
                direct.at(&idx), want,
                "direct copy wrong at {:?} (block {:?}+{:?} from {:?})",
                idx, dst_begin, len, src_begin
            );
            prop_assert_eq!(
                via_extract.at(&idx), want,
                "extract+copy wrong at {:?}",
                idx
            );
        }
    }
}
