//! Dense row-major tensor storage and structural operations.

use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor of `f32` elements.
///
/// Structural operations (slicing, concatenation, transposition) are the
/// building blocks that partitioned graphs use to shard and reassemble data;
/// they are exercised heavily by the cross-crate validation tests that check
/// a partitioned graph computes the same values as the original graph.
///
/// # Examples
///
/// ```
/// use tofu_tensor::{Shape, Tensor};
///
/// let t = Tensor::from_vec(Shape::new(vec![2, 3]), vec![0., 1., 2., 3., 4., 5.]).unwrap();
/// let top = t.slice(0, 0, 1).unwrap();
/// let bottom = t.slice(0, 1, 2).unwrap();
/// let back = Tensor::concat(&[top, bottom], 0).unwrap();
/// assert_eq!(back.data(), t.data());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and a row-major data buffer.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Tensor> {
        if shape.volume() != data.len() {
            return Err(TensorError::DataLength { expected: shape.volume(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Tensor {
        let volume = shape.volume();
        Tensor { shape, data: vec![0.0; volume] }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Tensor {
        let volume = shape.volume();
        Tensor { shape, data: vec![value; volume] }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a rank-1 tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Tensor {
        Tensor { shape: Shape::new(vec![n]), data: (0..n).map(|i| i as f32).collect() }
    }

    /// Returns the tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the underlying row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the underlying data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Reinterprets the data under a new shape with the same volume.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::DataLength { expected: shape.volume(), actual: self.data.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Extracts the sub-tensor `[start, end)` along `axis`.
    pub fn slice(&self, axis: usize, start: usize, end: usize) -> Result<Tensor> {
        let extent = self.shape.try_dim(axis)?;
        if start > end || end > extent {
            return Err(TensorError::InvalidSlice { start, end, extent });
        }
        let out_shape = self.shape.with_dim(axis, end - start)?;
        // Treat the tensor as (outer, extent, inner) around `axis` and copy
        // contiguous inner*len blocks.
        let inner: usize = self.shape.dims()[axis + 1..].iter().product();
        let outer: usize = self.shape.dims()[..axis].iter().product();
        let len = end - start;
        let mut out = Vec::with_capacity(out_shape.volume());
        for o in 0..outer {
            let base = o * extent * inner + start * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor::from_vec(out_shape, out)
    }

    /// Concatenates tensors along `axis`; all other extents must match.
    pub fn concat(parts: &[Tensor], axis: usize) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::Incompatible("concat of zero tensors".into()))?;
        let rank = first.shape.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut total = 0usize;
        for p in parts {
            if p.shape.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.dims().to_vec(),
                    rhs: p.shape.dims().to_vec(),
                });
            }
            for d in 0..rank {
                if d != axis && p.shape.dim(d) != first.shape.dim(d) {
                    return Err(TensorError::ShapeMismatch {
                        lhs: first.shape.dims().to_vec(),
                        rhs: p.shape.dims().to_vec(),
                    });
                }
            }
            total += p.shape.dim(axis);
        }
        let out_shape = first.shape.with_dim(axis, total)?;
        let inner: usize = first.shape.dims()[axis + 1..].iter().product();
        let outer: usize = first.shape.dims()[..axis].iter().product();
        let mut out = vec![0.0f32; out_shape.volume()];
        let out_axis_stride = total * inner;
        for o in 0..outer {
            let mut written = 0usize;
            for p in parts {
                let len = p.shape.dim(axis);
                let src_base = o * len * inner;
                let dst_base = o * out_axis_stride + written * inner;
                out[dst_base..dst_base + len * inner]
                    .copy_from_slice(&p.data[src_base..src_base + len * inner]);
                written += len;
            }
        }
        Tensor::from_vec(out_shape, out)
    }

    /// Splits the tensor into `parts` equal pieces along `axis`.
    pub fn split(&self, axis: usize, parts: usize) -> Result<Vec<Tensor>> {
        let extent = self.shape.try_dim(axis)?;
        if parts == 0 || extent % parts != 0 {
            return Err(TensorError::Incompatible(format!(
                "cannot split extent {extent} into {parts} parts"
            )));
        }
        let chunk = extent / parts;
        (0..parts).map(|p| self.slice(axis, p * chunk, (p + 1) * chunk)).collect()
    }

    /// Returns the tensor with dimensions reordered by `perm`.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let rank = self.shape.rank();
        if perm.len() != rank {
            return Err(TensorError::Incompatible(format!(
                "permutation of length {} for rank {rank}",
                perm.len()
            )));
        }
        let mut seen = vec![false; rank];
        for &p in perm {
            if p >= rank || seen[p] {
                return Err(TensorError::Incompatible(format!("invalid permutation {perm:?}")));
            }
            seen[p] = true;
        }
        let out_dims: Vec<usize> = perm.iter().map(|&p| self.shape.dim(p)).collect();
        let out_shape = Shape::new(out_dims);
        let mut out = Tensor::zeros(out_shape.clone());
        let in_strides = self.shape.strides();
        for (flat, idx) in out_shape.indices().enumerate() {
            let mut src = 0usize;
            for (out_axis, &in_axis) in perm.iter().enumerate() {
                src += idx[out_axis] * in_strides[in_axis];
            }
            out.data[flat] = self.data[src];
        }
        Ok(out)
    }

    /// Returns the matrix transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::Incompatible(format!(
                "transpose requires rank 2, got {}",
                self.shape.rank()
            )));
        }
        self.permute(&[1, 0])
    }

    /// Returns true when every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_vec(Shape::new(vec![2, 3]), vec![0., 1., 2., 3., 4., 5.]).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0; 3]).is_err());
    }

    #[test]
    fn at_and_set() {
        let mut t = t23();
        assert_eq!(t.at(&[1, 2]), 5.0);
        t.set(&[0, 1], 9.0);
        assert_eq!(t.at(&[0, 1]), 9.0);
    }

    #[test]
    fn slice_rows_and_cols() {
        let t = t23();
        let r = t.slice(0, 1, 2).unwrap();
        assert_eq!(r.shape().dims(), &[1, 3]);
        assert_eq!(r.data(), &[3., 4., 5.]);
        let c = t.slice(1, 1, 3).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[1., 2., 4., 5.]);
    }

    #[test]
    fn slice_invalid_range_errors() {
        let t = t23();
        assert!(t.slice(1, 2, 5).is_err());
        assert!(t.slice(2, 0, 1).is_err());
        assert!(t.slice(0, 1, 0).is_err());
    }

    #[test]
    fn concat_inverts_split() {
        let t = t23();
        for axis in 0..2 {
            let parts = t.split(axis, if axis == 0 { 2 } else { 3 }).unwrap();
            let back = Tensor::concat(&parts, axis).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn concat_shape_mismatch_errors() {
        let a = Tensor::zeros(Shape::new(vec![2, 3]));
        let b = Tensor::zeros(Shape::new(vec![3, 2]));
        assert!(Tensor::concat(&[a, b], 0).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn split_uneven_errors() {
        assert!(t23().split(1, 2).is_err());
        assert!(t23().split(0, 0).is_err());
    }

    #[test]
    fn permute_transposes() {
        let t = t23();
        let p = t.permute(&[1, 0]).unwrap();
        assert_eq!(p.shape().dims(), &[3, 2]);
        assert_eq!(p.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(t.transpose().unwrap(), p);
    }

    #[test]
    fn permute_validates() {
        let t = t23();
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = t23();
        let r = t.reshape(Shape::new(vec![3, 2])).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::new(vec![4])).is_err());
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = t23();
        let mut b = t23();
        b.data_mut()[0] += 1e-6;
        assert!(a.allclose(&b, 1e-5));
        b.data_mut()[0] += 1.0;
        assert!(!a.allclose(&b, 1e-5));
    }

    #[test]
    fn arange_and_scalar() {
        assert_eq!(Tensor::arange(3).data(), &[0., 1., 2.]);
        assert_eq!(Tensor::scalar(7.0).shape().rank(), 0);
    }
}
