//! Fault-injection, fail-fast abort and checkpoint-restart tests.
//!
//! The matrix kills every worker of a 4-worker MLP at three schedule
//! positions and asserts (a) the run aborts in milliseconds — not the 60 s
//! receive timeout — with a post-mortem naming the injected worker and node,
//! and (b) `run_with_recovery` completes bit-identically to an undisturbed
//! run. Message tampering (drop / duplicate / corrupt) must always surface
//! as a typed `Comm` error, never as silent wrong output.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    run_with_options, run_with_recovery, CheckpointPolicy, Fault, FaultPlan, IntegrityLevel,
    MessageFault, RecoveryOptions, RunFailure, RunOptions, RuntimeError,
};
use tofu_tensor::Tensor;

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

fn shard(workers: usize) -> (ShardedGraph, Vec<(TensorId, Tensor)>) {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    let plan = partition(&m.graph, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(&m.graph, &plan, &GenOptions::default()).unwrap();
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(&m.graph) {
        shard_feeds.extend(sharded.scatter(t, &v).unwrap());
    }
    (sharded, shard_feeds)
}

/// Recovered output must match the healthy run exactly — same keys, same
/// shapes, same f32 bit patterns.
fn assert_bit_identical(got: &BTreeMap<TensorId, Tensor>, want: &BTreeMap<TensorId, Tensor>) {
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "recovered run holds different tensors"
    );
    for (t, w) in want {
        let g = &got[t];
        assert_eq!(g.shape(), w.shape(), "tensor {t:?} changed shape");
        let gb: Vec<u32> = g.data().iter().map(|x| x.to_bits()).collect();
        let wb: Vec<u32> = w.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, wb, "tensor {t:?} is not bit-identical after recovery");
    }
}

fn expect_failed(err: RuntimeError) -> RunFailure {
    match err {
        RuntimeError::Failed(f) => *f,
        other => panic!("expected Failed post-mortem, got {other}"),
    }
}

#[test]
fn kill_matrix_aborts_fast_and_recovers_bit_identically() {
    let workers = 4;
    let (sharded, shard_feeds) = shard(workers);
    let baseline = run_with_options(&sharded, &shard_feeds, &RunOptions::default())
        .expect("undisturbed run");
    let every = (sharded.graph.num_nodes() / 4).max(1);
    for w in 0..workers {
        let len = sharded.worker_schedule(w).len();
        assert!(len > 0, "worker {w} has an empty schedule");
        for pos in [0, len / 2, len - 1] {
            let opts = RunOptions {
                faults: FaultPlan::single(Fault::Kill { worker: w, pos }),
                checkpoint: Some(CheckpointPolicy::every(every)),
                ..Default::default()
            };
            let start = Instant::now();
            let failure =
                expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
            let wall = start.elapsed();
            // Fail-fast: nobody sat out the 60 s receive timeout.
            assert!(
                wall < Duration::from_secs(10),
                "kill w{w}@{pos}: abort took {wall:?}"
            );
            assert_eq!(failure.worker, w, "kill w{w}@{pos} blamed worker {}", failure.worker);
            let node = failure.node.unwrap_or_else(|| panic!("kill w{w}@{pos}: no node named"));
            assert_eq!(node, sharded.worker_schedule(w)[pos]);
            assert_eq!(failure.pos, Some(pos));
            assert!(
                matches!(*failure.cause, RuntimeError::Injected { worker, .. } if worker == w),
                "kill w{w}@{pos}: cause {}",
                failure.cause
            );
            for &(peer, latency) in &failure.detection {
                assert!(
                    latency < Duration::from_secs(1),
                    "kill w{w}@{pos}: worker {peer} observed the abort after {latency:?}"
                );
            }
            assert!(failure.trace.is_partial(), "kill w{w}@{pos}: trace claims completion");

            // The same transient fault, retried with checkpoints: recovery
            // must converge to the undisturbed output exactly.
            let report = run_with_recovery(
                &sharded,
                &shard_feeds,
                &opts,
                &RecoveryOptions { max_attempts: 3, backoff: Duration::from_millis(1), ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("kill w{w}@{pos}: recovery failed: {e}"));
            assert_eq!(report.attempts, 2, "kill w{w}@{pos}: one failure, one retry");
            assert_eq!(report.failures.len(), 1);
            assert_eq!(report.failures[0].worker, w);
            assert_bit_identical(&report.output.values, &baseline.values);
        }
    }
}

#[test]
fn late_kill_resumes_from_checkpoint() {
    let (sharded, shard_feeds) = shard(4);
    let baseline =
        run_with_options(&sharded, &shard_feeds, &RunOptions::default()).unwrap();
    // Kill worker 0 at its last step; with a barrier every node, earlier
    // checkpoints are long consistent by then.
    let last = sharded.worker_schedule(0).len() - 1;
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Kill { worker: 0, pos: last }),
        checkpoint: Some(CheckpointPolicy::every(1)),
        ..Default::default()
    };
    let report = run_with_recovery(&sharded, &shard_feeds, &opts, &RecoveryOptions::default())
        .expect("recovery");
    assert_eq!(report.attempts, 2);
    assert_eq!(report.resumed_from.len(), 1);
    let ckpt = report.resumed_from[0]
        .expect("a late kill must leave at least one consistent checkpoint");
    assert!(ckpt >= 1);
    // The retry's trace records where workers restarted.
    assert!(
        report.output.trace.workers.iter().any(|t| t.resumed_from.is_some()),
        "no worker reports a resumed schedule position"
    );
    assert_bit_identical(&report.output.values, &baseline.values);
}

#[test]
fn recovery_without_checkpoints_restarts_from_scratch() {
    let (sharded, shard_feeds) = shard(2);
    let baseline =
        run_with_options(&sharded, &shard_feeds, &RunOptions::default()).unwrap();
    let mid = sharded.worker_schedule(1).len() / 2;
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Kill { worker: 1, pos: mid }),
        ..Default::default()
    };
    let report = run_with_recovery(&sharded, &shard_feeds, &opts, &RecoveryOptions::default())
        .expect("recovery");
    assert_eq!(report.attempts, 2);
    assert_eq!(report.resumed_from, vec![None], "no checkpoints: clean restart");
    assert_bit_identical(&report.output.values, &baseline.values);
}

#[test]
fn injected_panic_is_caught_and_named() {
    let (sharded, shard_feeds) = shard(4);
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Panic { worker: 2, pos: 1 }),
        ..Default::default()
    };
    let failure = expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
    assert_eq!(failure.worker, 2);
    match *failure.cause {
        RuntimeError::WorkerPanic { worker, ref message } => {
            assert_eq!(worker, 2);
            assert!(message.contains("injected panic"), "panic message: {message}");
        }
        ref other => panic!("expected WorkerPanic, got {other}"),
    }
    // The panicked worker has no trace; the survivors' partial traces are
    // still collected.
    assert!(failure.trace.workers.iter().all(|t| t.device != 2));
    assert!(!failure.trace.workers.is_empty());
}

/// The first link of a healthy run that carries at least `min` messages.
fn busy_link(sharded: &ShardedGraph, shard_feeds: &[(TensorId, Tensor)], min: u64) -> (usize, usize) {
    let healthy = run_with_options(sharded, shard_feeds, &RunOptions::default()).unwrap();
    let l = healthy
        .trace
        .links
        .iter()
        .find(|l| l.messages >= min)
        .unwrap_or_else(|| panic!("no link carries {min} messages"));
    (l.src, l.dst)
}

#[test]
fn dropped_message_is_detected_as_comm_error() {
    let (sharded, shard_feeds) = shard(4);
    let (src, dst) = busy_link(&sharded, &shard_feeds, 2);
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Message {
            src,
            dst,
            index: 0,
            action: MessageFault::Drop,
        }),
        // Backstop for the case where the receiver stalls on the lost piece
        // before the gap-exposing successor arrives.
        recv_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let failure = expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
    assert_eq!(failure.worker, dst, "the receiver detects the loss");
    assert!(
        matches!(*failure.cause, RuntimeError::Comm { worker, .. } if worker == dst),
        "expected Comm on worker {dst}, got {}",
        failure.cause
    );
}

#[test]
fn duplicated_message_is_detected_as_comm_error() {
    let (sharded, shard_feeds) = shard(4);
    let (src, dst) = busy_link(&sharded, &shard_feeds, 2);
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Message {
            src,
            dst,
            index: 0,
            action: MessageFault::Duplicate,
        }),
        ..Default::default()
    };
    let failure = expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
    assert_eq!(failure.worker, dst);
    match *failure.cause {
        RuntimeError::Comm { worker, ref detail } => {
            assert_eq!(worker, dst);
            assert!(
                detail.contains("duplicated") || detail.contains("never consumed"),
                "detail: {detail}"
            );
        }
        ref other => panic!("expected Comm, got {other}"),
    }
}

#[test]
fn corrupted_message_is_detected_as_comm_error() {
    let (sharded, shard_feeds) = shard(4);
    let (src, dst) = busy_link(&sharded, &shard_feeds, 1);
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Message {
            src,
            dst,
            index: 0,
            action: MessageFault::Corrupt,
        }),
        ..Default::default()
    };
    let failure = expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
    assert_eq!(failure.worker, dst);
    match *failure.cause {
        RuntimeError::Comm { worker, ref detail } => {
            assert_eq!(worker, dst);
            assert!(detail.contains("checksum"), "detail: {detail}");
        }
        ref other => panic!("expected Comm, got {other}"),
    }
}

#[test]
fn delayed_message_only_slows_the_run() {
    let (sharded, shard_feeds) = shard(4);
    let baseline =
        run_with_options(&sharded, &shard_feeds, &RunOptions::default()).unwrap();
    let (src, dst) = busy_link(&sharded, &shard_feeds, 1);
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::Message {
            src,
            dst,
            index: 0,
            action: MessageFault::Delay(Duration::from_millis(50)),
        }),
        ..Default::default()
    };
    let out = run_with_options(&sharded, &shard_feeds, &opts).expect("delay is not a failure");
    assert_bit_identical(&out.values, &baseline.values);
}

#[test]
fn pool_over_budget_fault_is_typed() {
    let (sharded, shard_feeds) = shard(4);
    let mid = sharded.worker_schedule(1).len() / 2;
    let opts = RunOptions {
        faults: FaultPlan::single(Fault::PoolOverBudget { worker: 1, pos: mid }),
        ..Default::default()
    };
    let failure = expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
    assert_eq!(failure.worker, 1);
    match *failure.cause {
        RuntimeError::Pool { worker, ref detail } => {
            assert_eq!(worker, 1);
            assert!(detail.contains("over budget"), "detail: {detail}");
        }
        ref other => panic!("expected Pool, got {other}"),
    }
}

#[test]
fn invalid_options_fail_before_spawning() {
    let (sharded, shard_feeds) = shard(2);
    let cases: Vec<RunOptions> = vec![
        RunOptions { recv_timeout: Duration::ZERO, ..Default::default() },
        RunOptions { abort_poll: Duration::ZERO, ..Default::default() },
        RunOptions { checkpoint: Some(CheckpointPolicy::every(0)), ..Default::default() },
        RunOptions {
            faults: FaultPlan::single(Fault::Kill { worker: 9, pos: 0 }),
            ..Default::default()
        },
        RunOptions {
            faults: FaultPlan::single(Fault::Message {
                src: 0,
                dst: 0,
                index: 0,
                action: MessageFault::Drop,
            }),
            ..Default::default()
        },
        // Message faults rely on the integrity checks to be detected; a
        // lowered integrity level must be rejected, not silently miss them.
        RunOptions {
            faults: FaultPlan::single(Fault::Message {
                src: 0,
                dst: 1,
                index: 0,
                action: MessageFault::Drop,
            }),
            integrity: IntegrityLevel::Fast,
            ..Default::default()
        },
    ];
    for opts in cases {
        let err = run_with_options(&sharded, &shard_feeds, &opts).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidOptions(_)), "got {err}");
    }
    let err = run_with_recovery(
        &sharded,
        &shard_feeds,
        &RunOptions::default(),
        &RecoveryOptions { max_attempts: 0, backoff: Duration::ZERO, ..Default::default() },
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidOptions(_)), "got {err}");
}

#[test]
fn permanent_kill_defeats_fixed_width_retry() {
    let (sharded, shard_feeds) = shard(4);
    let every = (sharded.graph.num_nodes() / 4).max(1);
    let pos = sharded.worker_schedule(1).len() / 2;
    let opts = RunOptions {
        faults: FaultPlan::single_permanent(Fault::Kill { worker: 1, pos }),
        checkpoint: Some(CheckpointPolicy::every(every)),
        ..Default::default()
    };
    // The device is gone for good: every fixed-width attempt re-hits the
    // fault, and retry alone (no degrade ladder) must exhaust and surface
    // the same worker in the post-mortem.
    let err = run_with_recovery(
        &sharded,
        &shard_feeds,
        &opts,
        &RecoveryOptions { max_attempts: 3, backoff: Duration::ZERO, ..Default::default() },
    )
    .unwrap_err();
    let failure = expect_failed(err);
    assert_eq!(failure.worker, 1, "post-mortem names the dead device");

    // Sanity contrast: the same fault marked transient fires once, so the
    // identical retry budget recovers bit-identically.
    let baseline =
        run_with_options(&sharded, &shard_feeds, &RunOptions::default()).expect("healthy run");
    let transient = RunOptions {
        faults: FaultPlan::single(Fault::Kill { worker: 1, pos }),
        ..opts.clone()
    };
    let report = run_with_recovery(
        &sharded,
        &shard_feeds,
        &transient,
        &RecoveryOptions { max_attempts: 3, backoff: Duration::ZERO, ..Default::default() },
    )
    .expect("transient fault recovers");
    assert_bit_identical(&report.output.values, &baseline.values);
    assert_eq!(report.history.len(), 2, "one failed attempt, one success");
    assert!(report.history[1].ok);
}

#[test]
fn poisoned_checkpoint_is_refused_with_a_typed_error() {
    let (sharded, mut shard_feeds) = shard(2);
    // Poison one fed weight shard with a NaN; the integrity guard must
    // refuse to commit the first checkpoint rather than persist it.
    let victim = shard_feeds
        .iter_mut()
        .find(|(t, _)| sharded.graph.tensor(*t).name.contains('w'))
        .expect("some weight shard");
    victim.1.data_mut()[0] = f32::NAN;
    let poisoned_name = sharded.graph.tensor(victim.0).name.clone();
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::every(1)),
        ..Default::default()
    };
    let failure =
        expect_failed(run_with_options(&sharded, &shard_feeds, &opts).unwrap_err());
    // The poisoned worker ships its NaN leaf shard at startup, so the peer
    // can hit its own poison guard on a downstream tensor and win the abort
    // race — either way the first failure must be a typed PoisonedCheckpoint
    // naming a tensor, and the owner (when blamed) names the fed one.
    match *failure.cause {
        RuntimeError::PoisonedCheckpoint { worker, ref tensor, .. } => {
            assert!(!tensor.is_empty(), "error names the poisoned tensor");
            if tensor == &poisoned_name {
                assert_eq!(worker, failure.worker, "blame matches the post-mortem");
            }
        }
        ref other => panic!("expected PoisonedCheckpoint, got {other}"),
    }

    // With the guard off the same run proceeds (NaN flows through the math);
    // the guard is the only thing standing between NaN and the store.
    let mut off = CheckpointPolicy::every(1);
    off.poison_check = false;
    let lax = RunOptions { checkpoint: Some(off), ..Default::default() };
    run_with_options(&sharded, &shard_feeds, &lax).expect("guard off: run completes");
}
