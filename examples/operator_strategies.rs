//! The paper's §3/§4 walkthrough: describe `conv1d` in TDL, discover its
//! partition strategies automatically, and verify numerically that both
//! Fig. 2 parallelizations compute the unpartitioned result.
//!
//! Run with: `cargo run --release --example operator_strategies`

use tofu::tdl::{discover_strategies, DescBuilder, InputRequirement, Reducer};
use tofu::tensor::{Conv1dParams, Shape, Tensor};

fn main() {
    // Fig. 3 of the paper:
    //   def conv1d(data, filters):
    //       return lambda b, co, x:
    //           Sum(lambda ci, dx: data[b, ci, x+dx] * filters[ci, co, dx])
    let mut b = DescBuilder::new("conv1d", &[3, 3]);
    let (bb, co, x) = (b.output_var("b"), b.output_var("co"), b.output_var("x"));
    let (ci, dx) = (b.reduce_var("ci"), b.reduce_var("dx"));
    let body = b.input(0, &[bb.at(), ci.at(), x.at() + dx.at()])
        * b.input(1, &[ci.at(), co.at(), dx.at()]);
    let desc = b.build_reduce(Reducer::Sum, body).expect("valid description");

    println!("conv1d strategies discovered by symbolic interval analysis:\n");
    for s in discover_strategies(&desc).expect("analysis succeeds") {
        let inputs: Vec<String> = s
            .inputs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let name = if i == 0 { "data" } else { "filters" };
                match r {
                    InputRequirement::Unused => format!("{name}: unused"),
                    InputRequirement::Replicated => format!("{name}: replicated"),
                    InputRequirement::Split { dim, halo } if halo.is_zero() => {
                        format!("{name}: split dim {dim}")
                    }
                    InputRequirement::Split { dim, halo } => {
                        format!("{name}: split dim {dim} + halo {halo}")
                    }
                }
            })
            .collect();
        println!("  {:<10} -> {}", s.id, inputs.join(", "));
    }

    // Numeric check of Fig. 2(a): batch split, outputs concatenated.
    let data = Tensor::random(Shape::new(vec![4, 3, 10]), 1, 1.0);
    let filters = Tensor::random(Shape::new(vec![3, 8, 3]), 2, 0.5);
    let p = Conv1dParams::default();
    let whole = data.conv1d(&filters, p).unwrap();

    let halves = data.split(0, 2).unwrap();
    let out = Tensor::concat(
        &[halves[0].conv1d(&filters, p).unwrap(), halves[1].conv1d(&filters, p).unwrap()],
        0,
    )
    .unwrap();
    assert!(out.allclose(&whole, 1e-5));
    println!("\nFig. 2(a) check: batch-split workers concatenate to the exact result");

    // Numeric check of Fig. 2(b): channel split, outputs reduced.
    let d = data.split(1, 3).unwrap();
    let f = filters.split(0, 3).unwrap();
    let mut partial = d[0].conv1d(&f[0], p).unwrap();
    for i in 1..3 {
        partial = partial.add(&d[i].conv1d(&f[i], p).unwrap()).unwrap();
    }
    assert!(partial.allclose(&whole, 1e-5));
    println!("Fig. 2(b) check: channel-split partial outputs sum to the exact result");
    println!(
        "\nThe reduce:ci strategy is the one the paper shows prior work missing\n\
         (§7.3) — it is what keeps weight-gradient computation memory-friendly."
    );
}
