//! Shared harness for the table/figure regenerator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index) and prints a side-by-side
//! comparison with the numbers the paper reports. Absolute values come from
//! a simulator, not the authors' testbed, so the comparison targets the
//! *shape* of each result: who wins, by roughly what factor, and where the
//! OOMs fall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tofu_core::baselines::Algorithm;
use tofu_core::recursive::PartitionOptions;
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{rnn, wresnet, RnnConfig, WResNetConfig};
use tofu_sim::{Machine, Outcome, TofuSimOptions};
use tofu_tensor::Tensor;

pub use tofu_obs::json::Json;

/// Formats an [`Outcome`] the way the paper's figures label bars.
pub fn fmt_outcome(o: &Outcome) -> String {
    match o {
        Outcome::Ran(p) => format!("{:>8.1}", p.throughput),
        Outcome::Oom { .. } => format!("{:>8}", "OOM"),
    }
}

/// Formats an optional paper number for the comparison column.
pub fn fmt_paper(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:>8.1}"),
        None => format!("{:>8}", "OOM"),
    }
}

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// The candidate global batch sizes swept by the figures, largest first.
pub fn batch_candidates() -> Vec<usize> {
    vec![512, 256, 128, 64, 32, 16, 8]
}

/// Builds a WResNet training graph for the given batch, `None` on failure.
pub fn wresnet_builder(layers: usize, width: usize) -> impl Fn(usize) -> Option<Graph> {
    move |batch| {
        wresnet(&WResNetConfig { layers, width, batch, ..Default::default() })
            .ok()
            .map(|m| m.graph)
    }
}

/// Builds an RNN training graph for the given batch, `None` on failure.
pub fn rnn_builder(layers: usize, hidden: usize) -> impl Fn(usize) -> Option<Graph> {
    move |batch| {
        rnn(&RnnConfig {
            layers,
            hidden,
            batch,
            steps: 20,
            embed: 1024,
            vocab: 4096,
            with_updates: true,
        })
        .ok()
        .map(|m| m.graph)
    }
}

/// Runs a partitioner + simulator sweep: the largest candidate batch whose
/// partitioned execution fits device memory. Returns the outcome and the
/// plan's search time for the winning batch.
pub fn partitioned_sweep(
    build: &dyn Fn(usize) -> Option<Graph>,
    algorithm: Algorithm,
    candidates: &[usize],
    machine: &Machine,
) -> (Outcome, std::time::Duration) {
    let mut worst_peak = 0.0f64;
    for &batch in candidates {
        let Some(g) = build(batch) else { continue };
        let plan = match tofu_core::baselines::run(&g, algorithm, machine.gpus) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let search = plan.search_time;
        match tofu_sim::run_partitioned(&g, &plan, batch, machine, &TofuSimOptions::default()) {
            Ok(run) => match run.outcome {
                Outcome::Ran(p) => return (Outcome::Ran(p), search),
                Outcome::Oom { peak_gb } => worst_peak = worst_peak.max(peak_gb),
            },
            Err(_) => continue,
        }
    }
    (Outcome::Oom { peak_gb: worst_peak }, std::time::Duration::ZERO)
}

/// Default partitioner options for the benches.
pub fn default_opts(workers: usize) -> PartitionOptions {
    PartitionOptions { workers, ..Default::default() }
}

/// Deterministic input/weight feeds for running a graph on the real runtime:
/// small random weights (fan-in scaled) and cyclic integer labels.
pub fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            let fan_in = (meta.shape.volume() / meta.shape.dim(0).max(1)).max(1);
            let scale = (3.0f32 / fan_in as f32).sqrt().min(0.5);
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, scale)
        };
        out.push((t, v));
    }
    out
}

/// Builds the standard bench-report envelope every `BENCH_*.json` file uses:
/// a `bench` name, caller-specific metadata fields, and a `results` array.
pub fn bench_report(bench: &str, fields: Vec<(&str, Json)>, results: Vec<Json>) -> Json {
    let mut pairs = vec![("bench", Json::from(bench))];
    pairs.extend(fields);
    pairs.push(("results", Json::Arr(results)));
    Json::obj(pairs)
}

/// Writes a report pretty-printed to `path` and announces it on stdout.
///
/// All bench binaries funnel their JSON output through this so the on-disk
/// format (and its escaping rules) lives in exactly one place.
pub fn write_report(path: &str, doc: &Json) {
    std::fs::write(path, doc.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

/// A paper reference number as JSON: the value, or `null` for OOM.
pub fn paper_json(v: Option<f64>) -> Json {
    v.map(Json::from).unwrap_or(Json::Null)
}

/// An [`Outcome`] as a JSON fragment: throughput + peak memory, or an OOM
/// marker with the peak that broke the budget.
pub fn outcome_json(o: &Outcome) -> Json {
    match o {
        Outcome::Ran(p) => Json::obj(vec![
            ("ran", Json::Bool(true)),
            ("throughput", Json::from(p.throughput)),
            ("iter_seconds", Json::from(p.iter_seconds)),
            ("batch", Json::from(p.batch)),
            ("peak_gb", Json::from(p.peak_gb)),
            ("comm_fraction", Json::from(p.comm_fraction)),
        ]),
        Outcome::Oom { peak_gb } => {
            Json::obj(vec![("ran", Json::Bool(false)), ("peak_gb", Json::from(*peak_gb))])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        let perf = tofu_sim::Perf {
            iter_seconds: 1.0,
            throughput: 42.0,
            batch: 8,
            peak_gb: 1.0,
            comm_fraction: 0.0,
        };
        assert!(fmt_outcome(&Outcome::Ran(perf)).contains("42.0"));
        assert!(fmt_outcome(&Outcome::Oom { peak_gb: 1.0 }).contains("OOM"));
        assert!(fmt_paper(Some(4.2)).contains("4.2"));
        assert!(fmt_paper(None).contains("OOM"));
    }

    #[test]
    fn builders_produce_graphs() {
        assert!(wresnet_builder(50, 4)(2).is_some());
        assert!(rnn_builder(2, 64)(4).is_some());
        assert!(wresnet_builder(42, 4)(2).is_none());
    }

    #[test]
    fn bench_report_round_trips() {
        let doc = bench_report(
            "unit",
            vec![("workers", Json::from(4u64))],
            vec![Json::obj(vec![("ok", Json::Bool(true))])],
        );
        let back = tofu_obs::json::parse(&doc.to_json_pretty()).unwrap();
        assert_eq!(back.get("bench").and_then(Json::as_str), Some("unit"));
        assert_eq!(back.get("workers").and_then(Json::as_f64), Some(4.0));
        assert_eq!(back.get("results").and_then(Json::as_array).map(|a| a.len()), Some(1));
    }

    #[test]
    fn outcome_json_tags_oom() {
        let perf = tofu_sim::Perf {
            iter_seconds: 1.0,
            throughput: 42.0,
            batch: 8,
            peak_gb: 1.0,
            comm_fraction: 0.25,
        };
        assert_eq!(outcome_json(&Outcome::Ran(perf)).get("ran").and_then(Json::as_bool), Some(true));
        let oom = outcome_json(&Outcome::Oom { peak_gb: 13.0 });
        assert_eq!(oom.get("ran").and_then(Json::as_bool), Some(false));
        assert_eq!(oom.get("peak_gb").and_then(Json::as_f64), Some(13.0));
    }
}
