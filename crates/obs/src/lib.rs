//! Unified observability for the Tofu stack: lightweight spans,
//! monotonically-timestamped events and named counters, with a Chrome-trace
//! JSON exporter ([`chrome`]) so a measured runtime trace, a simulated
//! timeline and the partition search's statistics overlay in one
//! `chrome://tracing` / Perfetto view.
//!
//! The crate is **zero-dependency** (std only) and cheap to leave disabled:
//! every instrumentation site in the workspace holds an
//! `Option<`[`Collector`]`>` and a disabled collector is simply `None` — the
//! per-event cost of a disabled site is one discriminant check, no clock
//! read, no allocation, no lock.
//!
//! # Event schema
//!
//! Every [`Event`] lives on a [`Track`] — a `(pid, tid)` pair in
//! Chrome-trace terms. Processes group the three layers:
//!
//! - `pid 100 + d` — **runtime** device `d` (measured, wall-clock µs);
//! - `pid 200 + d` — **sim** device `d` (predicted, simulated µs);
//! - `pid 1` — the **partition search** (DP statistics);
//! - `pid 2` — **runtime control** (attempts, recovery, aborts).
//!
//! Within a track three phases exist: [`Phase::Complete`] spans (an op, a
//! transfer, a recv-wait), [`Phase::Instant`] markers (checkpoint, abort)
//! and [`Phase::Counter`] samples (pool bytes, link bytes, DP frontier).
//! The runtime and the simulator emit the *same* span names for the same
//! sharded graph — op spans are named by node name — so the two process
//! groups line up row for row.
//!
//! # Example
//!
//! ```
//! use tofu_obs::{Collector, Track};
//!
//! let obs = Collector::new();
//! let t0 = obs.now_us();
//! // ... work ...
//! obs.complete(Track::runtime(0), "op", "fc0", t0, obs.now_us());
//! obs.counter(Track::runtime(0), "pool bytes", obs.now_us(), 4096.0);
//! obs.add_total("dp/states_explored", 12.0);
//! let json = tofu_obs::chrome::chrome_trace_json(&obs.events());
//! assert!(json.contains("traceEvents"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process id of the partition-search track.
pub const PID_SEARCH: u32 = 1;
/// Process id of the runtime-control track (attempts, aborts, recovery).
pub const PID_CONTROL: u32 = 2;
/// Process id of the plan-service track (request spans, queue counters).
pub const PID_SERVE: u32 = 3;
/// Base process id of the measured runtime devices (`pid = base + device`).
pub const PID_RUNTIME_BASE: u32 = 100;
/// Base process id of the simulated devices (`pid = base + device`).
pub const PID_SIM_BASE: u32 = 200;

/// Where an event lives: one Chrome-trace `(pid, tid)` lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Chrome-trace process id (one per device and process group).
    pub pid: u32,
    /// Chrome-trace thread id within the process (0 = main lane).
    pub tid: u32,
}

impl Track {
    /// The measured-runtime lane of a device.
    pub fn runtime(device: usize) -> Track {
        Track { pid: PID_RUNTIME_BASE + device as u32, tid: 0 }
    }

    /// The simulated lane of a device.
    pub fn sim(device: usize) -> Track {
        Track { pid: PID_SIM_BASE + device as u32, tid: 0 }
    }

    /// The simulated link lane of a device (transfers it sends).
    pub fn sim_link(device: usize) -> Track {
        Track { pid: PID_SIM_BASE + device as u32, tid: 1 }
    }

    /// The partition-search lane.
    pub fn search() -> Track {
        Track { pid: PID_SEARCH, tid: 0 }
    }

    /// The runtime-control lane (run attempts, aborts, recovery).
    pub fn control() -> Track {
        Track { pid: PID_CONTROL, tid: 0 }
    }

    /// The plan-service lane (per-request spans, admission/queue counters).
    pub fn serve() -> Track {
        Track { pid: PID_SERVE, tid: 0 }
    }

    /// The device a runtime/sim track belongs to, if any.
    pub fn device(&self) -> Option<usize> {
        if self.pid >= PID_SIM_BASE {
            Some((self.pid - PID_SIM_BASE) as usize)
        } else if self.pid >= PID_RUNTIME_BASE {
            Some((self.pid - PID_RUNTIME_BASE) as usize)
        } else {
            None
        }
    }
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned integer payload (ids, byte counts).
    U64(u64),
    /// Floating payload.
    F64(f64),
    /// String payload.
    Str(String),
}

/// What kind of mark an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// A span with a duration (Chrome `ph: "X"`).
    Complete {
        /// Span length in microseconds.
        dur_us: f64,
    },
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant,
    /// A sampled counter value (Chrome `ph: "C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One trace event. Timestamps are microseconds: wall-clock micros since the
/// collector's epoch for measured tracks, simulated micros since iteration
/// start for sim tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span/marker/counter name. Op spans use the graph node's name so the
    /// runtime and sim lanes align.
    pub name: String,
    /// Category (`op`, `wait`, `comm`, `pool`, `abort`, `ckpt`, `search`).
    pub cat: &'static str,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// The lane this event lives on.
    pub track: Track,
    /// Complete / instant / counter.
    pub phase: Phase,
    /// Optional structured arguments.
    pub args: Vec<(&'static str, Arg)>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Mutex<Vec<Event>>,
    totals: Mutex<BTreeMap<String, f64>>,
}

/// A shared, thread-safe event sink. Clones are handles to the same sink.
///
/// Hot paths should not lock per event: batch into a local `Vec<Event>` (see
/// [`SpanBuffer`]) and [`Collector::record_all`] once per worker.
#[derive(Debug, Clone)]
pub struct Collector {
    inner: Arc<Inner>,
    epoch: Instant,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A fresh, enabled collector; its epoch (timestamp zero) is now.
    pub fn new() -> Collector {
        Collector { inner: Arc::new(Inner::default()), epoch: Instant::now() }
    }

    /// Microseconds elapsed since the collector's epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Records one event.
    pub fn record(&self, event: Event) {
        self.inner.events.lock().expect("obs lock").push(event);
    }

    /// Records a batch of events with one lock acquisition.
    pub fn record_all(&self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        self.inner.events.lock().expect("obs lock").extend(events);
    }

    /// Records a complete span `[start_us, end_us)`.
    pub fn complete(&self, track: Track, cat: &'static str, name: &str, start_us: f64, end_us: f64) {
        self.record(Event {
            name: name.to_string(),
            cat,
            ts_us: start_us,
            track,
            phase: Phase::Complete { dur_us: (end_us - start_us).max(0.0) },
            args: Vec::new(),
        });
    }

    /// Records an instant marker.
    pub fn instant(&self, track: Track, cat: &'static str, name: &str) {
        let ts = self.now_us();
        self.record(Event {
            name: name.to_string(),
            cat,
            ts_us: ts,
            track,
            phase: Phase::Instant,
            args: Vec::new(),
        });
    }

    /// Records a counter sample.
    pub fn counter(&self, track: Track, name: &str, ts_us: f64, value: f64) {
        self.record(Event {
            name: name.to_string(),
            cat: "counter",
            ts_us,
            track,
            phase: Phase::Counter { value },
            args: Vec::new(),
        });
    }

    /// Adds `delta` to the named running total (created at zero). Totals are
    /// aggregate statistics with no timeline — states explored, strategies
    /// enumerated — read back with [`Collector::totals`].
    pub fn add_total(&self, name: &str, delta: f64) {
        *self.inner.totals.lock().expect("obs lock").entry(name.to_string()).or_insert(0.0) +=
            delta;
    }

    /// Sets the named total to `value` (for gauges like frontier maxima).
    pub fn max_total(&self, name: &str, value: f64) {
        let mut totals = self.inner.totals.lock().expect("obs lock");
        let e = totals.entry(name.to_string()).or_insert(value);
        if value > *e {
            *e = value;
        }
    }

    /// Snapshot of every recorded event, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().expect("obs lock").clone()
    }

    /// Snapshot of the named running totals.
    pub fn totals(&self) -> BTreeMap<String, f64> {
        self.inner.totals.lock().expect("obs lock").clone()
    }

    /// Snapshot of the instant events in one category, in record order —
    /// the convenient view onto control-track narratives like the elastic
    /// ladder's `"elastic"`/`"churn"`/`"recovery"` markers.
    pub fn instants(&self, cat: &str) -> Vec<Event> {
        self.inner
            .events
            .lock()
            .expect("obs lock")
            .iter()
            .filter(|e| e.cat == cat && matches!(e.phase, Phase::Instant))
            .cloned()
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().expect("obs lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A local buffer bound to one track of this collector; flush it once at
    /// the end of the worker's run.
    pub fn buffer(&self, track: Track) -> SpanBuffer {
        SpanBuffer { collector: self.clone(), track, events: Vec::new() }
    }
}

/// A per-thread event buffer: events accumulate lock-free and are handed to
/// the collector in one batch by [`SpanBuffer::flush`] (also on drop).
#[derive(Debug)]
pub struct SpanBuffer {
    collector: Collector,
    /// Default lane for events pushed through the convenience methods.
    pub track: Track,
    events: Vec<Event>,
}

impl SpanBuffer {
    /// Microseconds since the owning collector's epoch.
    pub fn now_us(&self) -> f64 {
        self.collector.now_us()
    }

    /// Buffers a complete span.
    pub fn complete(&mut self, cat: &'static str, name: &str, start_us: f64, end_us: f64) {
        self.push(Event {
            name: name.to_string(),
            cat,
            ts_us: start_us,
            track: self.track,
            phase: Phase::Complete { dur_us: (end_us - start_us).max(0.0) },
            args: Vec::new(),
        });
    }

    /// Buffers an instant marker at the current time.
    pub fn instant(&mut self, cat: &'static str, name: &str) {
        let ts = self.now_us();
        self.push(Event {
            name: name.to_string(),
            cat,
            ts_us: ts,
            track: self.track,
            phase: Phase::Instant,
            args: Vec::new(),
        });
    }

    /// Buffers a counter sample.
    pub fn counter(&mut self, name: &str, ts_us: f64, value: f64) {
        self.push(Event {
            name: name.to_string(),
            cat: "counter",
            ts_us,
            track: self.track,
            phase: Phase::Counter { value },
            args: Vec::new(),
        });
    }

    /// Buffers a fully-specified event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of buffered (unflushed) events.
    pub fn pending(&self) -> usize {
        self.events.len()
    }

    /// Hands the buffered events to the collector.
    pub fn flush(&mut self) {
        self.collector.record_all(std::mem::take(&mut self.events));
    }
}

impl Drop for SpanBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instants_filters_by_category_and_phase() {
        let c = Collector::new();
        c.instant(Track::control(), "churn", "device 3 rejoined");
        c.complete(Track::control(), "churn", "reshard", 1.0, 2.0);
        c.instant(Track::control(), "elastic", "device 1 lost (permanent)");
        c.instant(Track::control(), "churn", "device 3 left");
        let churn = c.instants("churn");
        assert_eq!(churn.len(), 2);
        assert_eq!(churn[0].name, "device 3 rejoined");
        assert_eq!(churn[1].name, "device 3 left");
        assert_eq!(c.instants("elastic").len(), 1);
        assert!(c.instants("nope").is_empty());
    }

    #[test]
    fn clock_is_monotone() {
        let c = Collector::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn records_and_snapshots() {
        let c = Collector::new();
        c.complete(Track::runtime(0), "op", "fc0", 1.0, 5.0);
        c.instant(Track::control(), "abort", "abort observed");
        c.counter(Track::runtime(0), "pool bytes", 2.0, 1024.0);
        assert_eq!(c.len(), 3);
        let ev = c.events();
        assert_eq!(ev[0].phase, Phase::Complete { dur_us: 4.0 });
        assert_eq!(ev[2].phase, Phase::Counter { value: 1024.0 });
        assert!(!c.is_empty());
    }

    #[test]
    fn totals_accumulate_and_max() {
        let c = Collector::new();
        c.add_total("dp/states_explored", 5.0);
        c.add_total("dp/states_explored", 7.0);
        c.max_total("dp/frontier_width_max", 3.0);
        c.max_total("dp/frontier_width_max", 2.0);
        let t = c.totals();
        assert_eq!(t["dp/states_explored"], 12.0);
        assert_eq!(t["dp/frontier_width_max"], 3.0);
    }

    #[test]
    fn clones_share_the_sink() {
        let c = Collector::new();
        let d = c.clone();
        d.instant(Track::search(), "search", "step");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn buffer_flushes_once() {
        let c = Collector::new();
        {
            let mut b = c.buffer(Track::runtime(1));
            b.complete("op", "relu", 0.0, 1.0);
            b.counter("pool bytes", 1.0, 64.0);
            assert_eq!(b.pending(), 2);
            assert_eq!(c.len(), 0, "nothing reaches the sink before flush");
        }
        assert_eq!(c.len(), 2, "drop flushes");
    }

    #[test]
    fn tracks_map_to_devices() {
        assert_eq!(Track::runtime(3).device(), Some(3));
        assert_eq!(Track::sim(5).device(), Some(5));
        assert_eq!(Track::search().device(), None);
        assert_ne!(Track::runtime(0).pid, Track::sim(0).pid);
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        let c = Collector::new();
        c.complete(Track::sim(0), "op", "x", 5.0, 3.0);
        assert_eq!(c.events()[0].phase, Phase::Complete { dur_us: 0.0 });
    }
}
