//! Deterministic random tensor construction for tests and examples.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{Shape, Tensor};

impl Tensor {
    /// Creates a tensor with elements drawn uniformly from `[-scale, scale)`
    /// using a fixed seed, so validation runs are reproducible.
    pub fn random(shape: Shape, seed: u64, scale: f32) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.volume()).map(|_| rng.gen_range(-scale..scale)).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Tensor::random(Shape::new(vec![4, 4]), 1, 1.0);
        let b = Tensor::random(Shape::new(vec![4, 4]), 1, 1.0);
        let c = Tensor::random(Shape::new(vec![4, 4]), 2, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_respects_scale() {
        let t = Tensor::random(Shape::new(vec![100]), 3, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }
}
