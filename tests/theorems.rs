//! Tests of the paper's formal claims (appendix A): Theorem 1
//! (commutativity of basic steps), Theorem 2 (non-decreasing per-step
//! costs) and Theorem 3 (the recursion is no worse than other orderings),
//! plus the §5.2 factorization rules.

use tofu::core::{factorize, partition, PartitionOptions};
use tofu::core::recursive::partition_with_coarse;
use tofu::core::coarsen;
use tofu::models::{mlp, rnn, small_cnn, MlpConfig, RnnConfig, SmallCnnConfig};

#[test]
fn factorization_descends() {
    for k in 2..=64 {
        let f = factorize(k).unwrap();
        assert_eq!(f.iter().product::<usize>(), k);
        for pair in f.windows(2) {
            assert!(pair[0] >= pair[1], "k={k}: {f:?}");
        }
    }
}

#[test]
fn theorem_2_monotone_deltas_across_model_families() {
    let models = [
        mlp(&MlpConfig { batch: 64, dims: vec![128, 256, 128], classes: 32, with_updates: true })
            .unwrap(),
        rnn(&RnnConfig {
            layers: 2,
            hidden: 128,
            batch: 32,
            steps: 4,
            embed: 64,
            vocab: 64,
            with_updates: true,
        })
        .unwrap(),
        small_cnn(&SmallCnnConfig {
            batch: 16,
            channels: 4,
            image: 16,
            conv_channels: 16,
            conv_layers: 2,
            classes: 8,
        })
        .unwrap(),
    ];
    for model in &models {
        let plan =
            partition(&model.graph, &PartitionOptions { workers: 8, ..Default::default() })
                .unwrap();
        let deltas = plan.step_costs();
        assert_eq!(deltas.len(), 3);
        for pair in deltas.windows(2) {
            // Small slack absorbs the fetch-buffer bookkeeping.
            assert!(
                pair[0] <= pair[1] * 1.05 + 4096.0,
                "deltas decreased: {deltas:?}"
            );
        }
    }
}

#[test]
fn theorem_1_commutativity_of_factor_order() {
    // 6 workers as 3x2 vs 2x3: the costs agree within bookkeeping slack
    // because basic plans commute (appendix Theorem 1). The 3x2 order is
    // what the paper mandates (ki >= ki+1); 2x3 must not be cheaper by more
    // than noise.
    let model =
        mlp(&MlpConfig { batch: 36, dims: vec![72, 144], classes: 12, with_updates: false })
            .unwrap();
    let opts = PartitionOptions { workers: 6, ..Default::default() };
    let cg = coarsen(&model.graph);
    let forward =
        partition_with_coarse(&model.graph, &cg, &[3, 2], &opts, std::time::Instant::now())
            .unwrap();
    let backward =
        partition_with_coarse(&model.graph, &cg, &[2, 3], &opts, std::time::Instant::now())
            .unwrap();
    let (a, b) = (forward.total_comm_bytes(), backward.total_comm_bytes());
    assert!(
        (a - b).abs() <= 0.1 * a.max(b) + 4096.0,
        "orders disagree: 3x2 = {a}, 2x3 = {b}"
    );
}

#[test]
fn theorem_3_recursion_not_worse_than_flat_chop() {
    for batch in [32usize, 128] {
        let model = mlp(&MlpConfig {
            batch,
            dims: vec![256, 256],
            classes: 16,
            with_updates: true,
        })
        .unwrap();
        let opts = PartitionOptions { workers: 8, ..Default::default() };
        let cg = coarsen(&model.graph);
        let recursive =
            partition_with_coarse(&model.graph, &cg, &[2, 2, 2], &opts, std::time::Instant::now())
                .unwrap();
        let flat =
            partition_with_coarse(&model.graph, &cg, &[8], &opts, std::time::Instant::now())
                .unwrap();
        assert!(
            recursive.total_comm_bytes() <= flat.total_comm_bytes() * 1.01 + 4096.0,
            "recursion worse than flat: {} vs {}",
            recursive.total_comm_bytes(),
            flat.total_comm_bytes()
        );
    }
}

#[test]
fn per_gpu_memory_is_one_over_k() {
    // §2: "each device roughly consumes 1/k times the total memory".
    let model = mlp(&MlpConfig {
        batch: 64,
        dims: vec![256, 256, 256],
        classes: 32,
        with_updates: true,
    })
    .unwrap();
    for workers in [2usize, 4, 8] {
        let plan = partition(
            &model.graph,
            &PartitionOptions { workers, ..Default::default() },
        )
        .unwrap();
        let mut split_bytes = 0u64;
        let mut total_bytes = 0u64;
        for t in model.graph.tensor_ids() {
            let bytes = model.graph.tensor(t).shape.bytes();
            total_bytes += bytes;
            split_bytes += (bytes as f64 * plan.shard_fraction(t) * workers as f64) as u64;
        }
        // Per-worker x workers should stay close to the single-device total
        // (replicated scalars add a little).
        assert!(
            (split_bytes as f64) < total_bytes as f64 * 1.1,
            "workers {workers}: sharding inflated memory"
        );
    }
}
