//! Zero-copy transport accounting and slab-allocator property tests.
//!
//! The data plane's contract after the hot-path overhaul: a fault-free run
//! moves every cross-worker piece by refcount — the only payload copy is the
//! one extraction into a slab buffer at send, so the per-worker
//! `transport_copy_bytes` counter must read zero. The slab itself must never
//! alias two live pieces and must recycle buffers only once every holder of
//! a payload has dropped it.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{run_with_options, FaultRng, IntegrityLevel, PieceRef, PieceSlab, RunOptions};
use tofu_tensor::{Shape, Tensor};

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

fn shard(workers: usize) -> (ShardedGraph, Vec<(TensorId, Tensor)>) {
    let m = mlp(&MlpConfig { batch: 8, dims: vec![16, 16], classes: 8, with_updates: true })
        .unwrap();
    let plan = partition(&m.graph, &PartitionOptions { workers, ..Default::default() }).unwrap();
    let sharded = generate(&m.graph, &plan, &GenOptions::default()).unwrap();
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(&m.graph) {
        shard_feeds.extend(sharded.scatter(t, &v).unwrap());
    }
    (sharded, shard_feeds)
}

/// The fault-free transport performs zero payload copies between producer
/// send and consumer stash, at every integrity level — integrity checks
/// read the payload, they never copy it.
#[test]
fn fault_free_transport_copies_zero_bytes() {
    for workers in [2, 4] {
        let (sharded, shard_feeds) = shard(workers);
        for integrity in [IntegrityLevel::Fast, IntegrityLevel::Sequenced, IntegrityLevel::Full] {
            let opts = RunOptions { integrity, ..Default::default() };
            let out = run_with_options(&sharded, &shard_feeds, &opts).expect("run");
            let messages: u64 = out.trace.links.iter().map(|l| l.messages).sum();
            let copied: u64 = out.trace.workers.iter().map(|w| w.transport_copy_bytes).sum();
            assert!(messages > 0, "w={workers}: expected cross-worker traffic");
            assert!(out.trace.comm_bytes() > 0, "w={workers}: expected comm bytes");
            assert_eq!(
                copied, 0,
                "w={workers} {integrity:?}: transport copied {copied} payload bytes"
            );
        }
    }
}

/// Skipping the integrity checks must not change a single output bit — the
/// levels gate verification, never the data path.
#[test]
fn fast_integrity_output_matches_full_bit_identically() {
    let (sharded, shard_feeds) = shard(4);
    let full = run_with_options(
        &sharded,
        &shard_feeds,
        &RunOptions { integrity: IntegrityLevel::Full, ..Default::default() },
    )
    .expect("full run");
    let fast = run_with_options(
        &sharded,
        &shard_feeds,
        &RunOptions { integrity: IntegrityLevel::Fast, ..Default::default() },
    )
    .expect("fast run");
    let bits = |m: &BTreeMap<TensorId, Tensor>| -> Vec<(TensorId, Vec<u32>)> {
        m.iter().map(|(t, v)| (*t, v.data().iter().map(|x| x.to_bits()).collect())).collect()
    };
    assert_eq!(bits(&full.values), bits(&fast.values), "integrity level changed outputs");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Live pieces sealed from one slab never alias: each keeps the bytes it
    /// was sealed with, no matter how allocation, sealing, cloning and
    /// reclamation interleave.
    #[test]
    fn slab_pieces_never_alias(
        high_water in 1usize..8,
        lens in prop::collection::vec(1usize..32, 1..24),
        seed in 0u64..1_000_000_000,
    ) {
        let mut rng = FaultRng::new(seed);
        let mut slab = PieceSlab::new(high_water);
        let mut live: Vec<(PieceRef, f32)> = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let tag = i as f32 + 1.0;
            let mut buf = slab.alloc(len);
            buf.extend(std::iter::repeat_n(tag, len));
            let piece = slab.seal(Shape::new(vec![len]), buf);
            // Clones share the payload; dropping one must not free it.
            let clone = piece.clone();
            prop_assert_eq!(clone.data().as_ptr(), piece.data().as_ptr());
            drop(clone);
            live.push((piece, tag));
            // Randomly drop a live piece and force reclamation, so freed
            // buffers re-enter the freelist mid-sequence.
            if rng.below(3) == 0 && !live.is_empty() {
                let victim = rng.below(live.len() as u64) as usize;
                live.swap_remove(victim);
                slab.reclaim();
            }
        }
        for (piece, tag) in &live {
            prop_assert!(
                piece.data().iter().all(|v| v == tag),
                "piece tagged {} was overwritten (slab aliased a live payload)", tag
            );
        }
    }

    /// Reclamation accounting: only fully released payloads return to the
    /// freelist, every seal is an alloc or a reuse, and once every piece is
    /// dropped the slab recovers all of them.
    #[test]
    fn slab_reclaims_exactly_the_released_buffers(
        high_water in 1usize..6,
        lens in prop::collection::vec(1usize..16, 1..20),
        keep_mask in prop::collection::vec(0u32..2, 20..21),
    ) {
        let mut slab = PieceSlab::new(high_water);
        let mut kept: Vec<PieceRef> = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let mut buf = slab.alloc(len);
            buf.extend(std::iter::repeat_n(0.5, len));
            let piece = slab.seal(Shape::new(vec![len]), buf);
            if keep_mask[i] == 1 {
                kept.push(piece);
            }
            // Sealing past the high-water mark triggers reclamation, so the
            // tracking list stays bounded by high_water plus the live count.
            prop_assert!(
                slab.outstanding() <= high_water.max(1) + kept.len(),
                "outstanding {} exceeds high-water {} + {} live pieces",
                slab.outstanding(), high_water, kept.len()
            );
        }
        prop_assert_eq!(slab.allocs() + slab.reuses(), lens.len() as u64);
        let dropped = lens.len() - kept.len();
        // Dropping the survivors releases every payload; one sweep must
        // recover them all.
        kept.clear();
        slab.reclaim();
        prop_assert_eq!(slab.outstanding(), 0);
        prop_assert_eq!(slab.reclaimed(), lens.len() as u64);
        prop_assert!(slab.free_buffers() >= 1);
        // Reuse actually happens once something was freed before a later
        // alloc — sanity-check the counter is wired at all when every piece
        // was dropped immediately and the sequence is long enough.
        if dropped == lens.len() && lens.len() > high_water + 1 {
            prop_assert!(
                slab.reuses() > 0,
                "no buffer reuse across {} seals with everything droppable", lens.len()
            );
        }
    }
}
