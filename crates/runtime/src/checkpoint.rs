//! Checkpoint-restart recovery.
//!
//! A [`CheckpointPolicy`] makes every worker snapshot its live values at
//! *barrier* positions derived from a global order. With
//! [`BarrierUnit::ShardedSteps`] checkpoint `k` covers the first `k·every`
//! nodes of the sharded graph's topological order; with
//! [`BarrierUnit::OriginalSteps`] it covers every generated node whose
//! *origin* is among the first `k·every` nodes of the **original** graph —
//! a plan-independent boundary, so checkpoint `k` means the same original
//! prefix under every worker count (the property elastic resharding relies
//! on). Each worker's local cut for `k` is the length of its schedule prefix
//! inside that global prefix. Workers cross their cuts asynchronously; a
//! checkpoint is *consistent* once every worker has recorded it.
//!
//! Consistency argument (see DESIGN.md "Failure model"): a worker's values
//! map after its cut prefix is a pure function of the feeds, because worker
//! schedules are subsequences of one topological order and kernels are
//! deterministic. On restart from checkpoint `k`, channels are empty, so the
//! only missing state is messages: every piece a not-yet-executed consumer
//! needs is either produced *after* the sender's cut (re-sent naturally
//! during replay) or *before* it (replayed from the snapshot as an "owed
//! send" at resume startup). Pieces whose consumers already ran are not
//! re-sent. Hence the resumed run receives exactly the healthy run's
//! messages, and its output is bit-identical.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use tofu_core::ShardedGraph;
use tofu_graph::TensorId;
use tofu_tensor::Tensor;

use crate::elastic::ElasticPolicy;
use crate::error::RunFailure;
use crate::fault::FaultRng;
use crate::RunOutput;

/// Which schedule the checkpoint barriers count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BarrierUnit {
    /// Barriers every `every` nodes of the *sharded* graph's global
    /// topological order. Cheap and fine for same-plan restart, but the
    /// barriers of two different plans cover different original prefixes.
    #[default]
    ShardedSteps,
    /// Barriers every `every` nodes of the **original** graph: a generated
    /// node is inside barrier `b` iff its origin node's id is `< b·every`.
    /// Checkpoint `k` then denotes the same original-graph prefix under
    /// every worker count, which is what lets elastic recovery reshard a
    /// snapshot onto a different plan.
    OriginalSteps,
}

/// Snapshot cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot after every `every` nodes (of the schedule `unit` selects).
    pub every: usize,
    /// Which schedule the barrier counts.
    pub unit: BarrierUnit,
    /// Scan snapshot values for NaN/Inf before committing; a hit fails the
    /// run with [`RuntimeError::PoisonedCheckpoint`](crate::RuntimeError)
    /// instead of persisting a state recovery would faithfully resume into.
    pub poison_check: bool,
}

impl CheckpointPolicy {
    /// Snapshot every `n` sharded-graph schedule steps (poison check on).
    pub fn every(n: usize) -> CheckpointPolicy {
        CheckpointPolicy { every: n, unit: BarrierUnit::ShardedSteps, poison_check: true }
    }

    /// Snapshot every `n` *original-graph* nodes — the plan-independent
    /// barriers elastic recovery reshards across (poison check on).
    pub fn every_original(n: usize) -> CheckpointPolicy {
        CheckpointPolicy { every: n, unit: BarrierUnit::OriginalSteps, poison_check: true }
    }
}

/// Retry policy of [`run_with_recovery`](crate::run_with_recovery) and
/// [`run_with_elastic_recovery`](crate::run_with_elastic_recovery).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOptions {
    /// Total attempts per worker count (first run included). At least 1.
    pub max_attempts: usize,
    /// Base sleep before the first retry; later delays follow a
    /// decorrelated-jitter schedule (see [`BackoffSchedule`]).
    pub backoff: Duration,
    /// Hard ceiling on any single retry delay.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream, so fault-suite timing is
    /// reproducible run to run.
    pub jitter_seed: u64,
    /// When set, exhausting `max_attempts` shrinks the worker set per this
    /// policy instead of giving up, and scripted rejoins grow it back
    /// (elastic recovery). Ignored by plain
    /// [`run_with_recovery`](crate::run_with_recovery).
    pub elastic: Option<ElasticPolicy>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
            elastic: None,
        }
    }
}

/// Deterministic decorrelated-jitter retry schedule (the AWS
/// "decorrelated jitter" recurrence, made reproducible by seeding the
/// jitter from [`FaultRng`]): each delay is
/// `min(cap, base + frac · (3·prev − base))` with `frac` uniform in
/// `[0, 1)`. Delays never exceed `cap` — the fix for the former unbounded
/// `backoff · 2^attempt` growth — and a zero `base` yields zero delays.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: FaultRng,
}

impl BackoffSchedule {
    /// A schedule starting at `base`, capped at `cap`, jitter-seeded by
    /// `seed`. Equal arguments yield the identical delay sequence.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> BackoffSchedule {
        BackoffSchedule { base, cap, prev: base, rng: FaultRng::new(seed) }
    }

    /// [`BackoffSchedule::new`] from a [`RecoveryOptions`].
    pub fn from_recovery(r: &RecoveryOptions) -> BackoffSchedule {
        BackoffSchedule::new(r.backoff, r.max_backoff, r.jitter_seed)
    }

    /// The next delay to sleep before retrying.
    pub fn next_delay(&mut self) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        // 53-bit mantissa fraction in [0, 1); f64 arithmetic is exact enough
        // for scheduling and bit-deterministic across runs.
        let frac = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let base = self.base.as_secs_f64();
        let spread = (3.0 * self.prev.as_secs_f64() - base).max(0.0);
        let next = (base + frac * spread).min(self.cap.as_secs_f64());
        self.prev = Duration::from_secs_f64(next);
        self.prev
    }
}

/// One attempt of a recovery ladder, for latency accounting: which worker
/// set ran, what it resumed from, and where the time went.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Worker count of this attempt.
    pub width: usize,
    /// Physical devices the logical workers mapped to.
    pub devices: Vec<usize>,
    /// Checkpoint the attempt resumed from (`None` = from scratch).
    pub resumed_from: Option<usize>,
    /// Time spent re-running the partition search before this attempt
    /// (`None` when the previous attempt's plan was reused).
    pub replan: Option<Duration>,
    /// Time spent resharding the carried snapshot onto this attempt's plan.
    pub reshard: Option<Duration>,
    /// Bytes of full-tensor snapshot moved by that reshard.
    pub reshard_bytes: u64,
    /// Slowest peer abort-detection latency, for failed attempts.
    pub detection: Option<Duration>,
    /// Wall-clock of the attempt itself.
    pub wall: Duration,
    /// Whether the attempt succeeded.
    pub ok: bool,
    /// Set when the attempt stopped *voluntarily* at this checkpoint barrier
    /// so the elastic ladder could grow onto a joining device (neither a
    /// success nor a failure).
    pub yielded: Option<usize>,
}

/// What a recovered run hands back: the (verified-resumable) output plus the
/// failure history that led to it.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The successful run's output.
    pub output: RunOutput,
    /// Attempts consumed, first run included.
    pub attempts: usize,
    /// The failure of every aborted attempt, in order.
    pub failures: Vec<RunFailure>,
    /// Per retry: the checkpoint it resumed from (`None` = clean restart).
    pub resumed_from: Vec<Option<usize>>,
    /// Per attempt (first run included): worker set, resume point and
    /// latency breakdown, so tooling can assert detection → replan → resume
    /// budgets.
    pub history: Vec<AttemptRecord>,
}

/// Per-worker cut positions of every checkpoint: `cuts[k - 1][w]` is the
/// local schedule prefix worker `w` must complete for checkpoint `k`.
pub(crate) fn checkpoint_cuts(sharded: &ShardedGraph, policy: CheckpointPolicy) -> Vec<Vec<usize>> {
    let k = sharded.workers;
    let every = policy.every;
    // Per node: its position in the order the barriers count.
    let (n, pos_of): (usize, Vec<usize>) = match policy.unit {
        BarrierUnit::ShardedSteps => {
            // Global topological position (node_ids is the schedule order).
            let n = sharded.graph.num_nodes();
            let mut global_pos = vec![0usize; n];
            for (i, id) in sharded.graph.node_ids().enumerate() {
                global_pos[id.0] = i;
            }
            (n, global_pos)
        }
        BarrierUnit::OriginalSteps => {
            (sharded.original_nodes(), sharded.origin_of_node.iter().map(|o| o.0).collect())
        }
    };
    let mut cuts = Vec::new();
    let mut barrier = every;
    while barrier < n {
        let cut: Vec<usize> = (0..k)
            .map(|w| {
                sharded.worker_schedule(w).iter().filter(|id| pos_of[id.0] < barrier).count()
            })
            .collect();
        cuts.push(cut);
        barrier += every;
    }
    cuts
}

/// A consistent checkpoint selected for resumption.
#[derive(Debug, Clone)]
pub(crate) struct ResumePoint {
    /// 1-based checkpoint id.
    pub ckpt: usize,
    /// Local cut per worker.
    pub cuts: Vec<usize>,
    /// Snapshot values per worker. Payloads are `Arc`-shared with the live
    /// run that recorded them — a barrier clones refcounts, not tensors.
    pub values: Vec<BTreeMap<TensorId, Arc<Tensor>>>,
}

/// Observer of checkpoints the moment they become *consistent* (recorded by
/// every worker). The durable layer hangs off this hook: the last worker to
/// record checkpoint `k` drives the sink, so persistence happens exactly
/// once per checkpoint without any extra barrier. A sink error fails that
/// worker and aborts the run like any other worker-local failure.
pub(crate) trait CheckpointSink: Send + Sync {
    /// Called once per checkpoint, on the worker thread that completed it.
    /// `values[w]` is worker `w`'s snapshot at the barrier.
    fn on_consistent(
        &self,
        sharded: &ShardedGraph,
        worker: usize,
        ckpt: usize,
        values: &[BTreeMap<TensorId, Arc<Tensor>>],
    ) -> crate::Result<()>;
}

/// Snapshots recorded so far, keyed by `(checkpoint, worker)`. Shared across
/// the attempts of one `run_with_recovery` call. Values are `Arc`-shared
/// with the recording worker's live map, so a barrier costs one refcount
/// bump per live tensor instead of a deep copy of the whole value map.
#[derive(Default)]
pub(crate) struct CheckpointStore {
    snaps: BTreeMap<(usize, usize), BTreeMap<TensorId, Arc<Tensor>>>,
    sink: Option<Arc<dyn CheckpointSink>>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("snaps", &self.snaps.keys().collect::<Vec<_>>())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl CheckpointStore {
    /// A store that notifies `sink` as each checkpoint becomes consistent.
    pub(crate) fn with_sink(sink: Arc<dyn CheckpointSink>) -> CheckpointStore {
        CheckpointStore { snaps: BTreeMap::new(), sink: Some(sink) }
    }

    /// The configured sink, if any.
    pub(crate) fn sink(&self) -> Option<Arc<dyn CheckpointSink>> {
        self.sink.clone()
    }

    /// If checkpoint `k` is consistent across `workers` workers, clone out
    /// its per-worker snapshots (refcount bumps only).
    pub(crate) fn consistent_values(
        &self,
        k: usize,
        workers: usize,
    ) -> Option<Vec<BTreeMap<TensorId, Arc<Tensor>>>> {
        if (0..workers).all(|w| self.snaps.contains_key(&(k, w))) {
            Some((0..workers).map(|w| self.snaps[&(k, w)].clone()).collect())
        } else {
            None
        }
    }

    pub(crate) fn record(
        &mut self,
        ckpt: usize,
        worker: usize,
        values: BTreeMap<TensorId, Arc<Tensor>>,
    ) {
        self.snaps.insert((ckpt, worker), values);
    }

    /// Drops every recorded snapshot, releasing the shared payloads so a
    /// completed run can reclaim sole ownership of its values.
    pub(crate) fn clear(&mut self) {
        self.snaps.clear();
    }

    /// The highest checkpoint every one of `workers` workers has recorded.
    pub(crate) fn latest_consistent(&self, workers: usize, max_ckpt: usize) -> Option<usize> {
        (1..=max_ckpt)
            .rev()
            .find(|&k| (0..workers).all(|w| self.snaps.contains_key(&(k, w))))
    }

    /// Assembles the resume point for checkpoint `k` (which must be
    /// consistent).
    pub(crate) fn resume_point(
        &self,
        k: usize,
        workers: usize,
        cuts: &[Vec<usize>],
    ) -> ResumePoint {
        ResumePoint {
            ckpt: k,
            cuts: cuts[k - 1].clone(),
            values: (0..workers).map(|w| self.snaps[&(k, w)].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_consistent_requires_every_worker() {
        let mut s = CheckpointStore::default();
        assert_eq!(s.latest_consistent(2, 3), None);
        s.record(1, 0, BTreeMap::new());
        s.record(1, 1, BTreeMap::new());
        s.record(2, 0, BTreeMap::new());
        assert_eq!(s.latest_consistent(2, 3), Some(1), "checkpoint 2 misses worker 1");
        s.record(2, 1, BTreeMap::new());
        assert_eq!(s.latest_consistent(2, 3), Some(2));
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let delays = |seed: u64| -> Vec<Duration> {
            let mut s = BackoffSchedule::new(base, cap, seed);
            (0..32).map(|_| s.next_delay()).collect()
        };
        let a = delays(42);
        assert_eq!(a, delays(42), "equal seeds yield equal schedules");
        assert_ne!(a, delays(43), "jitter actually depends on the seed");
        assert!(a.iter().all(|d| *d >= base && *d <= cap), "every delay in [base, cap]");
        assert!(a.iter().any(|d| *d > base), "jitter spreads delays above base");
        // A zero base never sleeps (the fast path tests rely on).
        let mut zero = BackoffSchedule::new(Duration::ZERO, cap, 7);
        assert!(zero.next_delay().is_zero());
    }
}
