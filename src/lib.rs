//! Tofu-rs: automatic dataflow-graph partitioning for very large DNN models.
//!
//! A Rust reproduction of *"Supporting Very Large Models using Automatic
//! Dataflow Graph Partitioning"* (Wang, Huang, Li — EuroSys 2019). This
//! facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `tofu-tensor` | dense tensors and CPU kernels |
//! | [`tdl`] | `tofu-tdl` | the Tensor Description Language, symbolic interval analysis, strategy discovery (§4) |
//! | [`graph`] | `tofu-graph` | dataflow IR, operator registry, autodiff, memory planner |
//! | [`core`] | `tofu-core` | coarsening, the recursive DP search, partitioned-graph generation, baseline partitioners (§5-§6) |
//! | [`sim`] | `tofu-sim` | the 8-GPU discrete-event simulator and training baselines (§7) |
//! | [`runtime`] | `tofu-runtime` | multi-worker threaded executor for partitioned graphs |
//! | [`durable`] | `tofu-durable` | durable checkpoint store: checksummed codecs, atomic commits, disk-fault injection |
//! | [`models`] | `tofu-models` | WResNet, multi-layer LSTM, MLP and CNN training graphs |
//! | [`serve`] | `tofu-serve` | multi-tenant partition-plan service with a shared concurrent plan cache |
//!
//! # Quickstart
//!
//! ```
//! use tofu::models::{mlp, MlpConfig};
//! use tofu::core::{partition, PartitionOptions};
//!
//! let model = mlp(&MlpConfig::default()).unwrap();
//! let plan = partition(
//!     &model.graph,
//!     &PartitionOptions { workers: 8, ..Default::default() },
//! )
//! .unwrap();
//! println!(
//!     "8-worker plan: {} steps, {:.1} MB of communication per iteration",
//!     plan.steps.len(),
//!     plan.total_comm_bytes() / 1e6
//! );
//! ```

#![forbid(unsafe_code)]

pub use tofu_core as core;
pub use tofu_durable as durable;
pub use tofu_graph as graph;
pub use tofu_models as models;
pub use tofu_obs as obs;
pub use tofu_runtime as runtime;
pub use tofu_serve as serve;
pub use tofu_sim as sim;
pub use tofu_tdl as tdl;
pub use tofu_tensor as tensor;
