//! Offline stand-in for `criterion` 0.5 (see `vendor/README.md`).
//!
//! Runs each benchmark closure for a short, fixed wall-clock budget and
//! prints mean iteration time — no statistics, plots or comparisons. The
//! point is that `cargo bench` compiles and produces usable numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

/// Times one benchmark's closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed runs.
        black_box(f());
        let start = Instant::now();
        let budget = Duration::from_millis(200);
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        let per = self.elapsed.as_secs_f64() / self.iters as f64;
        println!("{name:<48} {:>12.3?} /iter ({} iters)", Duration::from_secs_f64(per), self.iters);
    }
}

/// Identifier of one parameterized benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_parameterized() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::new("p", 3), &3usize, |b, &n| {
            b.iter(|| n * 2);
            seen = n;
        });
        g.finish();
        assert_eq!(seen, 3);
    }
}
