//! Memoization shared across DP invocations — and across threads.
//!
//! Four caches make the search layer fast without changing its answers:
//!
//! 1. a **strategy-enumeration cache** keyed by (op kind, attrs, shape
//!    signature) — the thousands of structurally identical nodes in
//!    WResNet/MLP enumerate their partition-n-reduce strategies once;
//! 2. a **step-plan cache** keyed by a structural fingerprint of the whole
//!    DP input (graph, shape view, coarsening, extra inputs, options) — a
//!    repeated basic step (e.g. the first 2-way cut shared by every
//!    power-of-two worker count in a sweep) is searched once;
//! 3. the per-class cost memo inside `dp.rs` (always on; it lives there
//!    because its keys are frontier-local);
//! 4. a **request memo** keyed by [`request_fingerprint`] — a repeat of a
//!    *whole* partition request skips even coarsening and returns the
//!    finished plan, and a width the search *proved infeasible*
//!    ([`crate::CoreError::NoStrategy`] / `BadWorkerCount`) is remembered
//!    too, so an elastic runtime probing the width ladder never re-proves
//!    an infeasibility. Transient errors (bounds, internal) are never
//!    memoized.
//!
//! All keys are *exact*: two entries collide only when the DP inputs are
//! byte-for-byte equivalent for the search, so cache hits are provably
//! answer-preserving. The differential harness in `crates/core/tests`
//! enforces this against the unoptimized reference search.
//!
//! # Concurrency
//!
//! [`SearchCaches`] is `Send + Sync`: both maps live behind **sharded
//! reader-writer locks** (16 shards each, selected by key bits, so readers
//! of different entries never contend on one lock) and the hit/miss tallies
//! are atomics. Because every cached value is a pure function of its exact
//! key, concurrent interleavings can only change *which thread computes an
//! entry first*, never the entry's value — so results stay bit-identical to
//! a single-threaded run (the plan-service stress tests assert this).
//!
//! The step-plan cache additionally performs **single-flight
//! deduplication**: when N threads miss the same fingerprint at once,
//! exactly one (the *leader*) runs the search while the rest block on a
//! condvar and receive the leader's plan as a hit. A leader that errors or
//! panics marks the flight failed and wakes the waiters, one of which
//! becomes the next leader — no flight is ever abandoned in a blocking
//! state.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use tofu_graph::Graph;

use crate::coarsen::CoarseGraph;
use crate::dp::{DpOptions, ExtraInputs, StepPlan};
use crate::error::CoreError;
use crate::recursive::{PartitionOptions, PartitionPlan};
use crate::strategies::{NodeStrategy, ShapeView};

/// A fast multiply-xor hasher for the DP's integer keys (packed spec
/// fingerprints). Not DoS-resistant — keys are internal, never
/// attacker-controlled — but several times faster than SipHash on the
/// millions of lookups a WResNet search performs.
#[derive(Default)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(buf)).wrapping_mul(SEED).rotate_left(5);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(SEED).rotate_left(5);
    }

    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// 128-bit FNV-1a, used for structural fingerprints where a collision would
/// silently return a wrong plan (so 64 bits would be uncomfortable).
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb0142_62b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000_000000000000013b;

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u128::from(b)).wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    pub(crate) fn num(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u128 {
        self.0
    }
}

/// Cache hit/miss tallies, exposed for tests and the bench harness (the same
/// numbers flow into `tofu-obs` totals when a collector is attached).
///
/// Reading the tallies never drains them; use the derived-rate accessors
/// instead of diffing raw counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Strategy-enumeration cache hits.
    pub strategy_hits: u64,
    /// Strategy-enumeration cache misses.
    pub strategy_misses: u64,
    /// Step-plan cache hits (including single-flight waiters served by a
    /// leader's finished plan).
    pub plan_hits: u64,
    /// Step-plan cache misses (one per single-flight leader).
    pub plan_misses: u64,
    /// Request-memo hits: whole partition requests answered without any
    /// search — a finished plan or a remembered infeasibility (including
    /// single-flight waiters served by a leader's outcome).
    pub request_hits: u64,
    /// Request-memo misses (one per single-flight leader).
    pub request_misses: u64,
}

impl CacheStats {
    /// Hits / lookups of the strategy cache (`0.0` before any lookup).
    pub fn strategy_hit_rate(&self) -> f64 {
        rate(self.strategy_hits, self.strategy_misses)
    }

    /// Hits / lookups of the step-plan cache (`0.0` before any lookup).
    pub fn plan_hit_rate(&self) -> f64 {
        rate(self.plan_hits, self.plan_misses)
    }

    /// Hits / lookups of the request memo (`0.0` before any lookup).
    pub fn request_hit_rate(&self) -> f64 {
        rate(self.request_hits, self.request_misses)
    }

    /// Total lookups across all three tallied caches.
    pub fn lookups(&self) -> u64 {
        self.strategy_hits
            + self.strategy_misses
            + self.plan_hits
            + self.plan_misses
            + self.request_hits
            + self.request_misses
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// A non-draining point-in-time view of a [`SearchCaches`]: raw tallies plus
/// the derived rates and entry counts callers previously had to compute by
/// diffing counters. This is what the plan service's `stats` request
/// reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSnapshot {
    /// The raw hit/miss tallies.
    pub stats: CacheStats,
    /// Resident strategy-enumeration entries.
    pub strategy_entries: usize,
    /// Resident finished step plans (in-flight computations excluded).
    pub plan_entries: usize,
    /// Resident request-memo outcomes — finished plans *and* remembered
    /// infeasibilities (in-flight computations excluded).
    pub request_entries: usize,
    /// Derived strategy-cache hit rate.
    pub strategy_hit_rate: f64,
    /// Derived step-plan-cache hit rate.
    pub plan_hit_rate: f64,
    /// Derived request-memo hit rate.
    pub request_hit_rate: f64,
}

/// Lock shard count for both maps. A power of two so shard selection is a
/// mask; 16 shards keep 8–16 worker threads essentially contention-free
/// while costing a few hundred bytes when idle.
const SHARDS: usize = 16;

fn shard_of(h: u64) -> usize {
    (h as usize) & (SHARDS - 1)
}

fn string_shard(sig: &str) -> usize {
    let mut h = FastHasher::default();
    h.write(sig.as_bytes());
    shard_of(h.finish())
}

/// State of one in-flight step-plan computation.
enum FlightState {
    /// The leader is still searching.
    Computing,
    /// The leader finished; waiters take the plan from here.
    Done(StepPlan),
    /// The leader errored or panicked; a waiter must retry.
    Failed,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { state: Mutex::new(FlightState::Computing), cv: Condvar::new() }
    }
}

enum PlanSlot {
    Ready(StepPlan),
    Pending(Arc<Flight>),
}

/// Result of a single-flight step-plan lookup.
pub(crate) enum PlanLookup {
    /// The plan was cached (or just produced by another thread's leader).
    Ready(StepPlan),
    /// This thread is the leader: it must compute the plan and then call
    /// [`PlanFlightGuard::fill`] (or let the guard drop to mark failure).
    Leader,
}

/// RAII companion of [`PlanLookup::Leader`]: guarantees the flight is
/// resolved even when the search errors or panics, so waiters never block
/// on an abandoned computation.
pub(crate) struct PlanFlightGuard<'a> {
    caches: &'a SearchCaches,
    key: u128,
    armed: bool,
}

impl PlanFlightGuard<'_> {
    /// Publishes the finished plan and wakes every waiter.
    pub(crate) fn fill(mut self, plan: &StepPlan) {
        self.armed = false;
        self.caches.plan_fill(self.key, plan);
    }
}

impl Drop for PlanFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.caches.plan_fail(self.key);
        }
    }
}

/// Memoized outcome of one whole partition request.
///
/// `Infeasible` holds only the *provable* rejections — no strategy for some
/// node or an unusable worker count — which are pure functions of the
/// request exactly like a finished plan is. Resource-bound and internal
/// errors are circumstance-dependent and are never stored.
#[derive(Clone)]
pub(crate) enum RequestOutcome {
    /// The search finished; the plan is served verbatim.
    Plan(PartitionPlan),
    /// The search proved the request unsatisfiable.
    Infeasible(CoreError),
}

enum RequestFlightState {
    Computing,
    Done(RequestOutcome),
    Failed,
}

struct RequestFlight {
    state: Mutex<RequestFlightState>,
    cv: Condvar,
}

impl RequestFlight {
    fn new() -> RequestFlight {
        RequestFlight { state: Mutex::new(RequestFlightState::Computing), cv: Condvar::new() }
    }
}

enum RequestSlot {
    Ready(RequestOutcome),
    Pending(Arc<RequestFlight>),
}

/// Result of a single-flight request-memo lookup.
pub(crate) enum RequestLookup {
    /// The outcome was memoized (or just produced by another thread).
    Ready(RequestOutcome),
    /// This thread is the leader: it must run the search and resolve the
    /// flight through its [`RequestFlightGuard`].
    Leader,
}

/// RAII companion of [`RequestLookup::Leader`]: a leader that errors or
/// panics without filling marks the flight failed so waiters retry instead
/// of blocking forever.
pub(crate) struct RequestFlightGuard<'a> {
    caches: &'a SearchCaches,
    key: u128,
    armed: bool,
}

impl RequestFlightGuard<'_> {
    /// Publishes the outcome and wakes every waiter.
    pub(crate) fn fill(mut self, outcome: &RequestOutcome) {
        self.armed = false;
        self.caches.request_fill(self.key, outcome);
    }
}

impl Drop for RequestFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.caches.request_fail(self.key);
        }
    }
}

/// Memoization state threaded through one or more searches.
///
/// A fresh instance is created per [`crate::partition`] call; callers that
/// run many related searches (worker-count sweeps, baseline comparisons)
/// can share one instance via [`crate::recursive::partition_cached`] to
/// also reuse plans across calls. The type is `Send + Sync`: a long-running
/// service wraps one instance in an `Arc` and calls
/// [`crate::recursive::partition_shared`] from many solver threads at once
/// (see the module docs for the bit-identity argument).
#[derive(Default)]
pub struct SearchCaches {
    strategies: [RwLock<HashMap<String, Vec<NodeStrategy>>>; SHARDS],
    plans: [RwLock<FastMap<u128, PlanSlot>>; SHARDS],
    requests: [RwLock<FastMap<u128, RequestSlot>>; SHARDS],
    strategy_hits: AtomicU64,
    strategy_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    request_hits: AtomicU64,
    request_misses: AtomicU64,
}

impl SearchCaches {
    /// An empty cache.
    pub fn new() -> SearchCaches {
        SearchCaches::default()
    }

    /// Current hit/miss tallies (non-draining).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            strategy_hits: self.strategy_hits.load(Ordering::Relaxed),
            strategy_misses: self.strategy_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            request_hits: self.request_hits.load(Ordering::Relaxed),
            request_misses: self.request_misses.load(Ordering::Relaxed),
        }
    }

    /// A full non-draining snapshot: tallies, derived hit rates and resident
    /// entry counts.
    pub fn snapshot(&self) -> CacheSnapshot {
        let stats = self.stats();
        let strategy_entries =
            self.strategies.iter().map(|s| s.read().expect("cache lock").len()).sum();
        let plan_entries = self
            .plans
            .iter()
            .map(|s| {
                s.read()
                    .expect("cache lock")
                    .values()
                    .filter(|slot| matches!(slot, PlanSlot::Ready(_)))
                    .count()
            })
            .sum();
        let request_entries = self
            .requests
            .iter()
            .map(|s| {
                s.read()
                    .expect("cache lock")
                    .values()
                    .filter(|slot| matches!(slot, RequestSlot::Ready(_)))
                    .count()
            })
            .sum();
        CacheSnapshot {
            stats,
            strategy_entries,
            plan_entries,
            request_entries,
            strategy_hit_rate: stats.strategy_hit_rate(),
            plan_hit_rate: stats.plan_hit_rate(),
            request_hit_rate: stats.request_hit_rate(),
        }
    }

    /// Looks up enumerated strategies by signature, recording the hit.
    pub(crate) fn strategies_get(&self, sig: &str) -> Option<Vec<NodeStrategy>> {
        let shard = &self.strategies[string_shard(sig)];
        match shard.read().expect("cache lock").get(sig) {
            Some(v) => {
                self.strategy_hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.strategy_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn strategies_put(&self, sig: String, v: Vec<NodeStrategy>) {
        let shard = &self.strategies[string_shard(&sig)];
        // Two racing misses insert byte-identical values (the enumeration is
        // a pure function of the signature), so last-write-wins is safe.
        shard.write().expect("cache lock").insert(sig, v);
    }

    fn plan_shard(&self, key: u128) -> &RwLock<FastMap<u128, PlanSlot>> {
        &self.plans[shard_of(key as u64 ^ (key >> 64) as u64)]
    }

    /// Single-flight step-plan lookup: returns the cached plan, blocks until
    /// a concurrent leader publishes it, or elects the caller leader.
    pub(crate) fn plan_begin(&self, key: u128) -> PlanLookup {
        loop {
            // Fast path: shared read of the shard.
            let flight = {
                let map = self.plan_shard(key).read().expect("cache lock");
                match map.get(&key) {
                    Some(PlanSlot::Ready(p)) => {
                        self.plan_hits.fetch_add(1, Ordering::Relaxed);
                        return PlanLookup::Ready(p.clone());
                    }
                    Some(PlanSlot::Pending(f)) => Some(Arc::clone(f)),
                    None => None,
                }
            };
            match flight {
                Some(f) => {
                    // Wait for the leader; a failed flight retries the loop
                    // (and may elect this thread the next leader).
                    let mut st = f.state.lock().expect("flight lock");
                    while matches!(*st, FlightState::Computing) {
                        st = f.cv.wait(st).expect("flight lock");
                    }
                    if let FlightState::Done(p) = &*st {
                        self.plan_hits.fetch_add(1, Ordering::Relaxed);
                        return PlanLookup::Ready(p.clone());
                    }
                }
                None => {
                    let mut map = self.plan_shard(key).write().expect("cache lock");
                    // Re-check under the write lock: another thread may have
                    // inserted between our read and write acquisitions.
                    if map.contains_key(&key) {
                        continue;
                    }
                    map.insert(key, PlanSlot::Pending(Arc::new(Flight::new())));
                    self.plan_misses.fetch_add(1, Ordering::Relaxed);
                    return PlanLookup::Leader;
                }
            }
        }
    }

    /// Creates the leader guard for a key this thread won via
    /// [`PlanLookup::Leader`].
    pub(crate) fn plan_flight_guard(&self, key: u128) -> PlanFlightGuard<'_> {
        PlanFlightGuard { caches: self, key, armed: true }
    }

    fn plan_fill(&self, key: u128, plan: &StepPlan) {
        let old = {
            let mut map = self.plan_shard(key).write().expect("cache lock");
            map.insert(key, PlanSlot::Ready(plan.clone()))
        };
        if let Some(PlanSlot::Pending(f)) = old {
            let mut st = f.state.lock().expect("flight lock");
            *st = FlightState::Done(plan.clone());
            f.cv.notify_all();
        }
    }

    fn plan_fail(&self, key: u128) {
        let old = {
            let mut map = self.plan_shard(key).write().expect("cache lock");
            match map.get(&key) {
                Some(PlanSlot::Pending(_)) => map.remove(&key),
                _ => None,
            }
        };
        if let Some(PlanSlot::Pending(f)) = old {
            let mut st = f.state.lock().expect("flight lock");
            *st = FlightState::Failed;
            f.cv.notify_all();
        }
    }

    fn request_shard(&self, key: u128) -> &RwLock<FastMap<u128, RequestSlot>> {
        &self.requests[shard_of(key as u64 ^ (key >> 64) as u64)]
    }

    /// Single-flight request-memo lookup: returns the memoized outcome,
    /// blocks until a concurrent leader publishes one, or elects the caller
    /// leader.
    pub(crate) fn request_begin(&self, key: u128) -> RequestLookup {
        loop {
            let flight = {
                let map = self.request_shard(key).read().expect("cache lock");
                match map.get(&key) {
                    Some(RequestSlot::Ready(o)) => {
                        self.request_hits.fetch_add(1, Ordering::Relaxed);
                        return RequestLookup::Ready(o.clone());
                    }
                    Some(RequestSlot::Pending(f)) => Some(Arc::clone(f)),
                    None => None,
                }
            };
            match flight {
                Some(f) => {
                    let mut st = f.state.lock().expect("flight lock");
                    while matches!(*st, RequestFlightState::Computing) {
                        st = f.cv.wait(st).expect("flight lock");
                    }
                    if let RequestFlightState::Done(o) = &*st {
                        self.request_hits.fetch_add(1, Ordering::Relaxed);
                        return RequestLookup::Ready(o.clone());
                    }
                }
                None => {
                    let mut map = self.request_shard(key).write().expect("cache lock");
                    if map.contains_key(&key) {
                        continue;
                    }
                    map.insert(key, RequestSlot::Pending(Arc::new(RequestFlight::new())));
                    self.request_misses.fetch_add(1, Ordering::Relaxed);
                    return RequestLookup::Leader;
                }
            }
        }
    }

    /// Creates the leader guard for a key this thread won via
    /// [`RequestLookup::Leader`].
    pub(crate) fn request_flight_guard(&self, key: u128) -> RequestFlightGuard<'_> {
        RequestFlightGuard { caches: self, key, armed: true }
    }

    fn request_fill(&self, key: u128, outcome: &RequestOutcome) {
        let old = {
            let mut map = self.request_shard(key).write().expect("cache lock");
            map.insert(key, RequestSlot::Ready(outcome.clone()))
        };
        if let Some(RequestSlot::Pending(f)) = old {
            let mut st = f.state.lock().expect("flight lock");
            *st = RequestFlightState::Done(outcome.clone());
            f.cv.notify_all();
        }
    }

    fn request_fail(&self, key: u128) {
        let old = {
            let mut map = self.request_shard(key).write().expect("cache lock");
            match map.get(&key) {
                Some(RequestSlot::Pending(_)) => map.remove(&key),
                _ => None,
            }
        };
        if let Some(RequestSlot::Pending(f)) = old {
            let mut st = f.state.lock().expect("flight lock");
            *st = RequestFlightState::Failed;
            f.cv.notify_all();
        }
    }
}

/// Structural fingerprint of one DP invocation: everything `search` reads.
///
/// Node *names* are deliberately excluded so isomorphic subgraphs that
/// differ only in labels share an entry; everything that feeds the cost
/// model — op kinds, canonical attrs, per-tensor shapes under the view, the
/// coarsened group/class structure, extra fetch buffers, and every search
/// option — is folded in.
pub(crate) fn step_fingerprint(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
) -> u128 {
    let mut h = Fnv::new();
    h.num(opts.ways as u64);
    h.byte(u8::from(opts.allow_reduce));
    h.num(opts.state_bound as u64);
    h.num(opts.internal_bound as u64);
    h.num(opts.beam as u64);
    h.byte(u8::from(opts.tuning.dominance));
    // Shapes under the view (covers graph tensors and extra buffers).
    h.num(view.len() as u64);
    for t in 0..view.len() {
        let dims = view.shape(tofu_graph::TensorId(t)).dims();
        h.num(dims.len() as u64);
        for &d in dims {
            h.num(d as u64);
        }
    }
    // Graph structure: ops, canonical attrs, wiring.
    h.num(g.num_nodes() as u64);
    for id in g.node_ids() {
        let n = g.node(id);
        h.bytes(n.op.as_bytes());
        h.byte(0);
        h.bytes(n.attrs.to_string().as_bytes());
        h.byte(0);
        h.num(n.inputs.len() as u64);
        for &t in &n.inputs {
            h.num(t.0 as u64);
        }
        h.num(n.output.0 as u64);
    }
    // Coarsening (groups and classes drive the DP's shape).
    for &gi in &cg.group_of {
        h.num(gi as u64);
    }
    for &ci in &cg.class_of {
        h.num(ci as u64);
    }
    for &e in &cg.class_is_ewise {
        h.byte(u8::from(e));
    }
    // Extra fetch buffers.
    h.num(extra.len() as u64);
    for (node, for_input, tensor) in extra.entries() {
        h.num(node.0 as u64);
        h.num(for_input as u64);
        h.num(tensor.0 as u64);
    }
    h.finish()
}

/// Structural fingerprint of one *whole partition request*: the graph (ops,
/// canonical attrs, shapes, wiring, coarsening tags — names excluded) plus
/// every [`PartitionOptions`] field that steers the search. Two requests
/// share a fingerprint exactly when `partition` would walk an identical
/// search and return an identical plan, so it is the natural key for a
/// request-level plan cache (the `tofu-serve` service keys its shared
/// response cache on this).
pub fn request_fingerprint(g: &Graph, opts: &PartitionOptions) -> u128 {
    let mut h = Fnv::new();
    h.num(opts.workers as u64);
    h.byte(u8::from(opts.allow_reduce));
    h.num(opts.state_bound as u64);
    h.num(opts.internal_bound as u64);
    h.num(opts.beam as u64);
    h.num(opts.fetch_buffer_floor);
    h.byte(u8::from(opts.tuning.reference));
    h.byte(u8::from(opts.tuning.strategy_cache));
    h.byte(u8::from(opts.tuning.dominance));
    h.byte(u8::from(opts.tuning.plan_cache));
    // Tensor shapes (declared, pre-recursion).
    h.num(g.num_tensors() as u64);
    for t in g.tensor_ids() {
        let dims = g.tensor(t).shape.dims();
        h.num(dims.len() as u64);
        for &d in dims {
            h.num(d as u64);
        }
    }
    // Nodes: op kind, canonical attrs, wiring, and the tags coarsening
    // reads (§5.1) — forward/backward pairing, RNN timestep coalescing and
    // layer placement all change the coarsened chain, hence the plan.
    h.num(g.num_nodes() as u64);
    for id in g.node_ids() {
        let n = g.node(id);
        h.bytes(n.op.as_bytes());
        h.byte(0);
        h.bytes(n.attrs.to_string().as_bytes());
        h.byte(0);
        h.num(n.inputs.len() as u64);
        for &t in &n.inputs {
            h.num(t.0 as u64);
        }
        h.num(n.output.0 as u64);
        h.byte(u8::from(n.tags.is_backward));
        h.num(n.tags.fw_origin.map_or(u64::MAX, |f| f.0 as u64));
        h.num(n.tags.layer.map_or(u64::MAX, |l| l as u64));
        h.num(n.tags.timestep.map_or(u64::MAX, |t| t as u64));
        match &n.tags.cell_position {
            Some(cp) => {
                h.byte(1);
                h.bytes(cp.as_bytes());
            }
            None => h.byte(0),
        }
        h.byte(0);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_hasher_spreads_small_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn fnv_distinguishes_order() {
        let mut a = Fnv::new();
        a.num(1);
        a.num(2);
        let mut b = Fnv::new();
        b.num(2);
        b.num(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stats_start_zeroed() {
        let c = SearchCaches::new();
        assert_eq!(c.stats(), CacheStats::default());
        let snap = c.snapshot();
        assert_eq!(snap.strategy_entries, 0);
        assert_eq!(snap.plan_entries, 0);
        assert_eq!(snap.plan_hit_rate, 0.0);
    }

    #[test]
    fn hit_rates_derive_from_tallies() {
        let s = CacheStats {
            strategy_hits: 3,
            strategy_misses: 1,
            plan_hits: 0,
            plan_misses: 4,
            request_hits: 1,
            request_misses: 1,
        };
        assert!((s.strategy_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.plan_hit_rate(), 0.0);
        assert_eq!(s.request_hit_rate(), 0.5);
        assert_eq!(s.lookups(), 10);
    }

    #[test]
    fn single_flight_leader_then_hit() {
        let c = SearchCaches::new();
        let plan = StepPlan {
            ways: 2,
            tensor_spec: Vec::new(),
            node_choice: Vec::new(),
            comm_bytes: 7.0,
        };
        match c.plan_begin(42) {
            PlanLookup::Leader => c.plan_flight_guard(42).fill(&plan),
            PlanLookup::Ready(_) => panic!("fresh cache cannot hit"),
        }
        match c.plan_begin(42) {
            PlanLookup::Ready(p) => assert_eq!(p.comm_bytes, 7.0),
            PlanLookup::Leader => panic!("filled key must hit"),
        }
        assert_eq!(c.stats().plan_misses, 1);
        assert_eq!(c.stats().plan_hits, 1);
        assert_eq!(c.snapshot().plan_entries, 1);
    }

    #[test]
    fn failed_flight_elects_a_new_leader() {
        let c = SearchCaches::new();
        match c.plan_begin(7) {
            PlanLookup::Leader => {
                let guard = c.plan_flight_guard(7);
                drop(guard); // leader "errored": flight must clear
            }
            PlanLookup::Ready(_) => panic!("fresh cache cannot hit"),
        }
        // The key is free again: the next lookup becomes leader, not a hit.
        assert!(matches!(c.plan_begin(7), PlanLookup::Leader));
        assert_eq!(c.stats().plan_misses, 2);
    }

    #[test]
    fn waiters_block_until_leader_fills() {
        let c = Arc::new(SearchCaches::new());
        assert!(matches!(c.plan_begin(9), PlanLookup::Leader));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || match c.plan_begin(9) {
                PlanLookup::Ready(p) => p.comm_bytes,
                PlanLookup::Leader => panic!("flight in progress: nobody else leads"),
            }));
        }
        // Give the waiters time to park on the flight, then publish.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let plan = StepPlan {
            ways: 2,
            tensor_spec: Vec::new(),
            node_choice: Vec::new(),
            comm_bytes: 3.0,
        };
        c.plan_flight_guard(9).fill(&plan);
        for h in handles {
            assert_eq!(h.join().expect("waiter"), 3.0);
        }
        let stats = c.stats();
        assert_eq!(stats.plan_misses, 1, "single flight: one miss for five lookups");
        assert_eq!(stats.plan_hits, 4);
    }

    #[test]
    fn request_memo_remembers_plans_and_infeasibilities() {
        let c = SearchCaches::new();
        let plan = PartitionPlan {
            workers: 2,
            steps: Vec::new(),
            tiling: Vec::new(),
            search_time: std::time::Duration::ZERO,
        };
        match c.request_begin(1) {
            RequestLookup::Leader => {
                c.request_flight_guard(1).fill(&RequestOutcome::Plan(plan))
            }
            RequestLookup::Ready(_) => panic!("fresh memo cannot hit"),
        }
        assert!(matches!(
            c.request_begin(1),
            RequestLookup::Ready(RequestOutcome::Plan(p)) if p.workers == 2
        ));

        let err = CoreError::BadWorkerCount(7);
        match c.request_begin(2) {
            RequestLookup::Leader => {
                c.request_flight_guard(2).fill(&RequestOutcome::Infeasible(err))
            }
            RequestLookup::Ready(_) => panic!("fresh memo cannot hit"),
        }
        assert!(matches!(
            c.request_begin(2),
            RequestLookup::Ready(RequestOutcome::Infeasible(CoreError::BadWorkerCount(7)))
        ));

        let stats = c.stats();
        assert_eq!((stats.request_hits, stats.request_misses), (2, 2));
        assert_eq!(c.snapshot().request_entries, 2);
    }

    #[test]
    fn failed_request_flight_elects_a_new_leader() {
        let c = SearchCaches::new();
        match c.request_begin(5) {
            RequestLookup::Leader => drop(c.request_flight_guard(5)),
            RequestLookup::Ready(_) => panic!("fresh memo cannot hit"),
        }
        assert!(matches!(c.request_begin(5), RequestLookup::Leader));
        assert_eq!(c.stats().request_misses, 2);
        assert_eq!(c.snapshot().request_entries, 0, "a failed flight leaves nothing behind");
    }
}
