//! Memoization shared across DP invocations.
//!
//! Three caches make the search layer fast without changing its answers:
//!
//! 1. a **strategy-enumeration cache** keyed by (op kind, attrs, shape
//!    signature) — the thousands of structurally identical nodes in
//!    WResNet/MLP enumerate their partition-n-reduce strategies once;
//! 2. a **step-plan cache** keyed by a structural fingerprint of the whole
//!    DP input (graph, shape view, coarsening, extra inputs, options) — a
//!    repeated basic step (e.g. the first 2-way cut shared by every
//!    power-of-two worker count in a sweep) is searched once;
//! 3. the per-class cost memo inside `dp.rs` (always on; it lives there
//!    because its keys are frontier-local).
//!
//! All keys are *exact*: two entries collide only when the DP inputs are
//! byte-for-byte equivalent for the search, so cache hits are provably
//! answer-preserving. The differential harness in `crates/core/tests`
//! enforces this against the unoptimized reference search.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use tofu_graph::Graph;

use crate::coarsen::CoarseGraph;
use crate::dp::{DpOptions, ExtraInputs, StepPlan};
use crate::strategies::{NodeStrategy, ShapeView};

/// A fast multiply-xor hasher for the DP's integer keys (packed spec
/// fingerprints). Not DoS-resistant — keys are internal, never
/// attacker-controlled — but several times faster than SipHash on the
/// millions of lookups a WResNet search performs.
#[derive(Default)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(buf)).wrapping_mul(SEED).rotate_left(5);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(SEED).rotate_left(5);
    }

    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// 128-bit FNV-1a, used for structural fingerprints where a collision would
/// silently return a wrong plan (so 64 bits would be uncomfortable).
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb0142_62b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000_000000000000013b;

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u128::from(b)).wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    pub(crate) fn num(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u128 {
        self.0
    }
}

/// Cache hit/miss tallies, exposed for tests and the bench harness (the same
/// numbers flow into `tofu-obs` totals when a collector is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Strategy-enumeration cache hits.
    pub strategy_hits: u64,
    /// Strategy-enumeration cache misses.
    pub strategy_misses: u64,
    /// Step-plan cache hits.
    pub plan_hits: u64,
    /// Step-plan cache misses.
    pub plan_misses: u64,
}

/// Memoization state threaded through one or more searches.
///
/// A fresh instance is created per [`crate::partition`] call; callers that
/// run many related searches (worker-count sweeps, baseline comparisons)
/// can share one instance via [`crate::recursive::partition_cached`] to
/// also reuse plans across calls.
#[derive(Default)]
pub struct SearchCaches {
    strategies: HashMap<String, Vec<NodeStrategy>>,
    plans: FastMap<u128, StepPlan>,
    stats: CacheStats,
}

impl SearchCaches {
    /// An empty cache.
    pub fn new() -> SearchCaches {
        SearchCaches::default()
    }

    /// Current hit/miss tallies.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up enumerated strategies by signature, recording the hit.
    pub(crate) fn strategies_get(&mut self, sig: &str) -> Option<Vec<NodeStrategy>> {
        match self.strategies.get(sig) {
            Some(v) => {
                self.stats.strategy_hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.strategy_misses += 1;
                None
            }
        }
    }

    pub(crate) fn strategies_put(&mut self, sig: String, v: Vec<NodeStrategy>) {
        self.strategies.insert(sig, v);
    }

    /// Looks up a finished step plan by fingerprint, recording the hit.
    pub(crate) fn plan_get(&mut self, key: u128) -> Option<StepPlan> {
        match self.plans.get(&key) {
            Some(p) => {
                self.stats.plan_hits += 1;
                Some(p.clone())
            }
            None => {
                self.stats.plan_misses += 1;
                None
            }
        }
    }

    pub(crate) fn plan_put(&mut self, key: u128, plan: StepPlan) {
        self.plans.insert(key, plan);
    }
}

/// Structural fingerprint of one DP invocation: everything `search` reads.
///
/// Node *names* are deliberately excluded so isomorphic subgraphs that
/// differ only in labels share an entry; everything that feeds the cost
/// model — op kinds, canonical attrs, per-tensor shapes under the view, the
/// coarsened group/class structure, extra fetch buffers, and every search
/// option — is folded in.
pub(crate) fn step_fingerprint(
    g: &Graph,
    view: &ShapeView,
    cg: &CoarseGraph,
    extra: &ExtraInputs,
    opts: &DpOptions,
) -> u128 {
    let mut h = Fnv::new();
    h.num(opts.ways as u64);
    h.byte(u8::from(opts.allow_reduce));
    h.num(opts.state_bound as u64);
    h.num(opts.internal_bound as u64);
    h.num(opts.beam as u64);
    h.byte(u8::from(opts.tuning.dominance));
    // Shapes under the view (covers graph tensors and extra buffers).
    h.num(view.len() as u64);
    for t in 0..view.len() {
        let dims = view.shape(tofu_graph::TensorId(t)).dims();
        h.num(dims.len() as u64);
        for &d in dims {
            h.num(d as u64);
        }
    }
    // Graph structure: ops, canonical attrs, wiring.
    h.num(g.num_nodes() as u64);
    for id in g.node_ids() {
        let n = g.node(id);
        h.bytes(n.op.as_bytes());
        h.byte(0);
        h.bytes(n.attrs.to_string().as_bytes());
        h.byte(0);
        h.num(n.inputs.len() as u64);
        for &t in &n.inputs {
            h.num(t.0 as u64);
        }
        h.num(n.output.0 as u64);
    }
    // Coarsening (groups and classes drive the DP's shape).
    for &gi in &cg.group_of {
        h.num(gi as u64);
    }
    for &ci in &cg.class_of {
        h.num(ci as u64);
    }
    for &e in &cg.class_is_ewise {
        h.byte(u8::from(e));
    }
    // Extra fetch buffers.
    h.num(extra.len() as u64);
    for (node, for_input, tensor) in extra.entries() {
        h.num(node.0 as u64);
        h.num(for_input as u64);
        h.num(tensor.0 as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_hasher_spreads_small_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn fnv_distinguishes_order() {
        let mut a = Fnv::new();
        a.num(1);
        a.num(2);
        let mut b = Fnv::new();
        b.num(2);
        b.num(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stats_start_zeroed() {
        let c = SearchCaches::new();
        assert_eq!(c.stats(), CacheStats::default());
    }
}
