//! Chrome-trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) (open the file
//! with *Open trace file*). Each [`Track`] becomes one `(pid, tid)` lane;
//! metadata events name the processes ("runtime device 0 (measured)",
//! "sim device 0 (predicted)", "partition search", "runtime control") and
//! sort them so measured and predicted device lanes sit next to each other.

use crate::json::Json;
use crate::{Arg, Event, Phase, PID_CONTROL, PID_RUNTIME_BASE, PID_SEARCH, PID_SERVE, PID_SIM_BASE};
use std::collections::BTreeSet;

/// Human-readable process name for a pid under the workspace pid scheme.
pub fn process_name(pid: u32) -> String {
    if pid == PID_SEARCH {
        "partition search".to_string()
    } else if pid == PID_CONTROL {
        "runtime control".to_string()
    } else if pid == PID_SERVE {
        "plan service".to_string()
    } else if pid >= PID_SIM_BASE {
        format!("sim device {} (predicted)", pid - PID_SIM_BASE)
    } else if pid >= PID_RUNTIME_BASE {
        format!("runtime device {} (measured)", pid - PID_RUNTIME_BASE)
    } else {
        format!("process {pid}")
    }
}

/// Sort key that interleaves measured and predicted lanes per device:
/// search, control, then device 0 runtime, device 0 sim, device 1 runtime...
fn process_sort_index(pid: u32) -> u64 {
    if pid == PID_SEARCH {
        0
    } else if pid == PID_CONTROL {
        1
    } else if pid == PID_SERVE {
        2
    } else if pid >= PID_SIM_BASE {
        10 + 2 * (pid - PID_SIM_BASE) as u64 + 1
    } else {
        10 + 2 * (pid - PID_RUNTIME_BASE) as u64
    }
}

fn arg_json(arg: &Arg) -> Json {
    match arg {
        Arg::U64(v) => Json::Num(*v as f64),
        Arg::F64(v) => Json::Num(*v),
        Arg::Str(s) => Json::Str(s.clone()),
    }
}

fn event_json(e: &Event) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![
        ("name", e.name.as_str().into()),
        ("cat", e.cat.into()),
        ("pid", Json::Num(e.track.pid as f64)),
        ("tid", Json::Num(e.track.tid as f64)),
        ("ts", Json::Num(e.ts_us)),
    ];
    match e.phase {
        Phase::Complete { dur_us } => {
            pairs.push(("ph", "X".into()));
            pairs.push(("dur", Json::Num(dur_us)));
        }
        Phase::Instant => {
            pairs.push(("ph", "i".into()));
            pairs.push(("s", "t".into())); // thread-scoped marker
        }
        Phase::Counter { value } => {
            pairs.push(("ph", "C".into()));
            pairs.push(("args", Json::obj(vec![("value", Json::Num(value))])));
        }
    }
    if !e.args.is_empty() {
        let args = Json::Obj(e.args.iter().map(|(k, v)| (k.to_string(), arg_json(v))).collect());
        // Counters already carry their value under "args"; merge extras in.
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == "args") {
            if let (Json::Obj(dst), Json::Obj(src)) = (&mut slot.1, args) {
                dst.extend(src);
            }
        } else {
            pairs.push(("args", args));
        }
    }
    Json::obj(pairs)
}

fn metadata(pid: u32, name: &str, value: Json) -> Json {
    Json::obj(vec![
        ("name", name.into()),
        ("ph", "M".into()),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(0.0)),
        ("args", Json::Obj(vec![(
            if name == "process_name" { "name" } else { "sort_index" }.to_string(),
            value,
        )])),
    ])
}

/// Renders events as a Chrome trace document ([`Json`] value).
pub fn chrome_trace(events: &[Event]) -> Json {
    let pids: BTreeSet<u32> = events.iter().map(|e| e.track.pid).collect();
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 2 * pids.len());
    for pid in &pids {
        out.push(metadata(*pid, "process_name", process_name(*pid).into()));
        out.push(metadata(*pid, "process_sort_index", Json::Num(process_sort_index(*pid) as f64)));
    }
    out.extend(events.iter().map(event_json));
    Json::obj(vec![("displayTimeUnit", "ms".into()), ("traceEvents", Json::Arr(out))])
}

/// Renders events as a Chrome trace JSON string, ready to write to disk.
pub fn chrome_trace_json(events: &[Event]) -> String {
    chrome_trace(events).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Track};

    #[test]
    fn emits_metadata_per_pid() {
        let c = Collector::new();
        c.complete(Track::runtime(0), "op", "fc0", 0.0, 10.0);
        c.complete(Track::sim(0), "op", "fc0", 0.0, 9.0);
        c.instant(Track::control(), "ckpt", "checkpoint");
        let doc = chrome_trace(&c.events());
        let evs = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 3 pids × 2 metadata + 3 events
        assert_eq!(evs.len(), 9);
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"runtime device 0 (measured)"));
        assert!(names.contains(&"sim device 0 (predicted)"));
        assert!(names.contains(&"runtime control"));
    }

    #[test]
    fn phases_map_to_chrome_ph() {
        let c = Collector::new();
        c.complete(Track::runtime(1), "op", "relu", 2.0, 6.0);
        c.instant(Track::runtime(1), "abort", "abort observed");
        c.counter(Track::runtime(1), "pool bytes", 3.0, 512.0);
        let doc = chrome_trace(&c.events());
        let evs = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let by_ph = |ph: &str| {
            evs.iter()
                .find(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .unwrap_or_else(|| panic!("no ph {ph}"))
        };
        let x = by_ph("X");
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(4.0));
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(2.0));
        let i = by_ph("i");
        assert_eq!(i.get("s").and_then(Json::as_str), Some("t"));
        let cnt = by_ph("C");
        assert_eq!(
            cnt.get("args").and_then(|a| a.get("value")).and_then(Json::as_f64),
            Some(512.0)
        );
    }

    #[test]
    fn output_parses_back() {
        let c = Collector::new();
        for d in 0..3 {
            c.complete(Track::runtime(d), "op", &format!("op{d}"), d as f64, d as f64 + 1.0);
        }
        let text = chrome_trace_json(&c.events());
        let doc = crate::json::parse(&text).expect("self-parse");
        assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
        assert!(doc.get("traceEvents").and_then(Json::as_array).unwrap().len() >= 3);
    }

    #[test]
    fn sort_interleaves_measured_and_predicted() {
        assert!(process_sort_index(PID_SEARCH) < process_sort_index(PID_RUNTIME_BASE));
        assert_eq!(process_sort_index(PID_RUNTIME_BASE) + 1, process_sort_index(PID_SIM_BASE));
        assert!(process_sort_index(PID_SIM_BASE) < process_sort_index(PID_RUNTIME_BASE + 1));
    }
}
