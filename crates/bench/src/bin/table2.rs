//! Table 2: total weight-tensor (training-state) sizes in GB.
//!
//! Pure computation from the model builders: `3W` bytes (weight + gradient +
//! optimizer history, §7.1) for every benchmark configuration, next to the
//! paper's numbers.

use tofu_models::{rnn, wresnet, RnnConfig, WResNetConfig};

const PAPER_RNN: [[f64; 3]; 3] = [
    // L = 6, 8, 10 for H = 4K, 6K, 8K.
    [8.4, 11.4, 14.4],
    [18.6, 28.5, 32.1],
    [33.0, 45.3, 57.0],
];

const PAPER_WRESNET: [[f64; 3]; 4] = [
    // L = 50, 101, 152 for W = 4, 6, 8, 10.
    [4.2, 7.8, 10.5],
    [9.6, 17.1, 23.4],
    [17.1, 30.6, 41.7],
    [26.7, 47.7, 65.1],
];

fn main() {
    println!("Table 2: total weight tensor sizes (GB), ours vs paper\n");

    println!("RNN (LSTM, unrolled 20 steps)");
    println!("{:<10} {:>8} {:>8} {:>8}", "", "L=6", "L=8", "L=10");
    for (hi, hidden) in [4096usize, 6144, 8192].iter().enumerate() {
        let mut ours = Vec::new();
        for layers in [6usize, 8, 10] {
            let m = rnn(&RnnConfig {
                layers,
                hidden: *hidden,
                batch: 1,
                steps: 1, // Weights are step-independent.
                embed: 1024,
                vocab: 4096,
                with_updates: false,
            })
            .expect("rnn builds");
            ours.push(m.training_state_gb());
        }
        println!(
            "H={}K ours {:>8.1} {:>8.1} {:>8.1}",
            hidden / 1024,
            ours[0],
            ours[1],
            ours[2]
        );
        println!(
            "     paper {:>8.1} {:>8.1} {:>8.1}",
            PAPER_RNN[hi][0], PAPER_RNN[hi][1], PAPER_RNN[hi][2]
        );
    }

    println!("\nWide ResNet (ImageNet)");
    println!("{:<10} {:>8} {:>8} {:>8}", "", "L=50", "L=101", "L=152");
    for (wi, width) in [4usize, 6, 8, 10].iter().enumerate() {
        let mut ours = Vec::new();
        for layers in [50usize, 101, 152] {
            let m = wresnet(&WResNetConfig {
                layers,
                width: *width,
                batch: 1,
                with_updates: false,
                ..Default::default()
            })
            .expect("wresnet builds");
            ours.push(m.training_state_gb());
        }
        println!("W={width:<2} ours  {:>8.1} {:>8.1} {:>8.1}", ours[0], ours[1], ours[2]);
        println!(
            "     paper {:>8.1} {:>8.1} {:>8.1}",
            PAPER_WRESNET[wi][0], PAPER_WRESNET[wi][1], PAPER_WRESNET[wi][2]
        );
    }

    println!(
        "\nNote: RNN sizes use a 1024-wide input embedding and a 4096-entry \
         projection vocabulary; the paper's exact head configuration is \
         unspecified, so per-layer increments (8H^2 parameters) are the \
         comparison that matters."
    );
}
