//! Offline stand-in for `proptest` 1.x (see `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, numeric range and
//! [`sample::select`] / [`collection::vec`] strategies, `prop_assert*!` and
//! `prop_assume!`. Inputs are sampled from a deterministic per-test stream
//! (perturbed by the `TOFU_SEED` environment variable); there is **no
//! shrinking** — a failing case panics with the sampled values left to the
//! assertion message.

#![forbid(unsafe_code)]

/// Test-run configuration.
pub mod config {
    /// Mirror of proptest's config struct (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Accepted for API compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }
}

/// Runner internals used by the macros.
pub mod test_runner {
    /// Why a sampled case did not count.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out.
        Reject,
    }

    /// Deterministic per-test sampling stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name plus the optional `TOFU_SEED`
        /// environment variable, so failures reproduce across runs.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let env = std::env::var("TOFU_SEED")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .unwrap_or(0);
            TestRng { state: h ^ env.wrapping_mul(0x9e3779b97f4a7c15) }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform integer below `n`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Anything that can produce sampled values.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a single constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * u
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            let v = self.start + (self.end - self.start) * u;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }
}

/// Sampling from explicit candidate sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Draws uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing vectors of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, …)` item
/// becomes a normal test running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Every attribute — including the user's `#[test]` — is captured by the
    // `meta` repetition and re-emitted onto the generated zero-argument fn.
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::config::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                // Rejections (prop_assume!) don't count toward `cases`; the
                // attempt cap keeps heavily-filtered tests from spinning.
                while accepted < cfg.cases && attempts < cfg.cases.saturating_mul(20).max(100) {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    // The immediately-invoked closure scopes `?`/`return`
                    // from the test body, like upstream proptest's runner.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::config::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            panic!("prop_assert_eq failed: {:?} != {:?}", lhs, rhs);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            panic!("prop_assert_ne failed: both {:?}", lhs);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            panic!($($fmt)+);
        }
    }};
}

/// Filters out a sampled case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        /// Select only yields listed values.
        #[test]
        fn select_draws_from_list(v in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }

        /// Collection vec respects the size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..5, 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
