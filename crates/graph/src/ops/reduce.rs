//! Reductions, broadcasts, normalization pieces and losses.

use tofu_tdl::{DescBuilder, Reducer, TdlDesc};
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::graph::TensorId;
use crate::ops::flops_per_elem;
use crate::registry::{GradCtx, OpCategory, OpDef};
use crate::Result;

fn axis_of(attrs: &Attrs, rank: usize) -> std::result::Result<usize, String> {
    let axis = attrs.int_or("axis", 1);
    if axis < 0 || axis as usize >= rank {
        return Err(format!("axis {axis} out of range for rank {rank}"));
    }
    Ok(axis as usize)
}

// ---- Shape inference ---------------------------------------------------------

fn shape_bias_add(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[1].rank() != 1 {
        return Err("bias_add expects (x, rank-1 bias)".into());
    }
    let axis = axis_of(attrs, ins[0].rank())?;
    if ins[0].dim(axis) != ins[1].dim(0) {
        return Err(format!("bias extent {} vs axis extent {}", ins[1].dim(0), ins[0].dim(axis)));
    }
    Ok(ins[0].clone())
}

fn shape_reduce_to_axis(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("reduce_to_axis expects one input".into());
    }
    let axis = axis_of(attrs, ins[0].rank())?;
    Ok(Shape::new(vec![ins[0].dim(axis)]))
}

fn shape_mul_bcast(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    shape_bias_add(ins, attrs)
}

fn shape_mul_reduce(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0] != ins[1] {
        return Err("mul_reduce expects two same-shape inputs".into());
    }
    let axis = axis_of(attrs, ins[0].rank())?;
    Ok(Shape::new(vec![ins[0].dim(axis)]))
}

fn shape_sum_axis(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("sum_axis expects one input".into());
    }
    let axis = axis_of(attrs, ins[0].rank())?;
    let mut dims = ins[0].dims().to_vec();
    dims.remove(axis);
    Ok(Shape::new(dims))
}

fn shape_softmax(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    // Rank 2 (the original op) or rank 3 (batched attention scores), with an
    // `axis` attr defaulting to the last dimension — which for rank-2 input
    // is axis 1, the historical behaviour.
    if ins.len() != 1 || !(2..=3).contains(&ins[0].rank()) {
        return Err("softmax expects one rank-2 or rank-3 input".into());
    }
    softmax_axis_of(&ins[0], attrs)?;
    Ok(ins[0].clone())
}

/// The normalized axis of softmax: `axis` attr, defaulting to the last dim.
fn softmax_axis_of(x: &Shape, attrs: &Attrs) -> std::result::Result<usize, String> {
    let axis = attrs.int_or("axis", x.rank() as i64 - 1);
    if axis < 0 || axis as usize >= x.rank() {
        return Err(format!("axis {axis} out of range for rank {}", x.rank()));
    }
    Ok(axis as usize)
}

fn shape_sum_all(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("sum_all expects one input".into());
    }
    Ok(Shape::scalar())
}

fn shape_bcast_like(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 0 {
        return Err("bcast_like expects (scalar, like)".into());
    }
    Ok(ins[1].clone())
}

fn shape_softmax_ce(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 2 || ins[1].rank() != 1 {
        return Err("softmax_ce expects (logits, labels)".into());
    }
    if ins[0].dim(0) != ins[1].dim(0) {
        return Err("batch mismatch between logits and labels".into());
    }
    Ok(Shape::scalar())
}

fn shape_softmax_ce_grad(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 2 {
        return Err("softmax_ce_grad expects (logits, labels)".into());
    }
    Ok(ins[0].clone())
}

fn shape_scale_shift(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 3 || ins[1].rank() != 1 || ins[2].rank() != 1 {
        return Err("scale_shift expects (x, gamma, beta)".into());
    }
    let axis = axis_of(attrs, ins[0].rank())?;
    if ins[0].dim(axis) != ins[1].dim(0) || ins[0].dim(axis) != ins[2].dim(0) {
        return Err("gamma/beta extents must match the channel axis".into());
    }
    Ok(ins[0].clone())
}

// ---- TDL descriptions -----------------------------------------------------------

/// Builds per-rank variables, returning `(builder, vars)`.
fn vars_for_rank(name: &str, ranks: &[usize], rank: usize) -> (DescBuilder, Vec<tofu_tdl::Var>) {
    let mut b = DescBuilder::new(name, ranks);
    let vars = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    (b, vars)
}

fn tdl_bias_add(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = axis_of(attrs, rank).ok()?;
    let (b, vars) = vars_for_rank("bias_add", &[rank, 1], rank);
    let coords: Vec<_> = vars.iter().map(|v| v.at()).collect();
    let body = b.input(0, &coords) + b.input(1, &[vars[axis].at()]);
    b.build(body).ok()
}

fn tdl_mul_bcast(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = axis_of(attrs, rank).ok()?;
    let (b, vars) = vars_for_rank("mul_bcast", &[rank, 1], rank);
    let coords: Vec<_> = vars.iter().map(|v| v.at()).collect();
    let body = b.input(0, &coords) * b.input(1, &[vars[axis].at()]);
    b.build(body).ok()
}

fn tdl_reduce_to_axis(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    // out[c] = Σ_{all other dims} x[..., c, ...].
    let rank = ins.first()?.rank();
    let axis = axis_of(attrs, rank).ok()?;
    let mut b = DescBuilder::new("reduce_to_axis", &[rank]);
    let c = b.output_var("c");
    let mut coords = Vec::with_capacity(rank);
    for d in 0..rank {
        if d == axis {
            coords.push(c.at());
        } else {
            coords.push(b.reduce_var(format!("r{d}")).at());
        }
    }
    let body = b.input(0, &coords);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_mul_reduce(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = axis_of(attrs, rank).ok()?;
    let mut b = DescBuilder::new("mul_reduce", &[rank, rank]);
    let c = b.output_var("c");
    let mut coords = Vec::with_capacity(rank);
    for d in 0..rank {
        if d == axis {
            coords.push(c.at());
        } else {
            coords.push(b.reduce_var(format!("r{d}")).at());
        }
    }
    let body = b.input(0, &coords) * b.input(1, &coords);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_sum_axis(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = axis_of(attrs, rank).ok()?;
    let mut b = DescBuilder::new("sum_axis", &[rank]);
    // Output vars for the surviving dims (in order), one reduce var for axis.
    let mut out_vars = Vec::new();
    for d in 0..rank {
        if d != axis {
            out_vars.push(b.output_var(format!("d{d}")));
        }
    }
    let k = b.reduce_var("k");
    let mut coords = Vec::with_capacity(rank);
    let mut next_out = 0;
    for d in 0..rank {
        if d == axis {
            coords.push(k.at());
        } else {
            coords.push(out_vars[next_out].at());
            next_out += 1;
        }
    }
    let body = b.input(0, &coords);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_softmax(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    // Softmax normalizes each row along `axis`: the normalized dimension is
    // an opaque function of the whole row and is unsplittable; every other
    // dimension partitions. The rank-2 description is kept verbatim (same
    // variable names, hence the same "split:b" strategy id) so existing
    // models see bit-identical plans.
    let rank = ins.first().map_or(2, |s| s.rank());
    let axis = ins
        .first()
        .and_then(|s| softmax_axis_of(s, attrs).ok())
        .unwrap_or(rank - 1);
    if rank == 2 && axis == 1 {
        let mut b = DescBuilder::new("softmax", &[2]);
        let (bb, i) = (b.output_var("b"), b.output_var("i"));
        let row = b.input(0, &[bb.at(), tofu_tdl::builder::Idx::full()]);
        let body = b.opaque("softmax_row", vec![row], &[i]);
        return b.build(body).ok();
    }
    let mut b = DescBuilder::new("softmax", &[rank]);
    let vars: Vec<_> = (0..rank)
        .map(|d| b.output_var(if d == axis { "i".to_string() } else { format!("d{d}") }))
        .collect();
    let coords: Vec<_> = (0..rank)
        .map(|d| if d == axis { tofu_tdl::builder::Idx::full() } else { vars[d].at() })
        .collect();
    let row = b.input(0, &coords);
    let body = b.opaque("softmax_row", vec![row], &[vars[axis]]);
    b.build(body).ok()
}

fn tdl_sum_all(ins: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[] = Σ_everything x[...]: every input dimension is a reduction
    // variable, so any axis may split with output reduction.
    let rank = ins.first()?.rank();
    if rank == 0 {
        return None;
    }
    let mut b = DescBuilder::new("sum_all", &[rank]);
    let coords: Vec<_> = (0..rank).map(|d| b.reduce_var(format!("r{d}")).at()).collect();
    let body = b.input(0, &coords);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_bcast_like(ins: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // out[...] = s[] — the scalar is replicated to every shard.
    let rank = ins.get(1)?.rank();
    let mut b = DescBuilder::new("bcast_like", &[0, rank]);
    let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    let coords: Vec<_> = vars.iter().map(|v| v.at()).collect();
    let body = b.input(0, &[]) + b.input(1, &coords) * tofu_tdl::Exp::constant(0.0);
    b.build(body).ok()
}

fn tdl_softmax_ce(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // loss = Σ_b Opaque(logits[b, :], labels[b]).
    let mut b = DescBuilder::new("softmax_ce", &[2, 1]);
    let bb = b.reduce_var("b");
    let row = b.input(0, &[bb.at(), tofu_tdl::builder::Idx::full()]);
    let label = b.input(1, &[bb.at()]);
    let body = b.opaque("ce_row", vec![row, label], &[]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_softmax_ce_grad(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    let mut b = DescBuilder::new("softmax_ce_grad", &[2, 1]);
    let (bb, i) = (b.output_var("b"), b.output_var("i"));
    let row = b.input(0, &[bb.at(), tofu_tdl::builder::Idx::full()]);
    let label = b.input(1, &[bb.at()]);
    let body = b.opaque("ce_grad_row", vec![row, label], &[i]);
    b.build(body).ok()
}

fn tdl_scale_shift(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = axis_of(attrs, rank).ok()?;
    let (b, vars) = vars_for_rank("scale_shift", &[rank, 1, 1], rank);
    let coords: Vec<_> = vars.iter().map(|v| v.at()).collect();
    let body = b.input(0, &coords) * b.input(1, &[vars[axis].at()])
        + b.input(2, &[vars[axis].at()]);
    b.build(body).ok()
}

// ---- Gradients --------------------------------------------------------------------

fn grad_bias_add(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let attrs = ctx.attrs.clone();
    let db = ctx.op("reduce_to_axis", &[ctx.out_grad], attrs)?;
    Ok(vec![Some(ctx.out_grad), Some(db)])
}

fn grad_scale_shift(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let attrs = ctx.attrs.clone();
    let (x, gamma) = (ctx.inputs[0], ctx.inputs[1]);
    let dx = ctx.op("mul_bcast", &[ctx.out_grad, gamma], attrs.clone())?;
    let dgamma = ctx.op("mul_reduce", &[ctx.out_grad, x], attrs.clone())?;
    let dbeta = ctx.op("reduce_to_axis", &[ctx.out_grad], attrs)?;
    Ok(vec![Some(dx), Some(dgamma), Some(dbeta)])
}

fn grad_softmax(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // dx = y ⊙ (dy − Σ_axis dy·y), computed by a fused row kernel so the
    // normalized axis stays a single opaque TDL function.
    let attrs = ctx.attrs.clone();
    let dx = ctx.op("softmax_grad", &[ctx.out_grad, ctx.output], attrs)?;
    Ok(vec![Some(dx)])
}

fn grad_sum_all(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let x = ctx.inputs[0];
    let dx = ctx.op("bcast_like", &[ctx.out_grad, x], Attrs::new())?;
    Ok(vec![Some(dx)])
}

fn grad_softmax_ce(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    // d(loss)/d(logits) = out_grad · (softmax(logits) - onehot(labels)). The
    // out-grad is the scalar cotangent of the loss; dropping it is only
    // correct when the loss is the terminal node and seeded with 1 — the
    // finite-difference oracle in `tests/gradcheck.rs` scales the loss and
    // catches that shortcut.
    let (logits, labels) = (ctx.inputs[0], ctx.inputs[1]);
    let g0 = ctx.op("softmax_ce_grad", &[logits, labels], Attrs::new())?;
    let scale = ctx.op("bcast_like", &[ctx.out_grad, g0], Attrs::new())?;
    let g = ctx.op("mul", &[g0, scale], Attrs::new())?;
    Ok(vec![Some(g), None])
}

// ---- Definitions --------------------------------------------------------------------

/// Returns the reduction/broadcast/loss operator definitions.
pub fn defs() -> Vec<OpDef> {
    vec![
        OpDef {
            name: "bias_add",
            category: OpCategory::Reduction,
            infer_shape: shape_bias_add,
            tdl: Some(tdl_bias_add),
            gradient: Some(grad_bias_add),
            flops: flops_per_elem,
        },
        OpDef {
            name: "reduce_to_axis",
            category: OpCategory::Reduction,
            infer_shape: shape_reduce_to_axis,
            tdl: Some(tdl_reduce_to_axis),
            gradient: None,
            flops: |ins, _, _| ins[0].volume() as f64,
        },
        OpDef {
            name: "mul_bcast",
            category: OpCategory::Reduction,
            infer_shape: shape_mul_bcast,
            tdl: Some(tdl_mul_bcast),
            gradient: None,
            flops: flops_per_elem,
        },
        OpDef {
            name: "mul_reduce",
            category: OpCategory::Reduction,
            infer_shape: shape_mul_reduce,
            tdl: Some(tdl_mul_reduce),
            gradient: None,
            flops: |ins, _, _| 2.0 * ins[0].volume() as f64,
        },
        OpDef {
            name: "sum_axis",
            category: OpCategory::Reduction,
            infer_shape: shape_sum_axis,
            tdl: Some(tdl_sum_axis),
            gradient: None,
            flops: |ins, _, _| ins[0].volume() as f64,
        },
        OpDef {
            name: "max_axis",
            category: OpCategory::Reduction,
            infer_shape: shape_sum_axis,
            tdl: Some(tdl_sum_axis),
            gradient: None,
            flops: |ins, _, _| ins[0].volume() as f64,
        },
        OpDef {
            name: "min_axis",
            category: OpCategory::Reduction,
            infer_shape: shape_sum_axis,
            tdl: Some(tdl_sum_axis),
            gradient: None,
            flops: |ins, _, _| ins[0].volume() as f64,
        },
        OpDef {
            name: "prod_axis",
            category: OpCategory::Reduction,
            infer_shape: shape_sum_axis,
            tdl: Some(tdl_sum_axis),
            gradient: None,
            flops: |ins, _, _| ins[0].volume() as f64,
        },
        OpDef {
            name: "softmax",
            category: OpCategory::Reduction,
            infer_shape: shape_softmax,
            tdl: Some(tdl_softmax),
            gradient: Some(grad_softmax),
            flops: |_, out, _| 5.0 * out.volume() as f64,
        },
        OpDef {
            name: "sum_all",
            category: OpCategory::Reduction,
            infer_shape: shape_sum_all,
            tdl: Some(tdl_sum_all),
            gradient: Some(grad_sum_all),
            flops: |ins, _, _| ins[0].volume() as f64,
        },
        OpDef {
            name: "bcast_like",
            category: OpCategory::Data,
            infer_shape: shape_bcast_like,
            tdl: Some(tdl_bcast_like),
            gradient: None,
            flops: |_, out, _| out.volume() as f64,
        },
        OpDef {
            name: "softmax_ce",
            category: OpCategory::Loss,
            infer_shape: shape_softmax_ce,
            tdl: Some(tdl_softmax_ce),
            gradient: Some(grad_softmax_ce),
            flops: |ins, _, _| 6.0 * ins[0].volume() as f64,
        },
        OpDef {
            name: "softmax_ce_grad",
            category: OpCategory::Loss,
            infer_shape: shape_softmax_ce_grad,
            tdl: Some(tdl_softmax_ce_grad),
            gradient: None,
            flops: |_, out, _| 6.0 * out.volume() as f64,
        },
        OpDef {
            name: "scale_shift",
            category: OpCategory::Reduction,
            infer_shape: shape_scale_shift,
            tdl: Some(tdl_scale_shift),
            gradient: Some(grad_scale_shift),
            flops: |_, out, _| 2.0 * out.volume() as f64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tdl::{discover_strategies, InputRequirement};

    #[test]
    fn bias_add_shapes() {
        let x = Shape::new(vec![4, 8]);
        let b = Shape::new(vec![8]);
        assert_eq!(shape_bias_add(&[x.clone(), b], &Attrs::new()).unwrap(), x);
        let wrong = Shape::new(vec![7]);
        assert!(shape_bias_add(&[x, wrong], &Attrs::new()).is_err());
    }

    #[test]
    fn reduce_to_axis_shape() {
        let x = Shape::new(vec![4, 8, 2]);
        let out = shape_reduce_to_axis(&[x], &Attrs::new().with_int("axis", 1)).unwrap();
        assert_eq!(out.dims(), &[8]);
    }

    #[test]
    fn sum_axis_removes_dim() {
        let x = Shape::new(vec![4, 8, 2]);
        let out = shape_sum_axis(&[x], &Attrs::new().with_int("axis", 0)).unwrap();
        assert_eq!(out.dims(), &[8, 2]);
    }

    #[test]
    fn softmax_is_batch_splittable_only() {
        let desc = tdl_softmax(&[Shape::new(vec![4, 8])], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 1, "only the batch dimension may split");
        assert_eq!(s[0].id, "split:b");
    }

    #[test]
    fn softmax_rank3_splits_batch_and_row_dims() {
        let x = Shape::new(vec![4, 8, 8]);
        assert_eq!(shape_softmax(std::slice::from_ref(&x), &Attrs::new()).unwrap(), x);
        let desc = tdl_softmax(&[x], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        // Head and token dims split; the normalized axis is opaque.
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].id, "split:d0");
        assert_eq!(s[1].id, "split:d1");
    }

    #[test]
    fn softmax_rejects_bad_axis_and_rank() {
        assert!(shape_softmax(&[Shape::new(vec![4])], &Attrs::new()).is_err());
        assert!(
            shape_softmax(&[Shape::new(vec![4, 4])], &Attrs::new().with_int("axis", 2)).is_err()
        );
    }

    #[test]
    fn sum_all_reduces_every_axis() {
        let x = Shape::new(vec![4, 8]);
        assert_eq!(shape_sum_all(std::slice::from_ref(&x), &Attrs::new()).unwrap().rank(), 0);
        let desc = tdl_sum_all(&[x], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|st| st.output.is_reduce()));
    }

    #[test]
    fn reduce_to_axis_reduction_strategies_split_the_input() {
        let desc = tdl_reduce_to_axis(
            &[Shape::new(vec![4, 8])],
            &Attrs::new().with_int("axis", 1),
        )
        .unwrap();
        let s = discover_strategies(&desc).unwrap();
        // split:c plus reduce:r0.
        assert_eq!(s.len(), 2);
        let red = s.iter().find(|st| st.output.is_reduce()).unwrap();
        assert!(matches!(red.inputs[0], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn scale_shift_strategy_split_channel() {
        let desc = tdl_scale_shift(
            &[Shape::new(vec![2, 4, 8, 8]), Shape::new(vec![4]), Shape::new(vec![4])],
            &Attrs::new(),
        )
        .unwrap();
        let s = discover_strategies(&desc).unwrap();
        // Splitting the channel dim splits gamma and beta too.
        let ch = &s[1];
        assert!(matches!(ch.inputs[1], InputRequirement::Split { dim: 0, .. }));
        assert!(matches!(ch.inputs[2], InputRequirement::Split { dim: 0, .. }));
        // Splitting the batch dim replicates gamma/beta.
        assert_eq!(s[0].inputs[1], InputRequirement::Replicated);
    }

    #[test]
    fn softmax_ce_is_scalar() {
        let out = shape_softmax_ce(
            &[Shape::new(vec![4, 10]), Shape::new(vec![4])],
            &Attrs::new(),
        )
        .unwrap();
        assert_eq!(out.rank(), 0);
    }
}
