//! A small synchronous client for the plan service.
//!
//! One [`PlanClient`] wraps one TCP connection and issues one request at a
//! time (send frame, read frame); correlation ids are still checked so a
//! protocol bug surfaces as an error rather than a mismatched answer.
//!
//! [`PlanClient::connect_with_retry`] adds fleet-churn resilience: transport
//! failures (connection refused, reset mid-request, read timeout) trigger a
//! reconnect-and-resend loop paced by the runtime's seeded
//! [`BackoffSchedule`] — deterministic delays for a given seed — while typed
//! server errors are **never** retried (the server answered; asking again
//! buys nothing). Resending is safe because plan requests are idempotent:
//! answers are a pure function of the request fingerprint, and the server's
//! response cache dedupes repeats. When the attempt budget runs out the
//! client surrenders with the typed [`ClientError::Exhausted`], carrying the
//! last underlying failure.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tofu_core::recursive::PartitionOptions;
use tofu_graph::Graph;
use tofu_obs::json::Json;
use tofu_runtime::BackoffSchedule;

use crate::protocol::{
    encode_partition, read_frame, write_frame, ErrorCode, ProtocolError, Request, Response,
    DEFAULT_MAX_FRAME,
};

/// A served plan answer.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// True when answered from the server's response cache.
    pub cached: bool,
    /// The request fingerprint (hex).
    pub fingerprint: String,
    /// The canonical plan JSON (see [`crate::protocol::plan_to_json`]).
    pub plan: Json,
}

/// Client-side failure: either a transport/protocol error or a typed
/// error response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Frame or message-layer failure.
    Protocol(ProtocolError),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered something unexpected for this request.
    UnexpectedResponse(String),
    /// The reconnect-with-retry budget ran out; `last` is the final
    /// underlying failure.
    Exhausted {
        /// Total attempts made (initial try included).
        attempts: usize,
        /// The failure of the last attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.as_str())
            }
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s); last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Exhausted { last, .. } => Some(&**last),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// A blocking connection to a [`crate::server::PlanServer`].
///
/// # Examples
///
/// ```no_run
/// use tofu_core::recursive::PartitionOptions;
/// use tofu_serve::client::PlanClient;
/// # let graph = tofu_graph::Graph::new();
///
/// let mut client = PlanClient::connect("127.0.0.1:7070").unwrap();
/// let opts = PartitionOptions { workers: 8, ..Default::default() };
/// let plan = client.partition("tenant-a", &graph, &opts, None).unwrap();
/// println!("cached: {} fp: {}", plan.cached, plan.fingerprint);
/// ```
pub struct PlanClient {
    stream: TcpStream,
    max_frame: usize,
    next_id: u64,
    retry: Option<RetryState>,
}

/// Reconnect-and-resend behaviour for [`PlanClient::connect_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryOptions {
    /// Total attempts per operation, initial try included (0 means 1).
    pub attempts: usize,
    /// Base delay of the seeded decorrelated-jitter backoff.
    pub backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Jitter seed: equal seeds give the identical delay sequence, so a
    /// churn scenario's retry timing replays deterministically.
    pub jitter_seed: u64,
    /// Per-request read timeout on the socket; a served answer must start
    /// arriving within it or the attempt counts as failed. `None` blocks
    /// forever.
    pub request_timeout: Option<Duration>,
}

impl Default for RetryOptions {
    fn default() -> RetryOptions {
        RetryOptions {
            attempts: 5,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x7e70,
            request_timeout: Some(Duration::from_secs(5)),
        }
    }
}

struct RetryState {
    addr: String,
    opts: RetryOptions,
    backoff: BackoffSchedule,
}

impl PlanClient {
    /// Connects to a plan server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<PlanClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(PlanClient { stream, max_frame: DEFAULT_MAX_FRAME, next_id: 1, retry: None })
    }

    /// Connects with reconnect-and-resend resilience: the initial connect
    /// gets the full attempt budget, and later transport failures
    /// (including per-request timeouts) make the client reconnect to `addr`
    /// and resend before giving up with [`ClientError::Exhausted`]. Typed
    /// server errors pass through unretried.
    pub fn connect_with_retry(addr: &str, opts: RetryOptions) -> Result<PlanClient, ClientError> {
        let attempts = opts.attempts.max(1);
        let mut backoff = BackoffSchedule::new(opts.backoff, opts.max_backoff, opts.jitter_seed);
        let mut last: Option<ClientError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                let d = backoff.next_delay();
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
            }
            match Self::dial(addr, opts.request_timeout) {
                Ok(stream) => {
                    return Ok(PlanClient {
                        stream,
                        max_frame: DEFAULT_MAX_FRAME,
                        next_id: 1,
                        retry: Some(RetryState { addr: addr.to_string(), opts, backoff }),
                    });
                }
                Err(e) => last = Some(ClientError::Protocol(ProtocolError::Io(e))),
            }
        }
        Err(ClientError::Exhausted {
            attempts,
            last: Box::new(last.expect("at least one connect attempt ran")),
        })
    }

    fn dial(addr: &str, timeout: Option<Duration>) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        Ok(stream)
    }

    /// The underlying stream (tests use this to inject raw frames).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.round_trip_bytes(&req.to_bytes())
    }

    fn round_trip_once(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        let payload = read_frame(&mut self.stream, self.max_frame)?
            .ok_or(ProtocolError::Truncated { want: 0 })?;
        Ok(Response::from_bytes(&payload)?)
    }

    fn round_trip_bytes(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        let mut last = match self.round_trip_once(payload) {
            Ok(r) => return Ok(r),
            // Only transport failures are retryable; a typed server error
            // or a correlation mismatch means the server actually answered.
            Err(e @ ClientError::Protocol(_)) if self.retry.is_some() => e,
            Err(e) => return Err(e),
        };
        let attempts = self.retry.as_ref().map(|r| r.opts.attempts.max(1)).unwrap_or(1);
        for _ in 2..=attempts {
            {
                let r = self.retry.as_mut().expect("retry state checked above");
                let d = r.backoff.next_delay();
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
                match Self::dial(&r.addr, r.opts.request_timeout) {
                    Ok(stream) => self.stream = stream,
                    Err(e) => {
                        last = ClientError::Protocol(ProtocolError::Io(e));
                        continue;
                    }
                }
            }
            match self.round_trip_once(payload) {
                Ok(r) => return Ok(r),
                Err(e @ ClientError::Protocol(_)) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Exhausted { attempts, last: Box::new(last) })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Requests a partition plan. `deadline_ms` is a relative deadline the
    /// server enforces; expired requests come back as
    /// [`ErrorCode::DeadlineMissed`].
    pub fn partition(
        &mut self,
        tenant: &str,
        graph: &Graph,
        options: &PartitionOptions,
        deadline_ms: Option<u64>,
    ) -> Result<ServedPlan, ClientError> {
        let id = self.fresh_id();
        // Encode from borrowed parts: no Graph clone per request.
        let payload = encode_partition(id, tenant, graph, options, deadline_ms);
        match self.round_trip_bytes(&payload)? {
            Response::Plan { id: rid, cached, fingerprint, plan } if rid == id => {
                Ok(ServedPlan { cached, fingerprint, plan })
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the server's statistics document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Stats { id })? {
            Response::Stats { id: rid, body } if rid == id => Ok(body),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Liveness probe; errors if the server does not answer pong.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.round_trip(&Request::Ping { id })? {
            Response::Pong { id: rid } if rid == id => Ok(()),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}
