//! Built-in operator catalogue.
//!
//! The catalogue is calibrated to the structure the paper reports for MXNet
//! v0.11 (§4.1): a large element-wise family, a dense-linear-algebra and
//! convolution core with output-reduction strategies, two opaque-function
//! operators, and a handful of sparse operators that TDL cannot describe.

pub mod attention;
pub mod conv;
pub mod data;
pub mod elementwise;
pub mod linalg;
pub mod reduce;

use tofu_tdl::{DescBuilder, TdlDesc};
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::registry::OpDef;

/// Assembles every built-in operator definition.
pub fn builtins() -> Vec<OpDef> {
    let mut ops = Vec::new();
    ops.extend(elementwise::defs());
    ops.extend(linalg::defs());
    ops.extend(attention::defs());
    ops.extend(conv::defs());
    ops.extend(reduce::defs());
    ops.extend(data::defs());
    ops
}

// ---- Shared shape-inference helpers -------------------------------------

/// Output shape equals the first input's shape (arbitrary arity, all inputs
/// must agree).
pub(crate) fn shape_same_all(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    let first = ins.first().ok_or("expected at least one input")?;
    for s in ins {
        if s != first {
            return Err(format!("operand shapes differ: {first} vs {s}"));
        }
    }
    Ok(first.clone())
}

/// Output shape equals the first input's shape; later inputs unconstrained.
pub(crate) fn shape_like_first(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    ins.first().cloned().ok_or_else(|| "expected at least one input".to_string())
}

/// Flop estimate of one flop per output element.
pub(crate) fn flops_per_elem(_: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    out.volume() as f64
}

// ---- Shared TDL builders --------------------------------------------------

/// Identity-access element-wise description over `num_inputs` inputs of the
/// given rank.
pub(crate) fn ewise_desc(name: &str, num_inputs: usize, rank: usize) -> TdlDesc {
    let ranks = vec![rank; num_inputs];
    let mut b = DescBuilder::new(name, &ranks);
    let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    let coords: Vec<_> = vars.iter().map(|v| v.at()).collect();
    let mut body = if num_inputs == 0 {
        tofu_tdl::Exp::constant(0.0)
    } else {
        b.input(0, &coords)
    };
    for i in 1..num_inputs {
        body = body + b.input(i, &coords);
    }
    b.build(body).expect("element-wise description is always valid")
}

/// TDL builder for unary element-wise operators.
pub(crate) fn tdl_ewise1(ins: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    Some(ewise_desc("ewise1", 1, ins.first().map(|s| s.rank())?))
}

/// TDL builder for binary element-wise operators.
pub(crate) fn tdl_ewise2(ins: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    Some(ewise_desc("ewise2", 2, ins.first().map(|s| s.rank())?))
}

/// TDL builder for element-wise operators of any arity.
pub(crate) fn tdl_ewise_n(ins: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    Some(ewise_desc("ewise_n", ins.len(), ins.first().map(|s| s.rank())?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewise_desc_is_elementwise_at_any_rank() {
        for rank in 1..=4 {
            for arity in 1..=3 {
                let d = ewise_desc("t", arity, rank);
                assert!(d.is_elementwise(), "rank {rank} arity {arity}");
                assert_eq!(d.output_rank(), rank);
            }
        }
    }

    #[test]
    fn builtins_have_unique_names() {
        let ops = builtins();
        let mut names: Vec<&str> = ops.iter().map(|d| d.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate op names registered");
    }

    #[test]
    fn shape_same_all_agrees() {
        let a = Shape::new(vec![2, 3]);
        assert_eq!(shape_same_all(&[a.clone(), a.clone()], &Attrs::new()).unwrap(), a);
        let b = Shape::new(vec![3, 2]);
        assert!(shape_same_all(&[a, b], &Attrs::new()).is_err());
        assert!(shape_same_all(&[], &Attrs::new()).is_err());
    }
}
