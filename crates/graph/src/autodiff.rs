//! Reverse-mode automatic differentiation.
//!
//! Backward nodes are appended to the same graph, tagged with their forward
//! origin (`NodeTags::fw_origin`) — exactly the association Tofu's coarsening
//! pass uses to group each forward operator with its backward operators
//! (§5.1). When a forward tensor feeds several consumers, the chain rule sums
//! the incoming gradients with an `add_n` node; the paper's grouping rule
//! attaches that summation to the tensor's group, which we record via
//! [`GradInfo`].

use std::collections::BTreeMap;

use crate::attrs::Attrs;
use crate::graph::{Graph, NodeId, NodeTags, TensorId};
use crate::registry::{self, GradCtx, GraphError};
use crate::Result;

/// The result of a backward pass.
#[derive(Debug, Clone, Default)]
pub struct GradInfo {
    grads: BTreeMap<TensorId, TensorId>,
}

impl GradInfo {
    /// Gradient tensor of a forward tensor, if one was computed.
    pub fn grad(&self, t: TensorId) -> Option<TensorId> {
        self.grads.get(&t).copied()
    }

    /// Iterates over `(forward, gradient)` tensor pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TensorId, TensorId)> + '_ {
        self.grads.iter().map(|(&a, &b)| (a, b))
    }

    /// Number of gradients recorded.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when no gradients were recorded.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

/// Appends the backward pass for `loss` to the graph.
///
/// Gradients are materialized for every tensor on a path from a `wrt` tensor
/// to the loss; the returned [`GradInfo`] maps forward tensors to gradient
/// tensors and the graph's tensor metadata records the same pairing
/// (`TensorMeta::grad_of`).
///
/// # Errors
///
/// Fails with [`GraphError::Autodiff`] when a required operator has no
/// registered gradient, or when `loss` is not a scalar.
pub fn backward(g: &mut Graph, loss: TensorId, wrt: &[TensorId]) -> Result<GradInfo> {
    if g.tensor(loss).shape.rank() != 0 {
        return Err(GraphError::Autodiff(format!(
            "loss must be a scalar, got shape {}",
            g.tensor(loss).shape
        )));
    }
    let num_forward_nodes = g.num_nodes();

    // Running gradient accumulator per forward tensor. Contributions are
    // summed *incrementally* the moment they are produced — MXNet's in-place
    // gradient aggregation, whose absence the paper blames for TensorFlow's
    // 2x slowdown on large RNNs (§7.2): a terminal n-ary sum would keep all
    // per-timestep weight-gradient partials alive simultaneously.
    let mut pending: BTreeMap<TensorId, TensorId> = BTreeMap::new();
    let accumulate =
        |g: &mut Graph, pending: &mut BTreeMap<TensorId, TensorId>, t: TensorId, c: TensorId| -> Result<()> {
            match pending.remove(&t) {
                None => {
                    pending.insert(t, c);
                }
                Some(prev) => {
                    let name = g.fresh_name("grad_acc");
                    let tags = NodeTags { is_backward: true, ..NodeTags::default() };
                    let sum = g.add_op_tagged("add", &name, &[prev, c], Attrs::new(), tags)?;
                    pending.insert(t, sum);
                }
            }
            Ok(())
        };

    // Seed: d(loss)/d(loss) = 1.
    let seed_tags = NodeTags { is_backward: true, ..NodeTags::default() };
    let seed = g.add_op_tagged("ones_like", "grad_seed", &[loss], Attrs::new(), seed_tags)?;
    accumulate(g, &mut pending, loss, seed)?;

    let mut info = GradInfo::default();

    // Process forward nodes in reverse topological (= reverse insertion)
    // order. By the time a node is visited, every consumer of its output has
    // already contributed.
    for idx in (0..num_forward_nodes).rev() {
        let node_id = NodeId(idx);
        let (op, inputs, output, attrs, fw_tags, node_name) = {
            let n = g.node(node_id);
            (n.op.clone(), n.inputs.clone(), n.output, n.attrs.clone(), n.tags.clone(), n.name.clone())
        };
        let Some(out_grad) = pending.remove(&output) else {
            continue; // Not on any path to the loss.
        };
        let bw_tags = NodeTags {
            is_backward: true,
            fw_origin: Some(node_id),
            layer: fw_tags.layer,
            timestep: fw_tags.timestep,
            cell_position: fw_tags.cell_position.clone(),
            device: None,
        };
        g.set_grad_of(out_grad, output);
        info.grads.insert(output, out_grad);

        let def = registry::lookup(&op)?;
        let grad_fn = def.gradient.ok_or_else(|| {
            GraphError::Autodiff(format!("operator {op:?} (node {node_name:?}) has no gradient"))
        })?;
        let mut ctx = GradCtx::new(
            g,
            inputs.clone(),
            output,
            out_grad,
            attrs,
            format!("grad/{node_name}"),
            bw_tags,
        );
        let input_grads = grad_fn(&mut ctx)?;
        if input_grads.len() != inputs.len() {
            return Err(GraphError::Autodiff(format!(
                "gradient of {op:?} returned {} grads for {} inputs",
                input_grads.len(),
                inputs.len()
            )));
        }
        for (t, grad) in inputs.iter().zip(input_grads) {
            if let Some(grad) = grad {
                accumulate(g, &mut pending, *t, grad)?;
            }
        }
    }

    // Leaf tensors (weights, inputs): the accumulator already holds their
    // fully summed gradient.
    for &t in wrt {
        if let Some(grad) = pending.remove(&t) {
            g.set_grad_of(grad, t);
            info.grads.insert(t, grad);
        }
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tensor::Shape;

    fn simple_net(g: &mut Graph) -> (TensorId, TensorId, TensorId) {
        let x = g.add_input("x", Shape::new(vec![4, 8]));
        let w = g.add_weight("w", Shape::new(vec![8, 3]));
        let labels = g.add_input("labels", Shape::new(vec![4]));
        let logits = g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new()).unwrap();
        (w, logits, loss)
    }

    #[test]
    fn backward_produces_weight_gradient() {
        let mut g = Graph::new();
        let (w, logits, loss) = simple_net(&mut g);
        let info = backward(&mut g, loss, &[w]).unwrap();
        let gw = info.grad(w).expect("weight gradient");
        assert_eq!(g.tensor(gw).shape, g.tensor(w).shape);
        assert_eq!(g.tensor(gw).grad_of, Some(w));
        // Intermediate gradient recorded too.
        assert!(info.grad(logits).is_some());
        assert!(!info.is_empty());
    }

    #[test]
    fn backward_nodes_are_tagged_with_origin() {
        let mut g = Graph::new();
        let (w, _logits, loss) = simple_net(&mut g);
        let n_forward = 2;
        backward(&mut g, loss, &[w]).unwrap();
        let mut tagged = 0;
        for id in g.node_ids().skip(n_forward) {
            let n = g.node(id);
            assert!(n.tags.is_backward, "node {} untagged", n.name);
            if n.tags.fw_origin.is_some() {
                tagged += 1;
            }
        }
        assert!(tagged >= 2, "backward nodes carry fw_origin");
    }

    #[test]
    fn fan_out_gradients_are_summed() {
        // y = relu(x) used twice: z = y*y -> dz/dy flows along two paths...
        // Use x consumed by two matmuls instead, whose grads must be added.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![2, 2]));
        let w = g.add_weight("w", Shape::new(vec![2, 2]));
        let labels = g.add_input("labels", Shape::new(vec![2]));
        let a = g.add_op("matmul", "a", &[x, w], Attrs::new()).unwrap();
        let b = g.add_op("matmul", "b", &[x, w], Attrs::new()).unwrap();
        let s = g.add_op("add", "s", &[a, b], Attrs::new()).unwrap();
        let loss = g.add_op("softmax_ce", "loss", &[s, labels], Attrs::new()).unwrap();
        let info = backward(&mut g, loss, &[w]).unwrap();
        let gw = info.grad(w).unwrap();
        // w receives two contributions, summed by an incremental in-place
        // accumulation node.
        let producer = g.producer(gw).unwrap();
        assert_eq!(g.node(producer).op, "add");
        assert!(g.node(producer).name.starts_with("grad_acc"));
    }

    #[test]
    fn non_scalar_loss_is_rejected() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![2, 2]));
        let y = g.add_op("relu", "r", &[x], Attrs::new()).unwrap();
        assert!(backward(&mut g, y, &[x]).is_err());
    }

    #[test]
    fn missing_gradient_is_reported() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![2, 2]));
        // `sin` has no registered gradient.
        let y = g.add_op("sin", "s", &[x], Attrs::new()).unwrap();
        let z = g.add_op("sum_axis", "r0", &[y], Attrs::new().with_int("axis", 0)).unwrap();
        let l = g.add_op("sum_axis", "r1", &[z], Attrs::new().with_int("axis", 0)).unwrap();
        let err = backward(&mut g, l, &[x]).unwrap_err();
        assert!(err.to_string().contains("no gradient"), "{err}");
    }

    #[test]
    fn unrelated_wrt_gets_no_gradient() {
        let mut g = Graph::new();
        let (w, _logits, loss) = simple_net(&mut g);
        let unrelated = g.add_weight("unused", Shape::new(vec![3]));
        let info = backward(&mut g, loss, &[w, unrelated]).unwrap();
        assert!(info.grad(unrelated).is_none());
    }
}
