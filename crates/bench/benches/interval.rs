//! Criterion micro-benchmarks of the TDL machinery (§4): symbolic interval
//! analysis, strategy discovery and extent binding — the per-operator costs
//! the search pays once per class.

use criterion::{criterion_group, criterion_main, Criterion};

use tofu_graph::{lookup, Attrs};
use tofu_tdl::{access_regions, bind_extents, discover_strategies, SymInterval};
use tofu_tensor::Shape;

fn conv2d_desc() -> tofu_tdl::TdlDesc {
    let def = lookup("conv2d").unwrap();
    (def.tdl.unwrap())(
        &[Shape::new(vec![32, 64, 56, 56]), Shape::new(vec![64, 128, 3, 3])],
        &Attrs::new().with_int("pad", 1),
    )
    .unwrap()
}

fn bench_region_analysis(c: &mut Criterion) {
    let desc = conv2d_desc();
    let binding: Vec<SymInterval> =
        (0..desc.vars().len()).map(SymInterval::full_var).collect();
    c.bench_function("interval/conv2d_region_analysis", |b| {
        b.iter(|| access_regions(std::hint::black_box(&desc), &binding).unwrap())
    });
}

fn bench_strategy_discovery(c: &mut Criterion) {
    let desc = conv2d_desc();
    c.bench_function("interval/conv2d_discover_strategies", |b| {
        b.iter(|| discover_strategies(std::hint::black_box(&desc)).unwrap())
    });
}

fn bench_bind_extents(c: &mut Criterion) {
    let desc = conv2d_desc();
    let out = vec![32usize, 128, 56, 56];
    let ins = vec![vec![32usize, 64, 56, 56], vec![64usize, 128, 3, 3]];
    c.bench_function("interval/conv2d_bind_extents", |b| {
        b.iter(|| bind_extents(std::hint::black_box(&desc), &out, &ins).unwrap())
    });
}

criterion_group!(benches, bench_region_analysis, bench_strategy_discovery, bench_bind_extents);
criterion_main!(benches);
