//! GPT-style transformer decoder block training graphs.
//!
//! The paper predates transformers, but the workload is the standard test of
//! modern auto-partitioners: the known-good hand partition is megatron-style
//! — head-parallel attention (split the QKV projections along the head
//! dimension, keep attention head-local, allreduce the output projection)
//! and column/row-parallel MLP (split the first matmul's columns, reduce the
//! second matmul's inner dimension). Every op here carries a clean TDL
//! description, so Tofu's DP search can rediscover those splits from
//! interval analysis alone.
//!
//! Layout notes: activations are `(seq, d_model)` token matrices, attention
//! runs in the head layout `(heads, seq, d_head)` produced directly by the
//! head-indexed projections (`proj_heads`/`unproj_heads` — the catalogue has
//! no reshape op, and reshape is not TDL-describable anyway). Attention is
//! bidirectional (no causal mask: a mask operand would be elementwise and
//! change no partition structure, so it is omitted for clarity).

use tofu_graph::{autodiff, Attrs, Graph};
use tofu_tensor::Shape;

use crate::BuiltModel;

/// Configuration of a decoder block.
#[derive(Debug, Clone)]
pub struct DecoderConfig {
    /// Sequence length (tokens per step; batch is folded into the sequence).
    pub seq: usize,
    /// Model width; must be divisible by `heads`.
    pub d_model: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Hidden width of the position-wise MLP.
    pub d_ff: usize,
    /// Output vocabulary/classes for the training head.
    pub classes: usize,
    /// Add SGD update nodes.
    pub with_updates: bool,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig { seq: 32, d_model: 64, heads: 8, d_ff: 256, classes: 16, with_updates: true }
    }
}

impl DecoderConfig {
    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }
}

/// Builds a single-decoder-block training graph: layer norm → multi-head
/// self-attention → residual → layer norm → two-layer MLP → residual →
/// classifier, with softmax cross-entropy loss, backward pass and
/// (optionally) SGD updates.
pub fn decoder_block(cfg: &DecoderConfig) -> tofu_graph::Result<BuiltModel> {
    use tofu_graph::registry::GraphError;
    if cfg.heads == 0 || !cfg.d_model.is_multiple_of(cfg.heads) {
        return Err(GraphError::ShapeInference {
            node: "decoder_block".into(),
            op: "proj_heads".into(),
            detail: format!("d_model {} not divisible by heads {}", cfg.d_model, cfg.heads),
        });
    }
    let (s, d, h, k, f) = (cfg.seq, cfg.d_model, cfg.heads, cfg.d_head(), cfg.d_ff);
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new(vec![s, d]));
    let labels = g.add_input("labels", Shape::new(vec![s]));

    let g1 = g.add_weight("ln1_gamma", Shape::new(vec![d]));
    let b1 = g.add_weight("ln1_beta", Shape::new(vec![d]));
    let wq = g.add_weight("wq", Shape::new(vec![h, d, k]));
    let wk = g.add_weight("wk", Shape::new(vec![h, d, k]));
    let wv = g.add_weight("wv", Shape::new(vec![h, d, k]));
    let wo = g.add_weight("wo", Shape::new(vec![h, k, d]));
    let g2 = g.add_weight("ln2_gamma", Shape::new(vec![d]));
    let b2 = g.add_weight("ln2_beta", Shape::new(vec![d]));
    let w1 = g.add_weight("w_ff1", Shape::new(vec![d, f]));
    let bf = g.add_weight("b_ff1", Shape::new(vec![f]));
    let w2 = g.add_weight("w_ff2", Shape::new(vec![f, d]));
    let wout = g.add_weight("w_out", Shape::new(vec![d, cfg.classes]));
    let weights = vec![g1, b1, wq, wk, wv, wo, g2, b2, w1, bf, w2, wout];

    // Attention sub-block (pre-norm).
    let ln1 = g.add_op("layer_norm", "ln1", &[x, g1, b1], Attrs::new())?;
    let q = g.add_op("proj_heads", "q_proj", &[ln1, wq], Attrs::new())?;
    let kk = g.add_op("proj_heads", "k_proj", &[ln1, wk], Attrs::new())?;
    let v = g.add_op("proj_heads", "v_proj", &[ln1, wv], Attrs::new())?;
    // scores[h, i, j] = Q[h, i, :] · K[h, j, :] / √d_head.
    let scores = g.add_op("batch_matmul_nt", "scores", &[q, kk], Attrs::new())?;
    let scaled = g.add_op(
        "mul_scalar",
        "scale",
        &[scores],
        Attrs::new().with_float("scalar", 1.0 / (k as f64).sqrt()),
    )?;
    let probs = g.add_op("softmax", "probs", &[scaled], Attrs::new().with_int("axis", 2))?;
    let ctx = g.add_op("batch_matmul", "ctx", &[probs, v], Attrs::new())?;
    let attn = g.add_op("unproj_heads", "attn_out", &[ctx, wo], Attrs::new())?;
    let res1 = g.add_op("add", "res1", &[x, attn], Attrs::new())?;

    // Position-wise MLP sub-block.
    let ln2 = g.add_op("layer_norm", "ln2", &[res1, g2, b2], Attrs::new())?;
    let ff1 = g.add_op("matmul", "ffn1", &[ln2, w1], Attrs::new())?;
    let ff1b = g.add_op("bias_add", "ffn1_bias", &[ff1, bf], Attrs::new().with_int("axis", 1))?;
    let act = g.add_op("relu", "ffn1_relu", &[ff1b], Attrs::new())?;
    let ff2 = g.add_op("matmul", "ffn2", &[act, w2], Attrs::new())?;
    let res2 = g.add_op("add", "res2", &[res1, ff2], Attrs::new())?;

    // Training head.
    let logits = g.add_op("matmul", "logits", &[res2, wout], Attrs::new())?;
    let loss = g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new())?;

    let info = autodiff::backward(&mut g, loss, &weights)?;
    let grads: Vec<_> = weights.iter().filter_map(|&w| info.grad(w).map(|gw| (w, gw))).collect();
    if cfg.with_updates {
        for (i, &(w, gw)) in grads.iter().enumerate() {
            g.add_op(
                "sgd_update",
                &format!("upd{i}"),
                &[w, gw],
                Attrs::new().with_float("lr", 0.01),
            )?;
        }
    }
    Ok(BuiltModel { graph: g, loss, weights, inputs: vec![x, labels], grads, batch: s })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_decoder_builds_with_full_gradients() {
        let m = decoder_block(&DecoderConfig::default()).unwrap();
        assert!(m.graph.num_nodes() > 30);
        assert_eq!(m.grads.len(), m.weights.len(), "every weight has a gradient");
        assert_eq!(m.graph.tensor(m.loss).shape.rank(), 0);
    }

    #[test]
    fn rejects_indivisible_heads() {
        let cfg = DecoderConfig { d_model: 30, heads: 4, ..DecoderConfig::default() };
        assert!(decoder_block(&cfg).is_err());
    }

    #[test]
    fn updates_toggle() {
        let with = decoder_block(&DecoderConfig::default()).unwrap();
        let without =
            decoder_block(&DecoderConfig { with_updates: false, ..DecoderConfig::default() })
                .unwrap();
        assert!(with.graph.num_nodes() > without.graph.num_nodes());
    }

    #[test]
    fn weight_bytes_scale_with_config() {
        let cfg = DecoderConfig {
            seq: 8,
            d_model: 16,
            heads: 4,
            d_ff: 32,
            classes: 4,
            with_updates: false,
        };
        let m = decoder_block(&cfg).unwrap();
        // 2·(2·16) ln params + 4·(16·16) attention + 16·32 + 32 + 32·16 + 16·4 head.
        let expect = 2 * (2 * 16) + 4 * (16 * 16) + 16 * 32 + 32 + 32 * 16 + 16 * 4;
        assert_eq!(m.weight_bytes(), expect as u64 * 4);
    }
}
