//! Criterion micro-benchmarks of the partition search (the Table 1 quantity
//! at laptop-friendly scales): coarsening, one DP step, and the full
//! recursion, for MLP / CNN / RNN training graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tofu_core::dp::{search, DpOptions, ExtraInputs};
use tofu_core::recursive::{partition, PartitionOptions};
use tofu_core::{coarsen, ShapeView};
use tofu_models::{mlp, rnn, small_cnn, MlpConfig, RnnConfig, SmallCnnConfig};

fn bench_coarsen(c: &mut Criterion) {
    let model = rnn(&RnnConfig {
        layers: 4,
        hidden: 256,
        batch: 32,
        steps: 20,
        embed: 128,
        vocab: 256,
        with_updates: true,
    })
    .unwrap();
    c.bench_function("coarsen/rnn-4x20steps", |b| {
        b.iter(|| coarsen(std::hint::black_box(&model.graph)))
    });
}

fn bench_dp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_single_step");
    for depth in [2usize, 4, 8] {
        let model = mlp(&MlpConfig {
            batch: 64,
            dims: vec![256; depth + 1],
            classes: 32,
            with_updates: true,
        })
        .unwrap();
        let cg = coarsen(&model.graph);
        let view = ShapeView::from_graph(&model.graph);
        group.bench_with_input(BenchmarkId::new("mlp_depth", depth), &depth, |b, _| {
            b.iter(|| {
                search(&model.graph, &view, &cg, &ExtraInputs::new(), &DpOptions::default())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_full_recursion(c: &mut Criterion) {
    let mut group = c.benchmark_group("recursive_partition_8_workers");
    group.sample_size(10);

    let mlp_model = mlp(&MlpConfig {
        batch: 64,
        dims: vec![512, 512, 512],
        classes: 64,
        with_updates: true,
    })
    .unwrap();
    group.bench_function("mlp-3x512", |b| {
        b.iter(|| partition(&mlp_model.graph, &PartitionOptions::default()).unwrap())
    });

    let cnn_model = small_cnn(&SmallCnnConfig {
        batch: 16,
        channels: 4,
        image: 16,
        conv_channels: 32,
        conv_layers: 3,
        classes: 8,
    })
    .unwrap();
    group.bench_function("cnn-3conv", |b| {
        b.iter(|| partition(&cnn_model.graph, &PartitionOptions::default()).unwrap())
    });

    let rnn_model = rnn(&RnnConfig {
        layers: 2,
        hidden: 256,
        batch: 32,
        steps: 8,
        embed: 128,
        vocab: 256,
        with_updates: true,
    })
    .unwrap();
    group.bench_function("rnn-2x8steps", |b| {
        b.iter(|| partition(&rnn_model.graph, &PartitionOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_coarsen, bench_dp_step, bench_full_recursion);
criterion_main!(benches);
