//! The plan server: TCP acceptor, connection handlers and the solver pool.
//!
//! # Architecture
//!
//! ```text
//!  clients ──TCP──► acceptor ──► one handler thread per connection
//!                                  │  parse frame, fingerprint request
//!                                  │
//!                     response cache (fingerprint → plan JSON)
//!                       hit ──► answer immediately (cached=true)
//!                       in-flight ──► join as waiter (single-flight)
//!                       miss ──► FairScheduler (per-tenant round-robin,
//!                                bounded → `overloaded` when full)
//!                                  │
//!                          solver pool (N threads)
//!                        partition_shared(&SearchCaches)
//!                                  │
//!                       answer leader + all joined waiters
//! ```
//!
//! Two cache layers cooperate: the serve-level *response cache* maps a whole
//! request fingerprint ([`tofu_core::request_fingerprint`]) to the finished
//! plan JSON, while the shared [`SearchCaches`] underneath deduplicates the
//! per-step DP work *across different requests* (two models sharing layers,
//! or one model at different worker counts, reuse each other's step plans).
//!
//! Every served plan is bit-identical to what a single-threaded
//! [`tofu_core::partition_cached`] call would produce for the same request:
//! both cache layers key on exact structural identity and store pure
//! functions of their keys, so concurrency only reorders who computes an
//! entry first.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tofu_core::recursive::{partition_shared, PartitionOptions};
use tofu_core::{request_fingerprint, SearchCaches};
use tofu_graph::Graph;
use tofu_obs::json::Json;
use tofu_obs::{Collector, Track};

use crate::protocol::{
    encode_plan_response, fingerprint_hex, plan_to_json, read_frame, write_frame, ErrorCode,
    PartitionRequest, ProtocolError, Request, Response, DEFAULT_MAX_FRAME,
};
use crate::scheduler::FairScheduler;

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Solver threads computing cache misses (clamped up to 1).
    pub solver_threads: usize,
    /// Admission cap: total queued misses before `overloaded` rejections.
    /// Zero rejects every cold request (hits still serve).
    pub queue_cap: usize,
    /// Maximum accepted frame payload in bytes.
    pub max_frame: usize,
    /// Optional observability sink: serve counters and per-solve spans land
    /// here on [`Track::serve`].
    pub collector: Option<Collector>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            solver_threads: 2,
            queue_cap: 64,
            max_frame: DEFAULT_MAX_FRAME,
            collector: None,
        }
    }
}

/// Monotonic serve-level counters (all `Relaxed`; consistency across fields
/// is not required for stats reporting).
#[derive(Default)]
pub struct ServeCounters {
    /// Partition requests received (any outcome).
    pub requests: AtomicU64,
    /// Answered from the response cache.
    pub hits: AtomicU64,
    /// Computed fresh (single-flight leaders).
    pub misses: AtomicU64,
    /// Joined an in-flight identical computation.
    pub joined: AtomicU64,
    /// Rejected by admission control.
    pub rejected: AtomicU64,
    /// Answered `deadline_missed`.
    pub deadline_missed: AtomicU64,
    /// Answered `shutting_down` (arrived after drain began; deliberately
    /// *not* counted in `requests`, which tallies only admitted-or-rejected
    /// work so `hits + misses + joined + rejected == requests` holds).
    pub shutting_down: AtomicU64,
    /// Partition search returned an error.
    pub search_failed: AtomicU64,
    /// Frames or messages that failed to parse.
    pub protocol_errors: AtomicU64,
}

/// A response destination: the connection's shared write half plus the
/// request's correlation id and deadline.
struct Waiter {
    conn: Arc<Mutex<TcpStream>>,
    id: u64,
    deadline: Option<Instant>,
}

/// The finished, immutable answer for one fingerprint. The plan is kept
/// pre-serialized: answering a hit splices the canonical text into the
/// response frame instead of cloning a JSON tree.
struct PlanPayload {
    fingerprint: String,
    plan_text: String,
}

enum PlanEntry {
    /// Computed; answer hits immediately.
    Ready(Arc<PlanPayload>),
    /// A leader is computing; these waiters joined behind it.
    Pending(Vec<Waiter>),
}

/// One queued cache miss (the single-flight leader's work order).
struct Job {
    fp: u128,
    graph: Graph,
    opts: PartitionOptions,
    leader: Waiter,
}

struct Shared {
    cfg: ServeConfig,
    caches: SearchCaches,
    plans: Mutex<HashMap<u128, PlanEntry>>,
    sched: FairScheduler<Job>,
    counters: ServeCounters,
    stop: AtomicBool,
    /// Graceful-shutdown latch: set by [`PlanServer::begin_drain`]. New
    /// partition requests are answered `shutting_down`; queued ones drain.
    draining: AtomicBool,
    /// try_clone'd handles used solely to shutdown sockets on close.
    conns: Mutex<Vec<TcpStream>>,
    started: Instant,
}

impl Shared {
    fn bump(&self, counter: &AtomicU64, name: &'static str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.cfg.collector {
            c.add_total(name, 1.0);
        }
    }
}

/// A running plan service bound to a TCP address.
///
/// # Examples
///
/// ```no_run
/// use tofu_serve::server::{PlanServer, ServeConfig};
///
/// let server = PlanServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
/// println!("serving on {}", server.addr());
/// server.shutdown();
/// ```
pub struct PlanServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Solver-pool threads, joined first during a drain so every queued
    /// request is answered before any connection closes.
    solvers: Vec<JoinHandle<()>>,
    handles: Vec<JoinHandle<()>>,
}

impl PlanServer {
    /// Binds, spawns the acceptor and solver pool, and returns immediately.
    /// Use address `"127.0.0.1:0"` for an OS-assigned test port.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<PlanServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let solver_threads = cfg.solver_threads.max(1);
        let queue_cap = cfg.queue_cap;
        let shared = Arc::new(Shared {
            cfg,
            caches: SearchCaches::new(),
            plans: Mutex::new(HashMap::new()),
            sched: FairScheduler::new(queue_cap),
            counters: ServeCounters::default(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let mut solvers = Vec::new();
        for i in 0..solver_threads {
            let shared = Arc::clone(&shared);
            solvers.push(
                std::thread::Builder::new()
                    .name(format!("tofu-solver-{i}"))
                    .spawn(move || solver_loop(&shared))
                    .expect("spawn solver"),
            );
        }
        let mut handles = Vec::new();
        {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("tofu-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))
                    .expect("spawn acceptor"),
            );
        }
        Ok(PlanServer { addr: local, shared, solvers, handles })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared search caches (exposed so tests and benches can assert
    /// hit/miss tallies).
    pub fn caches(&self) -> &SearchCaches {
        &self.shared.caches
    }

    /// Serve-level counters.
    pub fn counters(&self) -> &ServeCounters {
        &self.shared.counters
    }

    /// Stops accepting, drains solvers, closes connections, joins threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Flips the server into draining mode without closing anything: new
    /// partition requests are answered with a typed
    /// [`ErrorCode::ShuttingDown`] error, no further work is admitted, and
    /// the solver pool keeps answering everything already queued. Pings and
    /// stats still serve (stats report `"draining": true`). Idempotent;
    /// complete the shutdown with [`drain`](PlanServer::drain).
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.sched.close();
    }

    /// Graceful shutdown: [`begin_drain`](PlanServer::begin_drain), then
    /// wait for the solver pool to answer every queued request — no
    /// in-flight request is ever dropped — and only then close connections
    /// and join the remaining threads.
    pub fn drain(mut self) {
        self.begin_drain();
        // Solvers exit once the closed queue runs dry; joining them first
        // guarantees every admitted request was answered while its
        // connection was still open.
        for h in self.solvers.drain(..) {
            let _ = h.join();
        }
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.sched.close();
        for conn in self.shared.conns.lock().expect("conns lock").iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for h in self.solvers.drain(..).chain(self.handles.drain(..)) {
            let _ = h.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(clone);
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("tofu-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Sends a response over a shared write half; write errors mean the peer is
/// gone and are deliberately ignored (the server must outlive any client).
fn send(conn: &Arc<Mutex<TcpStream>>, resp: &Response) {
    send_bytes(conn, &resp.to_bytes());
}

fn send_bytes(conn: &Arc<Mutex<TcpStream>>, payload: &[u8]) {
    let mut stream = conn.lock().expect("conn write lock");
    let _ = write_frame(&mut *stream, payload);
}

fn send_error(conn: &Arc<Mutex<TcpStream>>, id: u64, code: ErrorCode, message: String) {
    send(conn, &Response::Error { id, code, message });
}

/// Best-effort extraction of a request id from a payload that failed full
/// parsing, so error responses can still be correlated.
fn extract_id(payload: &[u8]) -> u64 {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|t| tofu_obs::json::parse(t).ok())
        .and_then(|v| v.get("id").and_then(Json::as_f64))
        .filter(|f| *f >= 0.0 && f.fract() == 0.0)
        .map(|f| f as u64)
        .unwrap_or(0)
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    run_connection(&mut reader, &writer, shared);
    // The shutdown-registry holds another clone of this socket, so dropping
    // our handles alone would leave it open and the peer would never see
    // EOF; send FIN explicitly.
    let _ = reader.shutdown(Shutdown::Both);
}

fn run_connection(reader: &mut TcpStream, writer: &Arc<Mutex<TcpStream>>, shared: &Arc<Shared>) {
    let max = shared.cfg.max_frame;
    loop {
        let payload = match read_frame(reader, max) {
            Ok(Some(p)) => p,
            // Clean close, or a stream error we cannot answer on.
            Ok(None) | Err(ProtocolError::Truncated { .. }) | Err(ProtocolError::Io(_)) => return,
            Err(e @ ProtocolError::Oversized { .. }) => {
                // The payload was never read, so the stream cannot be
                // re-synchronized: answer, then close.
                shared.bump(&shared.counters.protocol_errors, "serve/protocol_errors");
                send_error(writer, 0, ErrorCode::Oversized, e.to_string());
                return;
            }
            Err(_) => return,
        };
        match Request::from_bytes(&payload) {
            Ok(Request::Ping { id }) => send(writer, &Response::Pong { id }),
            Ok(Request::Stats { id }) => send(writer, &stats_response(shared, id)),
            Ok(Request::Partition { id, req }) => {
                handle_partition(shared, writer, id, *req);
            }
            Err(e) => {
                shared.bump(&shared.counters.protocol_errors, "serve/protocol_errors");
                let id = extract_id(&payload);
                let code = match &e {
                    ProtocolError::UnknownType(_) => ErrorCode::UnknownType,
                    _ => ErrorCode::BadRequest,
                };
                send_error(writer, id, code, e.to_string());
            }
        }
    }
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn handle_partition(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, id: u64, req: PartitionRequest) {
    // Checked before `requests` is bumped: late arrivals are turned away,
    // not admitted, so the `hits + misses + joined + rejected == requests`
    // invariant is unaffected by a drain.
    if shared.draining.load(Ordering::SeqCst) {
        shared.bump(&shared.counters.shutting_down, "serve/shutting_down");
        send_error(writer, id, ErrorCode::ShuttingDown, "server is draining for shutdown".into());
        return;
    }
    shared.bump(&shared.counters.requests, "serve/requests");
    let deadline = req.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let fp = request_fingerprint(&req.graph, &req.options);

    let mut plans = shared.plans.lock().expect("plans lock");
    match plans.get_mut(&fp) {
        Some(PlanEntry::Ready(payload)) => {
            let payload = Arc::clone(payload);
            drop(plans);
            if expired(deadline) {
                shared.bump(&shared.counters.deadline_missed, "serve/deadline_missed");
                send_error(writer, id, ErrorCode::DeadlineMissed, "deadline elapsed".into());
                return;
            }
            shared.bump(&shared.counters.hits, "serve/hits");
            send_bytes(
                writer,
                &encode_plan_response(id, true, &payload.fingerprint, &payload.plan_text),
            );
        }
        Some(PlanEntry::Pending(waiters)) => {
            shared.bump(&shared.counters.joined, "serve/joined");
            waiters.push(Waiter { conn: Arc::clone(writer), id, deadline });
        }
        None => {
            plans.insert(fp, PlanEntry::Pending(Vec::new()));
            let job = Job {
                fp,
                graph: req.graph,
                opts: req.options,
                leader: Waiter { conn: Arc::clone(writer), id, deadline },
            };
            // Lock order note: `plans` is held across `sched.push` (which
            // only takes the scheduler's own lock and never blocks); solver
            // threads take the scheduler lock inside `pop` and release it
            // before touching `plans`, so the order is acyclic.
            match shared.sched.push(&req.tenant, job) {
                Ok(()) => {
                    shared.bump(&shared.counters.misses, "serve/misses");
                }
                Err(job) => {
                    // Not admitted: roll the in-flight entry back. No waiter
                    // can have joined — the lock was never released.
                    plans.remove(&fp);
                    drop(plans);
                    shared.bump(&shared.counters.rejected, "serve/rejected");
                    // A closed queue means a drain began after the entry
                    // check above; either way the request counted, so it is
                    // a rejection — but tell the client the honest reason.
                    let (code, msg) = if shared.draining.load(Ordering::SeqCst) {
                        (ErrorCode::ShuttingDown, "server is draining for shutdown".to_string())
                    } else {
                        (
                            ErrorCode::Overloaded,
                            format!("miss queue at capacity ({})", shared.cfg.queue_cap),
                        )
                    };
                    send_error(&job.leader.conn, job.leader.id, code, msg);
                }
            }
        }
    }
}

/// Removes a fingerprint's in-flight entry, returning its joined waiters.
fn take_waiters(shared: &Shared, fp: u128) -> Vec<Waiter> {
    match shared.plans.lock().expect("plans lock").remove(&fp) {
        Some(PlanEntry::Pending(w)) => w,
        Some(ready @ PlanEntry::Ready(_)) => {
            // Should not happen (only the solver owning the job fills it);
            // restore rather than drop cached work.
            shared.plans.lock().expect("plans lock").insert(fp, ready);
            Vec::new()
        }
        None => Vec::new(),
    }
}

fn fail_all(shared: &Shared, leader: &Waiter, waiters: &[Waiter], code: ErrorCode, msg: &str, counter: &AtomicU64, name: &'static str) {
    for w in std::iter::once(leader).chain(waiters.iter()) {
        shared.bump(counter, name);
        send_error(&w.conn, w.id, code, msg.to_string());
    }
}

fn solver_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.sched.pop() {
        if expired(job.leader.deadline) {
            let waiters = take_waiters(shared, job.fp);
            fail_all(
                shared,
                &job.leader,
                &waiters,
                ErrorCode::DeadlineMissed,
                "deadline elapsed while queued",
                &shared.counters.deadline_missed,
                "serve/deadline_missed",
            );
            continue;
        }
        let start = shared.cfg.collector.as_ref().map(|c| c.now_us());
        let result = catch_unwind(AssertUnwindSafe(|| {
            partition_shared(&job.graph, &job.opts, &shared.caches, shared.cfg.collector.as_ref())
        }));
        if let (Some(c), Some(s)) = (&shared.cfg.collector, start) {
            let name = format!(
                "solve {} ({} workers, {} nodes)",
                &fingerprint_hex(job.fp)[..8],
                job.opts.workers,
                job.graph.num_nodes()
            );
            c.complete(Track::serve(), "serve", &name, s, c.now_us());
        }
        match result {
            Ok(Ok(plan)) => {
                let payload = Arc::new(PlanPayload {
                    fingerprint: fingerprint_hex(job.fp),
                    plan_text: plan_to_json(&plan).to_json(),
                });
                let waiters = {
                    let mut plans = shared.plans.lock().expect("plans lock");
                    match plans.insert(job.fp, PlanEntry::Ready(Arc::clone(&payload))) {
                        Some(PlanEntry::Pending(w)) => w,
                        _ => Vec::new(),
                    }
                };
                for w in std::iter::once(&job.leader).chain(waiters.iter()) {
                    if expired(w.deadline) {
                        shared.bump(&shared.counters.deadline_missed, "serve/deadline_missed");
                        send_error(&w.conn, w.id, ErrorCode::DeadlineMissed, "deadline elapsed".into());
                        continue;
                    }
                    send_bytes(
                        &w.conn,
                        &encode_plan_response(w.id, false, &payload.fingerprint, &payload.plan_text),
                    );
                }
            }
            Ok(Err(e)) => {
                let waiters = take_waiters(shared, job.fp);
                fail_all(
                    shared,
                    &job.leader,
                    &waiters,
                    ErrorCode::SearchFailed,
                    &format!("partition search failed: {e}"),
                    &shared.counters.search_failed,
                    "serve/search_failed",
                );
            }
            Err(_) => {
                let waiters = take_waiters(shared, job.fp);
                fail_all(
                    shared,
                    &job.leader,
                    &waiters,
                    ErrorCode::Internal,
                    "partition search panicked",
                    &shared.counters.search_failed,
                    "serve/search_failed",
                );
            }
        }
    }
}

fn stats_response(shared: &Shared, id: u64) -> Response {
    let c = &shared.counters;
    let load = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
    let snap = shared.caches.snapshot();
    let body = Json::obj(vec![
        ("type", Json::from("stats")),
        ("id", Json::from(id)),
        (
            "serve",
            Json::obj(vec![
                ("requests", load(&c.requests)),
                ("hits", load(&c.hits)),
                ("misses", load(&c.misses)),
                ("joined", load(&c.joined)),
                ("rejected", load(&c.rejected)),
                ("deadline_missed", load(&c.deadline_missed)),
                ("shutting_down", load(&c.shutting_down)),
                ("search_failed", load(&c.search_failed)),
                ("protocol_errors", load(&c.protocol_errors)),
                ("queued", Json::from(shared.sched.queued())),
                ("draining", Json::from(shared.draining.load(Ordering::SeqCst))),
                ("uptime_seconds", Json::Num(shared.started.elapsed().as_secs_f64())),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("strategy_hits", Json::from(snap.stats.strategy_hits)),
                ("strategy_misses", Json::from(snap.stats.strategy_misses)),
                ("plan_hits", Json::from(snap.stats.plan_hits)),
                ("plan_misses", Json::from(snap.stats.plan_misses)),
                ("request_hits", Json::from(snap.stats.request_hits)),
                ("request_misses", Json::from(snap.stats.request_misses)),
                ("strategy_entries", Json::from(snap.strategy_entries)),
                ("plan_entries", Json::from(snap.plan_entries)),
                ("request_entries", Json::from(snap.request_entries)),
                ("strategy_hit_rate", Json::Num(snap.strategy_hit_rate)),
                ("plan_hit_rate", Json::Num(snap.plan_hit_rate)),
                ("request_hit_rate", Json::Num(snap.request_hit_rate)),
            ]),
        ),
    ]);
    Response::Stats { id, body }
}
