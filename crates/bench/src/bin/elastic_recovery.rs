//! Elastic degraded-mode recovery sweep: permanently kills 1 / 2 / 4 of 8
//! workers at an early / mid / late schedule position (9 rows) and drives
//! each run through `run_with_elastic_recovery`, recording the latency
//! breakdown of every shrink — failure detection, partition replan,
//! checkpoint reshard — plus end-to-end wall time, into
//! `BENCH_elastic.json`.
//!
//! The bin exits non-zero unless (a) every degraded output is bit-identical
//! to an undisturbed run at the surviving width resumed from the same
//! snapshot, and (b) warm replans (worker counts the shared `SearchCaches`
//! has already searched) are no slower than the cold search of the same
//! width.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tofu_bench::{bench_report, feeds, write_report, Json};
use tofu_core::{PartitionOptions, SearchCaches};
use tofu_graph::TensorId;
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    resume_from_snapshot, run_with_elastic_recovery, run_with_options, CheckpointPolicy,
    ElasticPolicy, ElasticReport, Fault, FaultPlan, RecoveryOptions, RunOptions,
};
use tofu_tensor::Tensor;

fn bit_identical(a: &BTreeMap<TensorId, Tensor>, b: &BTreeMap<TensorId, Tensor>) -> bool {
    a.len() == b.len()
        && a.iter().all(|(t, va)| {
            b.get(t).is_some_and(|vb| {
                va.data().iter().map(|x| x.to_bits()).eq(vb.data().iter().map(|x| x.to_bits()))
            })
        })
}

/// The spec's baseline: undisturbed run at the surviving width, resumed from
/// the snapshot the ladder carried (or from scratch when it carried none).
fn baseline_values(
    report: &ElasticReport,
    full_feeds: &[(TensorId, Tensor)],
) -> BTreeMap<TensorId, Tensor> {
    let clean = RunOptions::default();
    match &report.snapshot {
        Some(snap) => resume_from_snapshot(&report.sharded, &[], &clean, snap)
            .expect("baseline resume")
            .values,
        None => {
            let mut sf = Vec::new();
            for (t, v) in full_feeds {
                sf.extend(report.sharded.scatter(*t, v).expect("scatter"));
            }
            run_with_options(&report.sharded, &sf, &clean).expect("baseline run").values
        }
    }
}

struct Row {
    label: String,
    killed: usize,
    phase: &'static str,
    widths: Vec<usize>,
    lost: Vec<usize>,
    detection_max_us: u128,
    replan_us: u128,
    reshard_us: u128,
    reshard_bytes: u64,
    total_us: u128,
    exact: bool,
}

fn main() {
    let workers = 8;
    // Batch 840 = lcm(1..8): every width the ladder can reach has a feasible
    // split, including the primes 7 and 5.
    let model = mlp(&MlpConfig { batch: 840, dims: vec![32, 32], classes: 8, with_updates: true })
        .expect("mlp builds");
    let g = &model.graph;
    let full_feeds = feeds(g);
    let part = PartitionOptions { workers, ..Default::default() };
    let every = (g.num_nodes() / 6).max(1);
    let recovery = RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: Some(ElasticPolicy::default()),
        ..Default::default()
    };
    // One warm cache across all rows, like a long-lived trainer would hold:
    // the first row's shrink searches cold, every later replan of the same
    // width is a cache lookup.
    let mut caches = SearchCaches::default();

    let victims: [(&[usize], &str); 3] = [(&[3], "1"), (&[1, 5], "2"), (&[0, 2, 4, 6], "4")];
    let phases: [(&'static str, usize); 3] = [("early", 5), ("mid", 45), ("late", 85)];

    println!(
        "{:<18} {:>14} {:>12} {:>12} {:>12} {:>14} {:>12} {:>6}",
        "case", "ladder", "detect µs", "replan µs", "reshard µs", "reshard bytes", "total µs", "exact"
    );
    println!("{}", "-".repeat(108));
    let mut rows: Vec<Row> = Vec::new();
    for (kills, ktag) in victims {
        for (phase, base) in phases {
            let mut faults = FaultPlan::none();
            for (i, &w) in kills.iter().enumerate() {
                faults = faults.with_permanent(Fault::Kill { worker: w, pos: base + 7 * i });
            }
            let opts = RunOptions {
                faults,
                checkpoint: Some(CheckpointPolicy::every_original(every)),
                recv_timeout: Duration::from_secs(5),
                ..Default::default()
            };
            let report = run_with_elastic_recovery(g, &full_feeds, &part, &opts, &recovery, &mut caches)
                .unwrap_or_else(|e| panic!("kill {ktag} {phase}: elastic recovery failed: {e}"));
            let exact = bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
            let detection_max = report
                .history
                .iter()
                .filter_map(|a| a.detection)
                .max()
                .unwrap_or(Duration::ZERO);
            let mut replan = Duration::ZERO;
            let mut reshard = Duration::ZERO;
            let mut reshard_bytes = 0u64;
            for a in &report.history {
                // Only shrink attempts count as replans; the full-width
                // partition exists with or without elasticity.
                if a.width < workers {
                    if let Some(d) = a.replan {
                        replan += d;
                    }
                }
                if let Some(d) = a.reshard {
                    reshard += d;
                }
                reshard_bytes += a.reshard_bytes;
            }
            let total: Duration = report.history.iter().map(|a| a.wall).sum();
            let row = Row {
                label: format!("kill {ktag} of 8 {phase}"),
                killed: kills.len(),
                phase,
                widths: report.widths.clone(),
                lost: report.lost.clone(),
                detection_max_us: detection_max.as_micros(),
                replan_us: replan.as_micros(),
                reshard_us: reshard.as_micros(),
                reshard_bytes,
                total_us: total.as_micros(),
                exact,
            };
            let ladder =
                row.widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join("→");
            println!(
                "{:<18} {:>14} {:>12} {:>12} {:>12} {:>14} {:>12} {:>6}",
                row.label,
                ladder,
                row.detection_max_us,
                row.replan_us,
                row.reshard_us,
                row.reshard_bytes,
                row.total_us,
                row.exact
            );
            rows.push(row);
        }
    }

    // Warm-vs-cold: repeating a width's search against an already-populated
    // cache must not be slower than the cold search — the DP subproblems are
    // memo lookups the second time. Measured directly (the per-row replan
    // latency above also includes the uncached graph expansion).
    let mut warm_ok = true;
    let mut warm_results: Vec<Json> = Vec::new();
    for width in [7usize, 6, 5, 4] {
        let po = PartitionOptions { workers: width, ..part };
        let mut fresh = SearchCaches::default();
        let t = Instant::now();
        tofu_core::partition_cached(g, &po, &mut fresh, None).expect("cold search");
        let cold = t.elapsed();
        let warm = (0..5)
            .map(|_| {
                let t = Instant::now();
                tofu_core::partition_cached(g, &po, &mut fresh, None).expect("warm search");
                t.elapsed()
            })
            .min()
            .expect("five warm samples");
        let ok = warm <= cold;
        println!(
            "replan @{width}: cold {} µs, warm best-of-5 {} µs",
            cold.as_micros(),
            warm.as_micros()
        );
        warm_ok &= ok;
        warm_results.push(Json::obj(vec![
            ("width", Json::from(width)),
            ("cold_us", Json::from(cold.as_micros() as f64)),
            ("warm_us", Json::from(warm.as_micros() as f64)),
        ]));
    }

    let results = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("case", Json::from(r.label.as_str())),
                ("killed", Json::from(r.killed)),
                ("phase", Json::from(r.phase)),
                ("widths", Json::Arr(r.widths.iter().map(|&w| Json::from(w)).collect())),
                ("lost", Json::Arr(r.lost.iter().map(|&w| Json::from(w)).collect())),
                ("detection_max_us", Json::from(r.detection_max_us as f64)),
                ("replan_us", Json::from(r.replan_us as f64)),
                ("reshard_us", Json::from(r.reshard_us as f64)),
                ("reshard_bytes", Json::from(r.reshard_bytes as f64)),
                ("total_us", Json::from(r.total_us as f64)),
                ("exact", Json::Bool(r.exact)),
            ])
        })
        .collect();
    let doc = bench_report(
        "elastic_recovery",
        vec![
            ("workers", Json::from(workers)),
            ("nodes", Json::from(g.num_nodes())),
            ("checkpoint_every_original", Json::from(every)),
            ("warm_replans_not_slower", Json::Bool(warm_ok)),
            ("replan_warm_vs_cold", Json::Arr(warm_results)),
        ],
        results,
    );
    write_report("BENCH_elastic.json", &doc);
    let all_exact = rows.iter().all(|r| r.exact);
    println!("({} rows, all bit-identical to baseline: {all_exact}, warm replans ok: {warm_ok})", rows.len());
    if !all_exact || !warm_ok {
        std::process::exit(1);
    }
}
