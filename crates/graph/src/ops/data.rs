//! Data-movement operators, opaque-function operators and the sparse
//! operators TDL cannot describe (§4.1).
//!
//! `slice_axis` and `concat` are the primitives partitioned graphs use to
//! extract remote input regions and reassemble them (§6); MXNet ships the
//! same trio (`copy` lives in the element-wise family).

use tofu_tdl::{builder::Idx, DescBuilder, TdlDesc};
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::graph::TensorId;
use crate::registry::{GradCtx, OpCategory, OpDef};
use crate::Result;

/// Gradient of `slice_axis`: zero-pad the output gradient back to the input
/// extent (used heavily by LSTM gate slicing).
fn grad_slice_axis(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let axis = ctx.attrs.int_or("axis", 0);
    let begin = ctx.attrs.int_or("begin", 0);
    let in_extent = ctx.shape(ctx.inputs[0]).dim(axis as usize) as i64;
    let end = ctx.attrs.int_or("end", in_extent);
    let dx = ctx.op(
        "pad",
        &[ctx.out_grad],
        Attrs::new()
            .with_int("axis", axis)
            .with_int("before", begin)
            .with_int("after", in_extent - end),
    )?;
    Ok(vec![Some(dx)])
}

// ---- Shape inference ---------------------------------------------------------

fn shape_slice_axis(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("slice_axis expects one input".into());
    }
    let rank = ins[0].rank();
    let axis = attrs.int_or("axis", 0);
    if axis < 0 || axis as usize >= rank {
        return Err(format!("axis {axis} out of range for rank {rank}"));
    }
    let begin = attrs.int_or("begin", 0);
    let end = attrs.int_or("end", ins[0].dim(axis as usize) as i64);
    if begin < 0 || end < begin || end as usize > ins[0].dim(axis as usize) {
        return Err(format!("invalid slice [{begin}, {end})"));
    }
    ins[0].with_dim(axis as usize, (end - begin) as usize).map_err(|e| e.to_string())
}

fn shape_concat(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    let first = ins.first().ok_or("concat of zero tensors")?;
    let axis = attrs.int_or("axis", 0);
    if axis < 0 || axis as usize >= first.rank() {
        return Err(format!("axis {axis} out of range"));
    }
    let axis = axis as usize;
    let mut total = 0;
    for s in ins {
        if s.rank() != first.rank() {
            return Err("rank mismatch in concat".into());
        }
        for d in 0..s.rank() {
            if d != axis && s.dim(d) != first.dim(d) {
                return Err(format!("extent mismatch in concat: {first} vs {s}"));
            }
        }
        total += s.dim(axis);
    }
    first.with_dim(axis, total).map_err(|e| e.to_string())
}

fn shape_pad(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("pad expects one input".into());
    }
    let axis = attrs.int_or("axis", 0) as usize;
    let before = attrs.int_or("before", 0) as usize;
    let after = attrs.int_or("after", 0) as usize;
    if axis >= ins[0].rank() {
        return Err("axis out of range".into());
    }
    ins[0]
        .with_dim(axis, ins[0].dim(axis) + before + after)
        .map_err(|e| e.to_string())
}

fn shape_flip(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("flip expects one input".into());
    }
    let axis = attrs.int_or("axis", 0) as usize;
    if axis >= ins[0].rank() {
        return Err("axis out of range".into());
    }
    Ok(ins[0].clone())
}

fn shape_repeat(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 {
        return Err("repeat expects one input".into());
    }
    let axis = attrs.int_or("axis", 0) as usize;
    let k = attrs.int_or("repeats", 2).max(1) as usize;
    if axis >= ins[0].rank() {
        return Err("axis out of range".into());
    }
    ins[0].with_dim(axis, ins[0].dim(axis) * k).map_err(|e| e.to_string())
}

fn shape_tile(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    shape_repeat(ins, attrs)
}

fn shape_batch_square(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    // (b, n, n) -> (b, n, n) for batched matrix decompositions.
    if ins.len() != 1 || ins[0].rank() != 3 || ins[0].dim(1) != ins[0].dim(2) {
        return Err("expects one (b, n, n) input".into());
    }
    Ok(ins[0].clone())
}

fn shape_square_mat(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 || ins[0].rank() != 2 || ins[0].dim(0) != ins[0].dim(1) {
        return Err("expects one square matrix".into());
    }
    Ok(ins[0].clone())
}

fn shape_sparse(_: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    Err("sparse operators are not supported by the dense executor".into())
}

// ---- TDL descriptions -----------------------------------------------------------

fn tdl_slice_axis(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = attrs.int_or("axis", 0) as usize;
    let begin = attrs.int_or("begin", 0);
    let mut b = DescBuilder::new("slice_axis", &[rank]);
    let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    let coords: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(d, v)| if d == axis { v.at() + begin } else { v.at() })
        .collect();
    let body = b.input(0, &coords);
    b.build(body).ok()
}

fn tdl_pad(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let rank = ins.first()?.rank();
    let axis = attrs.int_or("axis", 0) as usize;
    let before = attrs.int_or("before", 0);
    let mut b = DescBuilder::new("pad", &[rank]);
    let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    let coords: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(d, v)| if d == axis { v.at() - before } else { v.at() })
        .collect();
    let body = b.input(0, &coords);
    b.build(body).ok()
}

fn tdl_flip(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    // out[i] = x[N - 1 - i]; the constant is shape-dependent, which is fine
    // because descriptions are instantiated per node.
    let shape = ins.first()?;
    let rank = shape.rank();
    let axis = attrs.int_or("axis", 0) as usize;
    let n = shape.dim(axis) as i64;
    let mut b = DescBuilder::new("flip", &[rank]);
    let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    let coords: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(d, v)| if d == axis { v.at() * -1 + (n - 1) } else { v.at() })
        .collect();
    let body = b.input(0, &coords);
    b.build(body).ok()
}

fn tdl_repeat(ins: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    // out[i] = x[i / k]: rational coefficient, region-exact.
    let rank = ins.first()?.rank();
    let axis = attrs.int_or("axis", 0) as usize;
    let k = attrs.int_or("repeats", 2).max(1);
    let mut b = DescBuilder::new("repeat", &[rank]);
    let vars: Vec<_> = (0..rank).map(|d| b.output_var(format!("d{d}"))).collect();
    let coords: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(d, v)| if d == axis { v.at().div(k) } else { v.at() })
        .collect();
    let body = b.input(0, &coords);
    b.build(body).ok()
}

fn tdl_batch_cholesky(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // Fig. 3 of the paper: lambda b, i, j: Cholesky(batch_mat[b, :, :])[i, j].
    let mut b = DescBuilder::new("batch_cholesky", &[3]);
    let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
    let slice = b.input(0, &[bb.at(), Idx::full(), Idx::full()]);
    let body = b.opaque("cholesky", vec![slice], &[i, j]);
    b.build(body).ok()
}

fn tdl_batch_inverse(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    let mut b = DescBuilder::new("batch_inverse", &[3]);
    let (bb, i, j) = (b.output_var("b"), b.output_var("i"), b.output_var("j"));
    let slice = b.input(0, &[bb.at(), Idx::full(), Idx::full()]);
    let body = b.opaque("inverse", vec![slice], &[i, j]);
    b.build(body).ok()
}

// ---- Definitions --------------------------------------------------------------------

fn flops_vol(_: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    out.volume() as f64
}

/// Returns data-movement, opaque and sparse operator definitions.
pub fn defs() -> Vec<OpDef> {
    let mut out = vec![
        OpDef {
            name: "slice_axis",
            category: OpCategory::Data,
            infer_shape: shape_slice_axis,
            tdl: Some(tdl_slice_axis),
            gradient: Some(grad_slice_axis),
            flops: flops_vol,
        },
        OpDef {
            name: "concat",
            category: OpCategory::Data,
            infer_shape: shape_concat,
            // Concatenation is piecewise, which TDL's single lambda body
            // cannot express; MXNet's concat is likewise special-cased.
            tdl: None,
            gradient: None,
            flops: flops_vol,
        },
        OpDef {
            name: "pad",
            category: OpCategory::Data,
            infer_shape: shape_pad,
            tdl: Some(tdl_pad),
            gradient: None,
            flops: flops_vol,
        },
        OpDef {
            name: "flip",
            category: OpCategory::Data,
            infer_shape: shape_flip,
            tdl: Some(tdl_flip),
            gradient: None,
            flops: flops_vol,
        },
        OpDef {
            name: "repeat",
            category: OpCategory::Data,
            infer_shape: shape_repeat,
            tdl: Some(tdl_repeat),
            gradient: None,
            flops: flops_vol,
        },
        OpDef {
            name: "tile",
            category: OpCategory::Data,
            infer_shape: shape_tile,
            // out[i] = x[i mod n] is not affine.
            tdl: None,
            gradient: None,
            flops: flops_vol,
        },
        // Opaque-function operators (2, matching §4.1's MXNet count).
        OpDef {
            name: "batch_cholesky",
            category: OpCategory::Opaque,
            infer_shape: shape_batch_square,
            tdl: Some(tdl_batch_cholesky),
            gradient: None,
            flops: |ins, _, _| {
                let n = ins[0].dim(1) as f64;
                ins[0].dim(0) as f64 * n * n * n / 3.0
            },
        },
        OpDef {
            name: "batch_inverse",
            category: OpCategory::Opaque,
            infer_shape: shape_batch_square,
            tdl: Some(tdl_batch_inverse),
            gradient: None,
            flops: |ins, _, _| {
                let n = ins[0].dim(1) as f64;
                ins[0].dim(0) as f64 * n * n * n
            },
        },
        // Un-batched Cholesky cannot be parallelized by partition-n-reduce at
        // all (§3.1) — no TDL description exists.
        OpDef {
            name: "cholesky",
            category: OpCategory::Linalg,
            infer_shape: shape_square_mat,
            tdl: None,
            gradient: None,
            flops: |ins, _, _| {
                let n = ins[0].dim(0) as f64;
                n * n * n / 3.0
            },
        },
    ];
    out.push(OpDef {
        name: "multi_fetch",
        category: OpCategory::Data,
        infer_shape: |_, attrs| {
            attrs
                .ints("out_dims")
                .map(|d| Shape::new(d.iter().map(|&v| v as usize).collect()))
                .ok_or_else(|| "multi_fetch missing out_dims".to_string())
        },
        tdl: None,
        gradient: None,
        flops: flops_vol,
    });
    // Sparse operators: describable in TDL in principle, but unsupported by
    // Tofu due to load imbalance (§9); we register them undescribed like the
    // paper's coverage count does.
    for name in ["sparse_dot", "sparse_retain", "cast_storage", "sparse_embedding"] {
        out.push(OpDef {
            name: match name {
                "sparse_dot" => "sparse_dot",
                "sparse_retain" => "sparse_retain",
                "cast_storage" => "cast_storage",
                _ => "sparse_embedding",
            },
            category: OpCategory::Sparse,
            infer_shape: shape_sparse,
            tdl: None,
            gradient: None,
            flops: flops_vol,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tdl::{discover_strategies, InputRequirement};

    #[test]
    fn slice_axis_shapes() {
        let x = Shape::new(vec![4, 8]);
        let attrs = Attrs::new().with_int("axis", 1).with_int("begin", 2).with_int("end", 6);
        assert_eq!(shape_slice_axis(std::slice::from_ref(&x), &attrs).unwrap().dims(), &[4, 4]);
        let bad = Attrs::new().with_int("axis", 1).with_int("begin", 6).with_int("end", 2);
        assert!(shape_slice_axis(&[x], &bad).is_err());
    }

    #[test]
    fn concat_shapes() {
        let a = Shape::new(vec![2, 3]);
        let b = Shape::new(vec![5, 3]);
        let attrs = Attrs::new().with_int("axis", 0);
        assert_eq!(shape_concat(&[a.clone(), b], &attrs).unwrap().dims(), &[7, 3]);
        let c = Shape::new(vec![5, 4]);
        assert!(shape_concat(&[a, c], &attrs).is_err());
    }

    #[test]
    fn flip_strategies_still_split() {
        // Flip reverses order: halves map to halves (in swapped order).
        let desc = tdl_flip(&[Shape::new(vec![8])], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert!(matches!(s[0].inputs[0], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn batch_cholesky_matches_paper_example() {
        let desc = tdl_batch_cholesky(&[], &Attrs::new()).unwrap();
        assert!(desc.has_opaque());
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id, "split:b");
    }

    #[test]
    fn sparse_ops_are_not_describable() {
        let ops = defs();
        let sparse: Vec<_> =
            ops.iter().filter(|d| d.category == OpCategory::Sparse).collect();
        assert_eq!(sparse.len(), 4);
        assert!(sparse.iter().all(|d| d.tdl.is_none()));
    }

    #[test]
    fn repeat_region_is_rational() {
        let desc =
            tdl_repeat(&[Shape::new(vec![4])], &Attrs::new().with_int("repeats", 2)).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert!(matches!(s[0].inputs[0], InputRequirement::Split { dim: 0, .. }));
    }
}
