//! Static memory planning (the §6 "leveraging the existing memory planner"
//! substrate).
//!
//! Like MXNet's planner, buffers are assigned by a greedy liveness scan over
//! a serial schedule: an intermediate tensor's buffer becomes free after its
//! last consumer and can then be reused by a later allocation. The partition
//! pass inserts extra control dependencies precisely so that each worker's
//! sub-schedule stays serial and this reuse keeps working (§6, Fig. 7); the
//! `reuse` flag models the ablation where those dependencies are missing and
//! no cross-operator reuse is safe.

use std::collections::BTreeMap;

use crate::graph::{Graph, NodeId, TensorId, TensorKind};

/// Result of planning one device's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPlan {
    /// Peak bytes of transient (intermediate) buffers.
    pub peak_transient_bytes: u64,
    /// Bytes of persistent tensors (inputs and weights).
    pub persistent_bytes: u64,
    /// Number of physical buffers allocated (≤ number of intermediates when
    /// reuse succeeds).
    pub buffers_allocated: usize,
}

impl MemPlan {
    /// Total peak memory: persistent plus transient peak.
    pub fn total_bytes(&self) -> u64 {
        self.peak_transient_bytes + self.persistent_bytes
    }
}

/// How a scheduled node's output obtains a physical buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotAction {
    /// The output takes over the first input's buffer in place (the input's
    /// liveness ends exactly at this node and the buffer is large enough).
    InPlace {
        /// Slot taken over.
        slot: usize,
    },
    /// A freed buffer is reassigned; `grown_by` is the extra bytes the
    /// planner had to add when the slot was smaller than the output.
    Reuse {
        /// Slot reassigned.
        slot: usize,
        /// Bytes the slot grew by (0 for an exact or oversized fit).
        grown_by: u64,
    },
    /// A fresh physical buffer is allocated.
    Alloc {
        /// Newly created slot.
        slot: usize,
    },
}

impl SlotAction {
    /// The slot this action places the output into.
    pub fn slot(&self) -> usize {
        match *self {
            SlotAction::InPlace { slot }
            | SlotAction::Reuse { slot, .. }
            | SlotAction::Alloc { slot } => slot,
        }
    }
}

/// The full buffer assignment of one device's serial sub-schedule: the
/// physical slots, the per-node placement actions and the liveness events a
/// runtime needs to replay the plan against real allocations (the §6
/// "leverage the existing memory planner" contract made explicit).
#[derive(Debug, Clone)]
pub struct BufferPlan {
    /// The summary numbers (identical to [`plan_memory_for_schedule`]).
    pub mem: MemPlan,
    /// Final byte size of every physical buffer slot.
    pub slot_bytes: Vec<u64>,
    /// Per schedule position: how that node's output is placed.
    pub actions: Vec<SlotAction>,
    /// Per schedule position: locally-produced tensors whose liveness ends
    /// right after the node at that position runs. The greedy scan frees
    /// slots at exactly these positions, including deaths that coincide with
    /// an in-place takeover.
    pub dead_after: Vec<Vec<TensorId>>,
    /// Inputs/weights resident on this device for the whole run (consumed by
    /// a non-fetch node of the schedule).
    pub persistent: Vec<TensorId>,
}

/// True when MXNet would run this operator in place (same-shape
/// element-wise math and gradient aggregation).
fn is_inplace_capable(g: &Graph, id: NodeId) -> bool {
    let node = g.node(id);
    if node.op == "add_n" {
        return true;
    }
    match crate::registry::lookup(&node.op) {
        Ok(def) => matches!(
            def.category,
            crate::registry::OpCategory::Elementwise | crate::registry::OpCategory::Optimizer
        ),
        Err(_) => false,
    }
}

/// Plans memory for the whole graph in insertion order.
pub fn plan_memory(g: &Graph, reuse: bool) -> MemPlan {
    let schedule: Vec<NodeId> = g.node_ids().collect();
    plan_memory_for_schedule(g, &schedule, reuse)
}

/// Plans memory for a sub-schedule (e.g. one worker's nodes of a partitioned
/// graph). Only tensors produced by scheduled nodes count as transient;
/// persistent bytes cover inputs/weights this device *owns* (consumed by a
/// non-fetch node of the schedule — a `multi_fetch` of a remote tensor only
/// materializes the fetched piece, which is the fetch node's own output).
///
/// A tensor produced here but consumed by other devices stays live until
/// the local step at which its last remote consumer has run (the §6
/// behavior: the buffer is released once the remote fetch completed).
pub fn plan_memory_for_schedule(g: &Graph, schedule: &[NodeId], reuse: bool) -> MemPlan {
    plan_buffers(g, schedule, reuse).mem
}

/// Plans memory for a sub-schedule and returns the full buffer assignment —
/// the same greedy scan as [`plan_memory_for_schedule`], with every placement
/// decision and liveness event recorded so a runtime can seed a real pool
/// from the static plan.
pub fn plan_buffers(g: &Graph, schedule: &[NodeId], reuse: bool) -> BufferPlan {
    let mut produced: BTreeMap<TensorId, usize> = BTreeMap::new();
    for (pos, &id) in schedule.iter().enumerate() {
        produced.insert(g.node(id).output, pos);
    }

    // Global last-consumer index of every tensor (one pass over the graph).
    let mut global_last: Vec<usize> = vec![0; g.num_tensors()];
    for id in g.node_ids() {
        for &t in &g.node(id).inputs {
            global_last[t.0] = global_last[t.0].max(id.0);
        }
    }
    // Map a global node index to the local schedule position at (or after)
    // which it has certainly happened. Schedule ids ascend by construction.
    let global_ids: Vec<usize> = schedule.iter().map(|n| n.0).collect();
    let to_local = |global: usize| -> usize {
        match global_ids.binary_search(&global) {
            Ok(p) => p,
            Err(p) => p.min(schedule.len().saturating_sub(1)),
        }
    };
    let mut last_use: BTreeMap<TensorId, usize> = BTreeMap::new();
    for (pos, &id) in schedule.iter().enumerate() {
        for &t in &g.node(id).inputs {
            let e = last_use.entry(t).or_insert(pos);
            *e = (*e).max(pos);
        }
    }
    // Locally produced tensors with remote consumers: extend their liveness
    // to the local step aligned with the last remote consumer.
    for (&t, &def_pos) in &produced {
        let remote_last = global_last[t.0];
        let local = to_local(remote_last).max(def_pos);
        let e = last_use.entry(t).or_insert(local);
        *e = (*e).max(local);
    }

    // Persistent bytes: inputs/weights consumed by non-fetch nodes of the
    // schedule (i.e. resident on this device).
    let mut persistent = 0u64;
    let mut seen_persistent: Vec<TensorId> = Vec::new();
    for &id in schedule {
        let node = g.node(id);
        if node.op == "multi_fetch" {
            continue;
        }
        for &t in &node.inputs {
            let meta = g.tensor(t);
            let external = meta.kind != TensorKind::Intermediate;
            if external && !produced.contains_key(&t) && !seen_persistent.contains(&t) {
                seen_persistent.push(t);
                persistent += meta.shape.bytes();
            }
        }
    }

    // Greedy buffer reuse over the serial schedule. Physical buffers carry
    // stable slot ids so the recorded actions can be replayed; `free` holds
    // ids of currently-unassigned slots.
    let mut slot_bytes: Vec<u64> = Vec::new(); // by slot id, current size
    let mut free: Vec<usize> = Vec::new(); // free slot ids
    let mut live: Vec<(TensorId, usize, usize)> = Vec::new(); // (tensor, slot, last use)
    let mut actions: Vec<SlotAction> = Vec::with_capacity(schedule.len());
    // Exact death positions, straight from the liveness map; the release
    // phase below frees slots at exactly these steps.
    let mut dead_after: Vec<Vec<TensorId>> = vec![Vec::new(); schedule.len()];
    for &t in produced.keys() {
        if let Some(&last) = last_use.get(&t) {
            if last < schedule.len() {
                dead_after[last].push(t);
            }
        }
    }
    let mut current = 0u64;
    let mut peak = 0u64;
    let mut allocated = 0usize;

    for (pos, &id) in schedule.iter().enumerate() {
        let node = g.node(id);
        let out = node.output;
        let need = g.tensor(out).shape.bytes();
        // In-place execution (MXNet marks element-wise operators in-place):
        // when the first input's buffer dies at this very node, the output
        // takes it over without any new allocation.
        let in_place_slot = if reuse && is_inplace_capable(g, id) {
            node.inputs.first().and_then(|&t| {
                live.iter().position(|&(lt, slot, last)| {
                    lt == t && last == pos && slot_bytes[slot] >= need
                })
            })
        } else {
            None
        };
        if let Some(i) = in_place_slot {
            let (_, slot, _) = live.swap_remove(i);
            let last = last_use.get(&out).copied().unwrap_or(usize::MAX);
            live.push((out, slot, last));
            actions.push(SlotAction::InPlace { slot });
        } else {
            // Reuse a free buffer when one exists. MXNet's planner assigns
            // buffers offline with full liveness knowledge, so it can resize
            // assignments freely; model that by growing an undersized free
            // buffer instead of allocating a disjoint one (the pool's
            // high-water mark then tracks the true live-byte peak, not
            // fragmentation).
            let pick = if reuse {
                // Prefer an exact/over-sized fit, else the largest free buffer.
                free.iter()
                    .enumerate()
                    .filter(|&(_, &s)| slot_bytes[s] >= need)
                    .min_by_key(|&(_, &s)| slot_bytes[s])
                    .map(|(i, _)| i)
                    .or_else(|| {
                        free.iter()
                            .enumerate()
                            .max_by_key(|&(_, &s)| slot_bytes[s])
                            .map(|(i, _)| i)
                    })
            } else {
                None
            };
            let slot = match pick {
                Some(i) => {
                    let slot = free.swap_remove(i);
                    let size = slot_bytes[slot];
                    let grown_by = need.saturating_sub(size);
                    if grown_by > 0 {
                        current += grown_by;
                        peak = peak.max(current);
                        slot_bytes[slot] = need;
                    }
                    actions.push(SlotAction::Reuse { slot, grown_by });
                    slot
                }
                None => {
                    let slot = slot_bytes.len();
                    slot_bytes.push(need);
                    allocated += 1;
                    current += need;
                    peak = peak.max(current);
                    actions.push(SlotAction::Alloc { slot });
                    slot
                }
            };
            let last = last_use.get(&out).copied().unwrap_or(usize::MAX);
            live.push((out, slot, last));
        }

        // Release buffers whose last consumer just ran — at every position,
        // including in-place takeovers, so a tensor dying alongside a
        // takeover frees its slot at the exact step `dead_after` records
        // (skipping this at in-place positions freed those slots one step
        // late and inflated the next allocation). Without reuse the planner
        // cannot reclaim at all — this models the missing control
        // dependencies of Fig. 7, where ops of the partitioned graph have no
        // ordering that would make reclamation safe.
        if reuse {
            let mut i = 0;
            while i < live.len() {
                if live[i].2 <= pos {
                    let (_, slot, _) = live.swap_remove(i);
                    free.push(slot);
                } else {
                    i += 1;
                }
            }
        }
    }

    let mem = MemPlan { peak_transient_bytes: peak, persistent_bytes: persistent, buffers_allocated: allocated };
    BufferPlan { mem, slot_bytes, actions, dead_after, persistent: seen_persistent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attrs;
    use tofu_tensor::Shape;

    /// A chain of n element-wise ops over a 1 KiB tensor.
    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![256]));
        for i in 0..n {
            t = g.add_op("relu", &format!("r{i}"), &[t], Attrs::new()).unwrap();
        }
        g
    }

    #[test]
    fn chain_runs_in_place_with_one_buffer() {
        // Element-wise chains execute in place (as MXNet marks them): after
        // the first allocation every step reuses the same buffer.
        let g = chain(10);
        let plan = plan_memory(&g, true);
        assert_eq!(plan.buffers_allocated, 1, "allocated {}", plan.buffers_allocated);
        assert_eq!(plan.peak_transient_bytes, 1024);
        assert_eq!(plan.persistent_bytes, 1024);
    }

    #[test]
    fn no_reuse_allocates_per_node() {
        let g = chain(10);
        let plan = plan_memory(&g, false);
        assert_eq!(plan.buffers_allocated, 10);
        // Without reuse every transient stays live: 10 x 1 KiB.
        assert_eq!(plan.peak_transient_bytes, 10 * 1024);
        let with_reuse = plan_memory(&g, true);
        assert!(plan.peak_transient_bytes > with_reuse.peak_transient_bytes);
    }

    #[test]
    fn fan_out_keeps_source_live() {
        // x -> a, x -> b, (a, b) -> c: x stays live until both consumers ran.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![256]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let b = g.add_op("tanh", "b", &[x], Attrs::new()).unwrap();
        let _c = g.add_op("add", "c", &[a, b], Attrs::new()).unwrap();
        let plan = plan_memory(&g, true);
        // a and b live at once; the add runs in place on a's buffer.
        assert_eq!(plan.peak_transient_bytes, 2 * 1024);
    }

    #[test]
    fn weights_count_as_persistent() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 8]));
        let w = g.add_weight("w", Shape::new(vec![8, 2]));
        let _y = g.add_op("matmul", "mm", &[x, w], Attrs::new()).unwrap();
        let plan = plan_memory(&g, true);
        assert_eq!(plan.persistent_bytes, (4 * 8 + 8 * 2) * 4);
        assert_eq!(plan.peak_transient_bytes, 4 * 2 * 4);
    }

    #[test]
    fn total_adds_up() {
        let g = chain(3);
        let p = plan_memory(&g, true);
        assert_eq!(p.total_bytes(), p.peak_transient_bytes + p.persistent_bytes);
    }

    #[test]
    fn buffer_plan_matches_summary_and_replays() {
        let g = chain(6);
        let schedule: Vec<NodeId> = g.node_ids().collect();
        let bp = plan_buffers(&g, &schedule, true);
        assert_eq!(bp.mem, plan_memory(&g, true));
        assert_eq!(bp.actions.len(), schedule.len());
        assert_eq!(bp.slot_bytes.len(), bp.mem.buffers_allocated);
        // Replay the actions against a byte counter: the high-water mark must
        // reproduce the planner's peak exactly.
        let (mut cur, mut peak) = (0u64, 0u64);
        for (pos, a) in bp.actions.iter().enumerate() {
            match *a {
                SlotAction::InPlace { .. } => {}
                SlotAction::Reuse { grown_by, .. } => {
                    cur += grown_by;
                    peak = peak.max(cur);
                }
                SlotAction::Alloc { .. } => {
                    cur += g.tensor(g.node(schedule[pos]).output).shape.bytes();
                    peak = peak.max(cur);
                }
            }
        }
        assert_eq!(peak, bp.mem.peak_transient_bytes);
        // An element-wise chain runs in place: one slot, rest in-place.
        assert_eq!(bp.slot_bytes, vec![1024]);
        assert!(bp.actions[1..].iter().all(|a| matches!(a, SlotAction::InPlace { .. })));
    }

    #[test]
    fn buffer_plan_records_liveness_deaths() {
        // x -> a, x -> b, (a, b) -> c: `a` dies in place at c, `b` dies after c.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![256]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let b = g.add_op("tanh", "b", &[x], Attrs::new()).unwrap();
        let _c = g.add_op("add", "c", &[a, b], Attrs::new()).unwrap();
        let schedule: Vec<NodeId> = g.node_ids().collect();
        let bp = plan_buffers(&g, &schedule, true);
        assert_eq!(bp.persistent, vec![x]);
        let last = schedule.len() - 1;
        assert!(bp.dead_after[last].contains(&a));
        assert!(bp.dead_after[last].contains(&b));
    }

    #[test]
    fn death_coinciding_with_inplace_takeover_frees_at_exact_step() {
        // x -> a (relu), x -> b (tanh), c = add(a, b): c takes over a's slot
        // in place while b dies at the same step. d = relu(x) right after
        // must be able to reuse b's slot — freeing it one step late forced a
        // third allocation here.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![256]));
        let a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let b = g.add_op("tanh", "b", &[x], Attrs::new()).unwrap();
        let _c = g.add_op("add", "c", &[a, b], Attrs::new()).unwrap();
        let _d = g.add_op("relu", "d", &[x], Attrs::new()).unwrap();
        let schedule: Vec<NodeId> = g.node_ids().collect();
        let bp = plan_buffers(&g, &schedule, true);
        // dead_after is exact at the in-place position: both a (taken over)
        // and b (released) die when c runs (position 2).
        assert!(bp.dead_after[2].contains(&a));
        assert!(bp.dead_after[2].contains(&b));
        assert!(matches!(bp.actions[2], SlotAction::InPlace { .. }));
        // d reuses b's freed slot instead of allocating a third buffer.
        assert!(matches!(bp.actions[3], SlotAction::Reuse { grown_by: 0, .. }), "{:?}", bp.actions[3]);
        assert_eq!(bp.mem.buffers_allocated, 2);
        assert_eq!(bp.mem.peak_transient_bytes, 2 * 1024);
    }

    #[test]
    fn sub_schedule_scopes_to_workers_nodes() {
        let g = chain(4);
        let first_two: Vec<NodeId> = g.node_ids().take(2).collect();
        let plan = plan_memory_for_schedule(&g, &first_two, true);
        // r0 allocates; r1 runs in place. But r1's output feeds r2, which is
        // outside this schedule, so it must stay live: peak is one buffer
        // (the in-place takeover keeps a single physical buffer).
        assert_eq!(plan.peak_transient_bytes, 1024);
    }
}
