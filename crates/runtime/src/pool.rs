//! Per-worker buffer pool seeded from the static memory planner.
//!
//! The pool replays a [`BufferPlan`]'s slot actions against real backing
//! allocations: every planner slot becomes one `Vec<u8>` arena that is
//! allocated (or grown) exactly when the plan says so. Its high-water mark is
//! therefore the *measured* transient footprint of the worker, which the
//! tests hold against `tofu-sim`'s independent `per_device_memory`
//! prediction.

use tofu_graph::{BufferPlan, SlotAction};

use crate::error::RuntimeError;
use crate::Result;

/// Real backing storage for one worker's transient tensors.
#[derive(Debug, Default)]
pub struct BufferPool {
    slots: Vec<Vec<u8>>,
    current: u64,
    peak: u64,
}

impl BufferPool {
    /// An empty pool; arenas appear as the plan's actions are applied.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Applies the placement action of one schedule position. `need` is the
    /// byte size of the node's output tensor.
    pub fn apply(&mut self, action: SlotAction, need: u64) -> Result<()> {
        match action {
            SlotAction::InPlace { slot } => {
                let have = self.slot_len(slot)?;
                if have < need {
                    return Err(RuntimeError::Pool(format!(
                        "in-place takeover of slot {slot} ({have} B) needs {need} B"
                    )));
                }
            }
            SlotAction::Reuse { slot, grown_by } => {
                let have = self.slot_len(slot)?;
                if grown_by > 0 {
                    self.slots[slot].resize((have + grown_by) as usize, 0);
                    self.current += grown_by;
                    self.peak = self.peak.max(self.current);
                }
                if self.slot_len(slot)? < need {
                    return Err(RuntimeError::Pool(format!(
                        "slot {slot} holds {} B after growth but {need} B are needed",
                        self.slots[slot].len()
                    )));
                }
            }
            SlotAction::Alloc { slot } => {
                if slot != self.slots.len() {
                    return Err(RuntimeError::Pool(format!(
                        "plan allocates slot {slot} but pool holds {}",
                        self.slots.len()
                    )));
                }
                self.slots.push(vec![0u8; need as usize]);
                self.current += need;
                self.peak = self.peak.max(self.current);
            }
        }
        Ok(())
    }

    fn slot_len(&self, slot: usize) -> Result<u64> {
        self.slots
            .get(slot)
            .map(|s| s.len() as u64)
            .ok_or_else(|| RuntimeError::Pool(format!("plan references unallocated slot {slot}")))
    }

    /// High-water mark of resident arena bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Currently resident arena bytes.
    pub fn current_bytes(&self) -> u64 {
        self.current
    }

    /// Number of physical arenas.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Checks the fully-applied pool against its seeding plan: same arenas,
    /// same sizes, same peak.
    pub fn verify_against(&self, plan: &BufferPlan) -> Result<()> {
        if self.slot_count() != plan.slot_bytes.len()
            || self
                .slots
                .iter()
                .zip(&plan.slot_bytes)
                .any(|(s, &b)| s.len() as u64 != b)
        {
            return Err(RuntimeError::Pool("pool arenas diverged from the plan".into()));
        }
        if self.peak != plan.mem.peak_transient_bytes {
            return Err(RuntimeError::Pool(format!(
                "pool peak {} B but the plan predicted {} B",
                self.peak, plan.mem.peak_transient_bytes
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_alloc_reuse_grow() {
        let mut p = BufferPool::new();
        p.apply(SlotAction::Alloc { slot: 0 }, 100).unwrap();
        p.apply(SlotAction::Alloc { slot: 1 }, 50).unwrap();
        p.apply(SlotAction::InPlace { slot: 0 }, 100).unwrap();
        p.apply(SlotAction::Reuse { slot: 1, grown_by: 30 }, 80).unwrap();
        assert_eq!(p.peak_bytes(), 180);
        assert_eq!(p.current_bytes(), 180);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn rejects_inconsistent_plans() {
        let mut p = BufferPool::new();
        assert!(p.apply(SlotAction::InPlace { slot: 0 }, 1).is_err());
        assert!(p.apply(SlotAction::Alloc { slot: 3 }, 1).is_err());
        p.apply(SlotAction::Alloc { slot: 0 }, 10).unwrap();
        assert!(p.apply(SlotAction::InPlace { slot: 0 }, 11).is_err());
    }
}
