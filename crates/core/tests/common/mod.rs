//! Shared helpers for the search test suites: a deterministic RNG and
//! random-DAG builders mixing op kinds, shapes and graph topologies.
//!
//! Each integration-test binary compiles this module independently and uses
//! a different subset of it.
#![allow(dead_code)]

use tofu_graph::{autodiff, Attrs, Graph, TensorId};
use tofu_tensor::Shape;

/// Tiny deterministic xorshift64* RNG — the suites must not depend on any
/// ambient randomness, only on the explicit seed.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// A random layered DAG over 2-D tensors: matmuls against fresh weights,
/// element-wise unary ops, same-shape binary joins (fork-join frontiers) and
/// transposes, capped at `max_ops` operator nodes. Dimensions mix powers of
/// two with non-powers so divisibility varies across worker counts.
pub fn random_dag(seed: u64, max_ops: usize) -> Graph {
    let mut rng = Rng::new(seed);
    let dims: &[usize] = &[4, 6, 8, 12, 16];
    let mut g = Graph::new();
    let batch = *rng.pick(dims);
    let mut cols = *rng.pick(dims);
    let mut cur = g.add_input("x", Shape::new(vec![batch, cols]));
    // Earlier tensors by shape, for same-shape joins.
    let mut by_shape: Vec<(Vec<usize>, TensorId)> = vec![(vec![batch, cols], cur)];
    let mut rows = batch;
    for i in 0..max_ops {
        let choice = rng.below(10);
        cur = if choice < 4 {
            let next = *rng.pick(dims);
            let w = g.add_weight(&format!("w{i}"), Shape::new(vec![cols, next]));
            cols = next;
            g.add_op("matmul", &format!("mm{i}"), &[cur, w], Attrs::new()).unwrap()
        } else if choice < 7 {
            let op = *rng.pick(&["relu", "gelu", "abs"]);
            g.add_op(op, &format!("ew{i}"), &[cur], Attrs::new()).unwrap()
        } else if choice < 9 {
            let shape = vec![rows, cols];
            let peers: Vec<TensorId> = by_shape
                .iter()
                .filter(|(s, t)| *s == shape && *t != cur)
                .map(|&(_, t)| t)
                .collect();
            if peers.is_empty() {
                g.add_op("relu", &format!("ew{i}"), &[cur], Attrs::new()).unwrap()
            } else {
                let other = *rng.pick(&peers);
                g.add_op("add", &format!("join{i}"), &[cur, other], Attrs::new()).unwrap()
            }
        } else {
            std::mem::swap(&mut rows, &mut cols);
            g.add_op("transpose", &format!("tr{i}"), &[cur], Attrs::new()).unwrap()
        };
        by_shape.push((vec![rows, cols], cur));
    }
    g
}

/// A small conv1d tower: exercises 3-D shapes and halo'd input requirements
/// that the 2-D generator cannot reach.
pub fn conv_tower(seed: u64, layers: usize) -> Graph {
    let mut rng = Rng::new(seed);
    let mut g = Graph::new();
    let batch = *rng.pick(&[4usize, 6, 8]);
    let mut chans = *rng.pick(&[3usize, 4, 8]);
    let length = *rng.pick(&[12usize, 16, 20]);
    let mut cur = g.add_input("data", Shape::new(vec![batch, chans, length]));
    for i in 0..layers {
        let out_c = *rng.pick(&[4usize, 6, 8]);
        let f = g.add_weight(&format!("f{i}"), Shape::new(vec![chans, out_c, 3]));
        chans = out_c;
        cur = g.add_op("conv1d", &format!("conv{i}"), &[cur, f], Attrs::new()).unwrap();
        if rng.below(2) == 0 {
            cur = g.add_op("relu", &format!("act{i}"), &[cur], Attrs::new()).unwrap();
        }
    }
    g
}

/// A trainable MLP (with backward pass) whose layer sizes come from the
/// seed — the differential harness runs full multi-step partitions on it.
pub fn random_training_mlp(seed: u64) -> Graph {
    let mut rng = Rng::new(seed);
    let dims: &[usize] = &[8, 12, 16, 24, 32];
    let batch = *rng.pick(&[8usize, 12, 16, 24]);
    let depth = 1 + rng.below(3) as usize;
    let mut g = Graph::new();
    let mut cols = *rng.pick(dims);
    let mut cur = g.add_input("x", Shape::new(vec![batch, cols]));
    let mut weights = Vec::new();
    for i in 0..depth {
        let next = *rng.pick(dims);
        let w = g.add_weight(&format!("w{i}"), Shape::new(vec![cols, next]));
        weights.push(w);
        cols = next;
        cur = g.add_op("matmul", &format!("fc{i}"), &[cur, w], Attrs::new()).unwrap();
        cur = g.add_op("relu", &format!("act{i}"), &[cur], Attrs::new()).unwrap();
    }
    let labels = g.add_input("labels", Shape::new(vec![batch]));
    let loss = g.add_op("softmax_ce", "loss", &[cur, labels], Attrs::new()).unwrap();
    autodiff::backward(&mut g, loss, &weights).unwrap();
    g
}
