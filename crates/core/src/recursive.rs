//! Recursive partitioning (§5.2).
//!
//! The basic DP partitions a graph between *two* worker groups. To reach
//! `k = k1·k2·…·km` workers (`ki ≥ ki+1`), the search is applied recursively:
//! each step runs the DP on the current (already scaled) graph, then *applies*
//! the chosen basic plan — every tensor's shape shrinks along its chosen
//! dimension, and the regions a group must fetch from its sibling become
//! extra input tensors of the consuming operators (Fig. 6), so later steps
//! account for partitioning the fetched buffers too.
//!
//! Theorem 2 of the paper (per-step costs are non-decreasing,
//! `δᵢ ≤ δᵢ₊₁`) is exposed via [`PartitionPlan::step_costs`] and verified in
//! the test suite; it is also why the recursion maps well onto hierarchical
//! interconnects — the early (cheapest-per-group) cuts land on the slowest
//! links.

use tofu_graph::{Graph, TensorId};
use tofu_obs::{Collector, Track};
use tofu_tensor::Shape;

use crate::cache::{request_fingerprint, RequestLookup, RequestOutcome, SearchCaches};
use crate::coarsen::{coarsen, CoarseGraph};
use crate::dp::{
    search_with_caches, unoptimized_search, DpOptions, ExtraInputs, NodeChoice, SearchTuning,
    StepPlan,
};
use crate::error::CoreError;
use crate::spec::{ConcreteOut, ConcreteReq, TensorSpec};
use crate::strategies::ShapeView;
use crate::Result;

/// Options controlling the full recursive search.
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// Total number of workers.
    pub workers: usize,
    /// Allow Case-2 (output reduction) strategies; `false` models ICML18.
    pub allow_reduce: bool,
    /// DP safety bounds.
    pub state_bound: usize,
    /// Combinatorial bound for within-group enumeration.
    pub internal_bound: usize,
    /// DP beam width per cut.
    pub beam: usize,
    /// Ignore fetch buffers smaller than this (bytes) when propagating extra
    /// inputs to later steps — keeps the bookkeeping proportional to what
    /// actually matters.
    pub fetch_buffer_floor: u64,
    /// Search-engine selection and optimization flags (see [`SearchTuning`]).
    pub tuning: SearchTuning,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            workers: 8,
            allow_reduce: true,
            state_bound: 200_000,
            internal_bound: 1024,
            beam: 512,
            fetch_buffer_floor: 1 << 20,
            tuning: SearchTuning::default(),
        }
    }
}

/// One recursion step's record.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Group count of this step (`ki`).
    pub ways: usize,
    /// Number of worker groups existing *before* this step
    /// (`k1·…·k(i-1)`).
    pub groups_before: usize,
    /// The basic plan chosen by the DP.
    pub plan: StepPlan,
}

impl StepRecord {
    /// Total communication δᵢ of this step across all groups.
    pub fn delta(&self) -> f64 {
        self.plan.comm_bytes * self.groups_before as f64
    }
}

/// The full multi-step partition plan.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Worker count the plan targets.
    pub workers: usize,
    /// One record per recursion step.
    pub steps: Vec<StepRecord>,
    /// Per original tensor: the per-step split dimension (or `None` when the
    /// tensor was replicated at that step).
    pub tiling: Vec<Vec<Option<usize>>>,
    /// Wall time the search took.
    pub search_time: std::time::Duration,
}

impl PartitionPlan {
    /// Total communication bytes over all steps and groups.
    pub fn total_comm_bytes(&self) -> f64 {
        self.steps.iter().map(StepRecord::delta).sum()
    }

    /// The per-step total costs `δ₁, …, δm` (Theorem 2: non-decreasing).
    pub fn step_costs(&self) -> Vec<f64> {
        self.steps.iter().map(StepRecord::delta).collect()
    }

    /// The per-worker shard shape of a tensor under the final plan.
    pub fn shard_shape(&self, original: &Shape, t: TensorId) -> Shape {
        let mut dims = original.dims().to_vec();
        for (step, spec) in self.tiling[t.0].iter().enumerate() {
            if let Some(d) = spec {
                dims[*d] /= self.steps[step].ways;
            }
        }
        Shape::new(dims)
    }

    /// Fraction of the original tensor each worker stores (1 / k when the
    /// tensor was split at every step).
    pub fn shard_fraction(&self, t: TensorId) -> f64 {
        let mut f = 1.0;
        for (step, spec) in self.tiling[t.0].iter().enumerate() {
            if spec.is_some() {
                f /= self.steps[step].ways as f64;
            }
        }
        f
    }
}

/// Factorizes the worker count as `k1 ≥ k2 ≥ … ≥ km` (prime factors, largest
/// first), per §5.2.
pub fn factorize(workers: usize) -> Result<Vec<usize>> {
    if workers == 0 {
        return Err(CoreError::BadWorkerCount(0));
    }
    let mut n = workers;
    let mut factors = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    Ok(factors)
}

/// Runs the full recursive search on a training graph.
///
/// # Examples
///
/// ```
/// use tofu_core::recursive::{partition, PartitionOptions};
/// use tofu_graph::{autodiff, Attrs, Graph};
/// use tofu_tensor::Shape;
///
/// let mut g = Graph::new();
/// let x = g.add_input("x", Shape::new(vec![16, 32]));
/// let w = g.add_weight("w", Shape::new(vec![32, 8]));
/// let labels = g.add_input("labels", Shape::new(vec![16]));
/// let y = g.add_op("matmul", "fc", &[x, w], Attrs::new()).unwrap();
/// let loss = g.add_op("softmax_ce", "loss", &[y, labels], Attrs::new()).unwrap();
/// autodiff::backward(&mut g, loss, &[w]).unwrap();
/// let plan = partition(&g, &PartitionOptions { workers: 4, ..Default::default() }).unwrap();
/// assert_eq!(plan.steps.len(), 2);
/// ```
pub fn partition(g: &Graph, opts: &PartitionOptions) -> Result<PartitionPlan> {
    partition_with_obs(g, opts, None)
}

/// [`partition`] with a caller-owned [`SearchCaches`], so strategy
/// enumerations and finished step plans are reused *across* calls — e.g. a
/// worker-count sweep shares every 2-way step fingerprint, and repeated
/// partitioning of the same model is nearly free.
///
/// The `&mut` receiver is kept for single-threaded callers' convenience
/// (exclusive access needs no synchronization reasoning); it delegates to
/// [`partition_shared`], which accepts the same caches by shared reference
/// from any number of threads.
pub fn partition_cached(
    g: &Graph,
    opts: &PartitionOptions,
    caches: &mut SearchCaches,
    obs: Option<&Collector>,
) -> Result<PartitionPlan> {
    partition_shared(g, opts, caches, obs)
}

/// Pre-populates `caches` with finished plans for every *feasible* worker
/// count in `widths`, returning the feasible ones in ascending order.
///
/// Worker counts the search cannot split — no strategy for some node
/// ([`CoreError::NoStrategy`]) or an unusable count
/// ([`CoreError::BadWorkerCount`]) — are skipped, not errors: an elastic
/// runtime warming the ladder it might shrink or grow through wants the
/// feasible subset, and wants every later `partition_cached` call at *any*
/// probed width to be a warm request-memo hit — the infeasible widths are
/// remembered as rejections. Any other error aborts the warm-up.
pub fn warm_widths(
    g: &Graph,
    base: &PartitionOptions,
    widths: &[usize],
    caches: &SearchCaches,
) -> Result<Vec<usize>> {
    let mut feasible = Vec::new();
    for &w in widths {
        match partition_shared(g, &PartitionOptions { workers: w, ..*base }, caches, None) {
            Ok(_) => feasible.push(w),
            Err(CoreError::NoStrategy { .. } | CoreError::BadWorkerCount(_)) => {}
            Err(e) => return Err(e),
        }
    }
    feasible.sort_unstable();
    feasible.dedup();
    Ok(feasible)
}

/// [`partition_cached`] over a *shared* [`SearchCaches`]: the caches are
/// internally synchronized (sharded locks + single-flight plan
/// deduplication), so a long-running service can call this concurrently
/// from many solver threads against one `Arc<SearchCaches>`. Results are
/// bit-identical to a single-threaded [`partition_cached`] run — every
/// cached value is a pure function of its exact structural key, so thread
/// interleaving only decides who computes an entry first, never its value.
pub fn partition_shared(
    g: &Graph,
    opts: &PartitionOptions,
    caches: &SearchCaches,
    obs: Option<&Collector>,
) -> Result<PartitionPlan> {
    // Whole-request memo: a repeated request skips even coarsening, and a
    // width the search already proved infeasible is rejected immediately —
    // the warm path an elastic runtime's width-ladder probes rely on. The
    // lookup single-flights concurrent identical requests, and respects the
    // `plan_cache` tuning switch (reference mode must really search).
    if !opts.tuning.plan_cache {
        return partition_uncached(g, opts, caches, obs);
    }
    let key = request_fingerprint(g, opts);
    match caches.request_begin(key) {
        RequestLookup::Ready(RequestOutcome::Plan(plan)) => {
            if let Some(c) = obs {
                c.add_total("cache/request_hit", 1.0);
            }
            Ok(plan)
        }
        RequestLookup::Ready(RequestOutcome::Infeasible(e)) => {
            if let Some(c) = obs {
                c.add_total("cache/request_hit", 1.0);
            }
            Err(e)
        }
        RequestLookup::Leader => {
            let guard = caches.request_flight_guard(key);
            let result = partition_uncached(g, opts, caches, obs);
            match &result {
                Ok(plan) => guard.fill(&RequestOutcome::Plan(plan.clone())),
                Err(e @ (CoreError::NoStrategy { .. } | CoreError::BadWorkerCount(_))) => {
                    guard.fill(&RequestOutcome::Infeasible(e.clone()))
                }
                // Transient / circumstance-dependent failures resolve the
                // flight without memoizing (the guard's drop wakes waiters).
                Err(_) => drop(guard),
            }
            result
        }
    }
}

fn partition_uncached(
    g: &Graph,
    opts: &PartitionOptions,
    caches: &SearchCaches,
    obs: Option<&Collector>,
) -> Result<PartitionPlan> {
    let started = std::time::Instant::now();
    let factors = factorize(opts.workers)?;
    let cg = coarsen(g);
    if let Some(c) = obs {
        c.add_total("coarsen/nodes", g.num_nodes() as f64);
        c.add_total("coarsen/groups", cg.groups.len() as f64);
        c.add_total("coarsen/classes", cg.class_nodes.iter().filter(|m| !m.is_empty()).count() as f64);
    }
    partition_inner(g, &cg, &factors, opts, started, caches, obs)
}

/// [`partition`] that reports search statistics into `obs`: coarsening
/// totals (`coarsen/groups`, `coarsen/classes`, `coarsen/nodes`), one span
/// per recursion step on [`Track::search`], per-step `dp/step_comm_bytes`
/// counters, and everything [`search_with_obs`] records.
pub fn partition_with_obs(
    g: &Graph,
    opts: &PartitionOptions,
    obs: Option<&Collector>,
) -> Result<PartitionPlan> {
    let started = std::time::Instant::now();
    let factors = factorize(opts.workers)?;
    let cg = coarsen(g);
    if let Some(c) = obs {
        c.add_total("coarsen/nodes", g.num_nodes() as f64);
        c.add_total("coarsen/groups", cg.groups.len() as f64);
        c.add_total("coarsen/classes", cg.class_nodes.iter().filter(|m| !m.is_empty()).count() as f64);
    }
    let caches = SearchCaches::new();
    partition_inner(g, &cg, &factors, opts, started, &caches, obs)
}

/// Like [`partition`] but with a caller-provided coarsened graph and factor
/// sequence (used by baselines and benchmarks).
pub fn partition_with_coarse(
    g: &Graph,
    cg: &CoarseGraph,
    factors: &[usize],
    opts: &PartitionOptions,
    started: std::time::Instant,
) -> Result<PartitionPlan> {
    partition_with_coarse_obs(g, cg, factors, opts, started, None)
}

/// [`partition_with_coarse`] with an optional statistics sink (see
/// [`partition_with_obs`]).
pub fn partition_with_coarse_obs(
    g: &Graph,
    cg: &CoarseGraph,
    factors: &[usize],
    opts: &PartitionOptions,
    started: std::time::Instant,
    obs: Option<&Collector>,
) -> Result<PartitionPlan> {
    let caches = SearchCaches::new();
    partition_inner(g, cg, factors, opts, started, &caches, obs)
}

fn partition_inner(
    g: &Graph,
    cg: &CoarseGraph,
    factors: &[usize],
    opts: &PartitionOptions,
    started: std::time::Instant,
    caches: &SearchCaches,
    obs: Option<&Collector>,
) -> Result<PartitionPlan> {
    let mut view = ShapeView::from_graph(g);
    let mut extra = ExtraInputs::new();
    let mut steps: Vec<StepRecord> = Vec::with_capacity(factors.len());
    let mut tiling: Vec<Vec<Option<usize>>> = vec![Vec::new(); g.num_tensors()];
    let mut groups_before = 1usize;

    for (step, &ways) in factors.iter().enumerate() {
        let dp_opts = DpOptions {
            ways,
            allow_reduce: opts.allow_reduce,
            state_bound: opts.state_bound,
            internal_bound: opts.internal_bound,
            beam: opts.beam,
            tuning: opts.tuning,
        };
        let step_start = obs.map(|c| c.now_us());
        let plan = if opts.tuning.reference {
            unoptimized_search(g, &view, cg, &extra, &dp_opts, obs)?
        } else {
            search_with_caches(g, &view, cg, &extra, &dp_opts, caches, obs)?
        };
        if let Some(c) = obs {
            let end = c.now_us();
            let name = format!("step {step}: {ways}-way dp over {} groups", cg.groups.len());
            c.complete(Track::search(), "search", &name, step_start.unwrap_or(end), end);
            c.counter(
                Track::search(),
                "dp/step_comm_bytes",
                end,
                plan.comm_bytes * groups_before as f64,
            );
        }

        // Record tiling for original tensors.
        for t in g.tensor_ids() {
            tiling[t.0].push(plan.spec(t).dim());
        }

        // Apply the plan: scale every tensor (graph + extras).
        for t in 0..view.len() {
            if let TensorSpec::Split(d) = plan.tensor_spec[t] {
                let scaled = view
                    .shape(TensorId(t))
                    .split_dim(d, ways)
                    .map_err(|e| CoreError::Internal(format!("applying step: {e}")))?;
                view.set(TensorId(t), scaled);
            }
        }

        // Materialize fetch buffers as extra inputs (Fig. 6): the regions a
        // group pulled from its siblings become leaf tensors that later
        // steps must also partition.
        let mut new_buffers: Vec<(tofu_graph::NodeId, usize, Shape)> = Vec::new();
        for id in g.node_ids() {
            let node = g.node(id);
            match &plan.node_choice[id.0] {
                NodeChoice::Strategy(st) => {
                    for (i, &t) in node.inputs.iter().enumerate() {
                        let spec = plan.spec(t);
                        let req = st.inputs.get(i).cloned().unwrap_or(ConcreteReq::Unused);
                        if let Some(shape) =
                            fetch_buffer_shape(view.shape(t), spec, &req, ways)
                        {
                            if shape.bytes() >= opts.fetch_buffer_floor {
                                new_buffers.push((id, i, shape));
                            }
                        }
                    }
                    if let ConcreteOut::Reduce = st.out {
                        // The reduce-scatter buffer: each worker receives the
                        // partial slabs of its final output shard.
                        let shape = view.shape(node.output).clone();
                        if shape.bytes() >= opts.fetch_buffer_floor {
                            new_buffers.push((id, usize::MAX, shape));
                        }
                    }
                }
                NodeChoice::Ewise(class_spec) => {
                    for (i, &t) in node.inputs.iter().enumerate() {
                        let spec = plan.spec(t);
                        let shape = view.shape(t);
                        let req = match class_spec {
                            TensorSpec::Split(d) if *d < shape.rank() => {
                                ConcreteReq::Split { dim: *d, halo: 0.0 }
                            }
                            _ => ConcreteReq::Replicated,
                        };
                        if let Some(shape) = fetch_buffer_shape(shape, spec, &req, ways) {
                            if shape.bytes() >= opts.fetch_buffer_floor {
                                new_buffers.push((id, i, shape));
                            }
                        }
                    }
                }
            }
        }
        for (node, for_input, shape) in new_buffers {
            let pseudo = TensorId(view.len());
            view.push(shape);
            extra.push(node, for_input.min(g.node(node).inputs.len().saturating_sub(1)), pseudo);
        }

        steps.push(StepRecord { ways, groups_before, plan });
        groups_before *= ways;
    }

    Ok(PartitionPlan { workers: opts.workers, steps, tiling, search_time: started.elapsed() })
}

/// Shape of the per-worker buffer fetched for one input under one strategy,
/// or `None` when nothing is fetched. All shapes are at post-step scale.
fn fetch_buffer_shape(
    scaled: &Shape,
    spec: TensorSpec,
    req: &ConcreteReq,
    ways: usize,
) -> Option<Shape> {
    match (spec, req) {
        (_, ConcreteReq::Unused) => None,
        (TensorSpec::Replicated, _) => None,
        (TensorSpec::Split(a), ConcreteReq::Replicated) => {
            // The rest of the tensor: (ways-1) x the local shard along a.
            scaled.with_dim(a, scaled.dim(a) * (ways - 1)).ok()
        }
        (TensorSpec::Split(a), ConcreteReq::Split { dim, halo }) => {
            if a == *dim {
                if *halo <= 0.0 {
                    None
                } else {
                    let h = (*halo).ceil() as usize;
                    scaled.with_dim(a, h.min(scaled.dim(a).max(1))).ok()
                }
            } else {
                // Cross split: the worker swaps (ways-1)/ways of its slab.
                let keep = scaled.dim(a).max(1);
                scaled.with_dim(a, keep.saturating_sub(keep / ways).max(1)).ok()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::{autodiff, Attrs};

    fn mlp(batch: usize, dims: &[usize]) -> Graph {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![batch, dims[0]]));
        let mut weights = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            let wt = g.add_weight(&format!("w{i}"), Shape::new(vec![w[0], w[1]]));
            weights.push(wt);
            t = g.add_op("matmul", &format!("fc{i}"), &[t, wt], Attrs::new()).unwrap();
            t = g.add_op("relu", &format!("act{i}"), &[t], Attrs::new()).unwrap();
        }
        let labels = g.add_input("labels", Shape::new(vec![batch]));
        let loss = g.add_op("softmax_ce", "loss", &[t, labels], Attrs::new()).unwrap();
        let info = autodiff::backward(&mut g, loss, &weights).unwrap();
        for (i, &w) in weights.iter().enumerate() {
            let gw = info.grad(w).unwrap();
            g.add_op("sgd_update", &format!("upd{i}"), &[w, gw], Attrs::new()).unwrap();
        }
        g
    }

    #[test]
    fn factorization_is_sorted_descending() {
        assert_eq!(factorize(8).unwrap(), vec![2, 2, 2]);
        assert_eq!(factorize(6).unwrap(), vec![3, 2]);
        assert_eq!(factorize(12).unwrap(), vec![3, 2, 2]);
        assert_eq!(factorize(7).unwrap(), vec![7]);
        assert_eq!(factorize(1).unwrap(), Vec::<usize>::new());
        assert!(factorize(0).is_err());
    }

    #[test]
    fn eight_workers_three_steps() {
        let g = mlp(32, &[64, 64, 16]);
        let plan = partition(&g, &PartitionOptions::default()).unwrap();
        assert_eq!(plan.steps.len(), 3);
        assert_eq!(plan.workers, 8);
        assert!(plan.total_comm_bytes().is_finite());
        // Every original tensor has one tiling entry per step.
        assert!(plan.tiling.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn theorem_2_step_costs_non_decreasing() {
        // δᵢ ≤ δᵢ₊₁ (paper appendix A.3). Allow a small numerical slack for
        // the fetch-buffer bookkeeping.
        for g in [mlp(64, &[128, 128, 32]), mlp(16, &[512, 256]), mlp(256, &[64, 64, 64, 16])] {
            let plan = partition(&g, &PartitionOptions::default()).unwrap();
            let costs = plan.step_costs();
            for pair in costs.windows(2) {
                assert!(
                    pair[0] <= pair[1] * 1.05 + 1024.0,
                    "step costs decreased: {costs:?}"
                );
            }
        }
    }

    #[test]
    fn shard_shapes_divide_by_workers() {
        let g = mlp(32, &[64, 64, 16]);
        let plan = partition(&g, &PartitionOptions::default()).unwrap();
        // Most tensors should end up split at every step: their shard volume
        // is 1/8 of the original (the per-GPU memory claim of §2).
        let mut full_split = 0;
        let mut total = 0;
        for t in g.tensor_ids() {
            let original = &g.tensor(t).shape;
            if original.rank() == 0 {
                continue;
            }
            total += 1;
            if (plan.shard_fraction(t) - 1.0 / 8.0).abs() < 1e-9 {
                full_split += 1;
                let shard = plan.shard_shape(original, t);
                assert_eq!(shard.volume() * 8, original.volume());
            }
        }
        assert!(full_split * 2 > total, "only {full_split}/{total} tensors fully split");
    }

    #[test]
    fn non_power_of_two_worker_counts() {
        let g = mlp(36, &[72, 36]);
        let plan = partition(&g, &PartitionOptions { workers: 6, ..Default::default() }).unwrap();
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].ways, 3);
        assert_eq!(plan.steps[1].ways, 2);
    }

    #[test]
    fn one_worker_is_a_noop_plan() {
        let g = mlp(8, &[16, 8]);
        let plan = partition(&g, &PartitionOptions { workers: 1, ..Default::default() }).unwrap();
        assert!(plan.steps.is_empty());
        assert_eq!(plan.total_comm_bytes(), 0.0);
    }

    #[test]
    fn recursion_beats_or_matches_single_flat_chop() {
        // EqualChop-style single 8-way step vs the 3-step recursion: the
        // recursion can express multi-dimensional tilings and must not be
        // worse.
        let g = mlp(64, &[256, 256, 64]);
        let recursive = partition(&g, &PartitionOptions::default()).unwrap();
        let flat = partition_with_coarse(
            &g,
            &coarsen(&g),
            &[8],
            &PartitionOptions::default(),
            std::time::Instant::now(),
        )
        .unwrap();
        assert!(recursive.total_comm_bytes() <= flat.total_comm_bytes() * 1.01 + 1024.0);
    }

    #[test]
    fn search_time_is_recorded() {
        let g = mlp(16, &[32, 16]);
        let plan = partition(&g, &PartitionOptions::default()).unwrap();
        assert!(plan.search_time.as_nanos() > 0);
    }

    #[test]
    fn warm_widths_skips_infeasible_and_fills_the_plan_cache() {
        // Batch 36 divides by 1/2/3/4/6 but not 5 or 7: warm-up must keep
        // the feasible subset and skip the rest without erroring.
        let g = mlp(36, &[72, 36]);
        let caches = SearchCaches::new();
        let base = PartitionOptions { workers: 6, ..Default::default() };
        let feasible = warm_widths(&g, &base, &[7, 6, 5, 4, 3, 2, 1], &caches).unwrap();
        assert_eq!(feasible, vec![1, 2, 3, 4, 6]);
        // Every width — feasible plan or proven infeasibility — is now a
        // warm request-memo hit: no repeat costs a search.
        let h0 = caches.stats().request_hits;
        for &w in &feasible {
            partition_shared(&g, &PartitionOptions { workers: w, ..base }, &caches, None).unwrap();
        }
        for w in [5usize, 7] {
            partition_shared(&g, &PartitionOptions { workers: w, ..base }, &caches, None)
                .unwrap_err();
        }
        let stats = caches.stats();
        assert_eq!(stats.request_hits, h0 + feasible.len() as u64 + 2);
        assert_eq!(stats.request_misses, 7, "one leader per probed width, ever");
    }
}
