//! Convolution and pooling operators, forward and backward.
//!
//! Layouts match the paper's Fig. 1/Fig. 3: `data (b, ci, [h,] w)` and
//! `filters (ci, co, [kh,] kw)`. The backward operators carry their own TDL
//! descriptions so the partitioner can split them independently of the
//! forward pass (the coarsening pass then groups forward and backward
//! operators, §5.1). Strided backward-data descriptions use rational index
//! coefficients (`1/s`), which are region-exact for the interval analysis.

use tofu_tdl::{DescBuilder, Exp, Reducer, TdlDesc};
use tofu_tensor::Shape;

use crate::attrs::Attrs;
use crate::graph::TensorId;
use crate::registry::{GradCtx, OpCategory, OpDef};
use crate::Result;

fn out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    if padded < kernel {
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

fn conv_params(attrs: &Attrs) -> (usize, usize) {
    (attrs.int_or("stride", 1).max(1) as usize, attrs.int_or("pad", 0).max(0) as usize)
}

// ---- Shape inference -------------------------------------------------------

fn shape_conv1d(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 3 || ins[1].rank() != 3 {
        return Err("conv1d expects rank-3 data and filters".into());
    }
    if ins[0].dim(1) != ins[1].dim(0) {
        return Err(format!("channel mismatch {} vs {}", ins[0].dim(1), ins[1].dim(0)));
    }
    let (s, p) = conv_params(attrs);
    Ok(Shape::new(vec![ins[0].dim(0), ins[1].dim(1), out_extent(ins[0].dim(2), ins[1].dim(2), s, p)]))
}

fn shape_conv2d(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 4 || ins[1].rank() != 4 {
        return Err("conv2d expects rank-4 data and filters".into());
    }
    if ins[0].dim(1) != ins[1].dim(0) {
        return Err(format!("channel mismatch {} vs {}", ins[0].dim(1), ins[1].dim(0)));
    }
    let (s, p) = conv_params(attrs);
    Ok(Shape::new(vec![
        ins[0].dim(0),
        ins[1].dim(1),
        out_extent(ins[0].dim(2), ins[1].dim(2), s, p),
        out_extent(ins[0].dim(3), ins[1].dim(3), s, p),
    ]))
}

fn shape_conv2d_bwd_data(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    // Inputs: out_grad (b, co, oh, ow), filters (ci, co, kh, kw); the data
    // extents are attributes because they cannot be recovered from the
    // output extent alone under striding.
    if ins.len() != 2 || ins[0].rank() != 4 || ins[1].rank() != 4 {
        return Err("conv2d_bwd_data expects rank-4 out_grad and filters".into());
    }
    let h = attrs.int("in_h").ok_or("missing in_h attribute")? as usize;
    let w = attrs.int("in_w").ok_or("missing in_w attribute")? as usize;
    Ok(Shape::new(vec![ins[0].dim(0), ins[1].dim(0), h, w]))
}

fn shape_conv2d_bwd_filter(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    // Inputs: out_grad (b, co, oh, ow), data (b, ci, h, w).
    if ins.len() != 2 || ins[0].rank() != 4 || ins[1].rank() != 4 {
        return Err("conv2d_bwd_filter expects rank-4 out_grad and data".into());
    }
    let kh = attrs.int("kh").ok_or("missing kh attribute")? as usize;
    let kw = attrs.int("kw").ok_or("missing kw attribute")? as usize;
    Ok(Shape::new(vec![ins[1].dim(1), ins[0].dim(1), kh, kw]))
}

fn shape_conv1d_bwd_data(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 3 || ins[1].rank() != 3 {
        return Err("conv1d_bwd_data expects rank-3 out_grad and filters".into());
    }
    let x = attrs.int("in_x").ok_or("missing in_x attribute")? as usize;
    Ok(Shape::new(vec![ins[0].dim(0), ins[1].dim(0), x]))
}

fn shape_conv1d_bwd_filter(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 || ins[0].rank() != 3 || ins[1].rank() != 3 {
        return Err("conv1d_bwd_filter expects rank-3 out_grad and data".into());
    }
    let dx = attrs.int("dx").ok_or("missing dx attribute")? as usize;
    Ok(Shape::new(vec![ins[1].dim(1), ins[0].dim(1), dx]))
}

fn shape_pool2d(ins: &[Shape], attrs: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 || ins[0].rank() != 4 {
        return Err("pool2d expects one rank-4 input".into());
    }
    let window = attrs.int_or("window", 2).max(1) as usize;
    let stride = attrs.int_or("stride", window as i64).max(1) as usize;
    Ok(Shape::new(vec![
        ins[0].dim(0),
        ins[0].dim(1),
        out_extent(ins[0].dim(2), window, stride, 0),
        out_extent(ins[0].dim(3), window, stride, 0),
    ]))
}

fn shape_pool2d_grad(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    // Inputs: out_grad, data -> data shape.
    if ins.len() != 2 {
        return Err("pool2d_grad expects out_grad and data".into());
    }
    Ok(ins[1].clone())
}

fn shape_gap(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 1 || ins[0].rank() != 4 {
        return Err("global_avg_pool expects one rank-4 input".into());
    }
    Ok(Shape::new(vec![ins[0].dim(0), ins[0].dim(1)]))
}

fn shape_gap_grad(ins: &[Shape], _: &Attrs) -> std::result::Result<Shape, String> {
    if ins.len() != 2 {
        return Err("gap_grad expects out_grad and data".into());
    }
    Ok(ins[1].clone())
}

// ---- TDL descriptions --------------------------------------------------------

fn tdl_conv1d(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let (s, p) = conv_params(attrs);
    let mut b = DescBuilder::new("conv1d", &[3, 3]);
    let (bb, co, x) = (b.output_var("b"), b.output_var("co"), b.output_var("x"));
    let (ci, dx) = (b.reduce_var("ci"), b.reduce_var("dx"));
    let body = b.input(0, &[bb.at(), ci.at(), x.at() * s as i64 + dx.at() - p as i64])
        * b.input(1, &[ci.at(), co.at(), dx.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_conv2d(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let (s, p) = conv_params(attrs);
    let mut b = DescBuilder::new("conv2d", &[4, 4]);
    let (bb, co) = (b.output_var("b"), b.output_var("co"));
    let (y, x) = (b.output_var("y"), b.output_var("x"));
    let (ci, ky, kx) = (b.reduce_var("ci"), b.reduce_var("ky"), b.reduce_var("kx"));
    let body = b.input(
        0,
        &[
            bb.at(),
            ci.at(),
            y.at() * s as i64 + ky.at() - p as i64,
            x.at() * s as i64 + kx.at() - p as i64,
        ],
    ) * b.input(1, &[ci.at(), co.at(), ky.at(), kx.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_conv2d_bwd_data(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    // dX[b, ci, h, w] = Σ_{co,ky,kx} dY[b, co, (h - ky + p)/s, (w - kx + p)/s]
    //                               · F[ci, co, ky, kx]
    let (s, p) = conv_params(attrs);
    let mut b = DescBuilder::new("conv2d_bwd_data", &[4, 4]);
    let (bb, ci) = (b.output_var("b"), b.output_var("ci"));
    let (h, w) = (b.output_var("h"), b.output_var("w"));
    let (co, ky, kx) = (b.reduce_var("co"), b.reduce_var("ky"), b.reduce_var("kx"));
    let body = b.input(
        0,
        &[
            bb.at(),
            co.at(),
            ((h.at() - ky.at()) + p as i64).div(s as i64),
            ((w.at() - kx.at()) + p as i64).div(s as i64),
        ],
    ) * b.input(1, &[ci.at(), co.at(), ky.at(), kx.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_conv2d_bwd_filter(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    // dF[ci, co, ky, kx] = Σ_{b,y,x} dY[b, co, y, x] · X[b, ci, y·s+ky-p, x·s+kx-p]
    //
    // The reduction over the batch dimension b is exactly the "hidden"
    // strategy the paper highlights: weight gradients can be computed by
    // batch-splitting and then output-reducing (§7.3).
    let (s, p) = conv_params(attrs);
    let mut b = DescBuilder::new("conv2d_bwd_filter", &[4, 4]);
    let (ci, co) = (b.output_var("ci"), b.output_var("co"));
    let (ky, kx) = (b.output_var("ky"), b.output_var("kx"));
    let (bb, y, x) = (b.reduce_var("b"), b.reduce_var("y"), b.reduce_var("x"));
    let body = b.input(0, &[bb.at(), co.at(), y.at(), x.at()])
        * b.input(
            1,
            &[
                bb.at(),
                ci.at(),
                y.at() * s as i64 + ky.at() - p as i64,
                x.at() * s as i64 + kx.at() - p as i64,
            ],
        );
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_conv1d_bwd_data(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let (s, p) = conv_params(attrs);
    let mut b = DescBuilder::new("conv1d_bwd_data", &[3, 3]);
    let (bb, ci, x) = (b.output_var("b"), b.output_var("ci"), b.output_var("x"));
    let (co, dx) = (b.reduce_var("co"), b.reduce_var("dx"));
    let body = b.input(0, &[bb.at(), co.at(), ((x.at() - dx.at()) + p as i64).div(s as i64)])
        * b.input(1, &[ci.at(), co.at(), dx.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_conv1d_bwd_filter(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let (s, p) = conv_params(attrs);
    let mut b = DescBuilder::new("conv1d_bwd_filter", &[3, 3]);
    let (ci, co, dx) = (b.output_var("ci"), b.output_var("co"), b.output_var("dx"));
    let (bb, x) = (b.reduce_var("b"), b.reduce_var("x"));
    let body = b.input(0, &[bb.at(), co.at(), x.at()])
        * b.input(1, &[bb.at(), ci.at(), x.at() * s as i64 + dx.at() - p as i64]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_pool2d(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let window = attrs.int_or("window", 2).max(1) as usize;
    let stride = attrs.int_or("stride", window as i64).max(1) as usize;
    let reducer = match attrs.str("mode") {
        Some("avg") => Reducer::Sum, // averaged by a scalar factor afterwards
        _ => Reducer::Max,
    };
    let mut b = DescBuilder::new("pool2d", &[4]);
    let (bb, c) = (b.output_var("b"), b.output_var("c"));
    let (y, x) = (b.output_var("y"), b.output_var("x"));
    let (dy, dx) = (b.reduce_var("dy"), b.reduce_var("dx"));
    let body = b.input(
        0,
        &[bb.at(), c.at(), y.at() * stride as i64 + dy.at(), x.at() * stride as i64 + dx.at()],
    );
    b.build_reduce(reducer, body).ok()
}

fn tdl_pool2d_grad(_: &[Shape], attrs: &Attrs) -> Option<TdlDesc> {
    let window = attrs.int_or("window", 2).max(1) as usize;
    let stride = attrs.int_or("stride", window as i64).max(1) as usize;
    let mut b = DescBuilder::new("pool2d_grad", &[4, 4]);
    let (bb, c) = (b.output_var("b"), b.output_var("c"));
    let (h, w) = (b.output_var("h"), b.output_var("w"));
    let dy = b.reduce_var_with_extent("dy", window as u64);
    let dx = b.reduce_var_with_extent("dx", window as u64);
    let body = b.input(
        0,
        &[bb.at(), c.at(), (h.at() - dy.at()).div(stride as i64), (w.at() - dx.at()).div(stride as i64)],
    ) * b.input(1, &[bb.at(), c.at(), h.at(), w.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_gap(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    let mut b = DescBuilder::new("global_avg_pool", &[4]);
    let (bb, c) = (b.output_var("b"), b.output_var("c"));
    let (y, x) = (b.reduce_var("y"), b.reduce_var("x"));
    let body = b.input(0, &[bb.at(), c.at(), y.at(), x.at()]);
    b.build_reduce(Reducer::Sum, body).ok()
}

fn tdl_gap_grad(_: &[Shape], _: &Attrs) -> Option<TdlDesc> {
    // dIn[b, c, h, w] = dOut[b, c] / (H·W). The data operand contributes no
    // values, but the kernel reads its shape for the normalization, so the
    // description references it to keep the region analysis (and therefore
    // the partitioned-graph generator) honest about what must be resident.
    let mut b = DescBuilder::new("gap_grad", &[2, 4]);
    let (bb, c) = (b.output_var("b"), b.output_var("c"));
    let (h, w) = (b.output_var("h"), b.output_var("w"));
    let body = b.input(0, &[bb.at(), c.at()])
        + b.input(1, &[bb.at(), c.at(), h.at(), w.at()]) * Exp::constant(0.0);
    b.build(body).ok()
}

// ---- Gradients ----------------------------------------------------------------

fn grad_conv2d(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (data, filters) = (ctx.inputs[0], ctx.inputs[1]);
    let dsh = ctx.shape(data);
    let fsh = ctx.shape(filters);
    let (s, p) = conv_params(&ctx.attrs);
    let d_data = ctx.op(
        "conv2d_bwd_data",
        &[ctx.out_grad, filters],
        Attrs::new()
            .with_int("stride", s as i64)
            .with_int("pad", p as i64)
            .with_int("in_h", dsh.dim(2) as i64)
            .with_int("in_w", dsh.dim(3) as i64),
    )?;
    let d_filters = ctx.op(
        "conv2d_bwd_filter",
        &[ctx.out_grad, data],
        Attrs::new()
            .with_int("stride", s as i64)
            .with_int("pad", p as i64)
            .with_int("kh", fsh.dim(2) as i64)
            .with_int("kw", fsh.dim(3) as i64),
    )?;
    Ok(vec![Some(d_data), Some(d_filters)])
}

fn grad_conv1d(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let (data, filters) = (ctx.inputs[0], ctx.inputs[1]);
    let dsh = ctx.shape(data);
    let fsh = ctx.shape(filters);
    let (s, p) = conv_params(&ctx.attrs);
    let d_data = ctx.op(
        "conv1d_bwd_data",
        &[ctx.out_grad, filters],
        Attrs::new()
            .with_int("stride", s as i64)
            .with_int("pad", p as i64)
            .with_int("in_x", dsh.dim(2) as i64),
    )?;
    let d_filters = ctx.op(
        "conv1d_bwd_filter",
        &[ctx.out_grad, data],
        Attrs::new()
            .with_int("stride", s as i64)
            .with_int("pad", p as i64)
            .with_int("dx", fsh.dim(2) as i64),
    )?;
    Ok(vec![Some(d_data), Some(d_filters)])
}

fn grad_pool2d(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let attrs = ctx.attrs.clone();
    let dx = ctx.op("pool2d_grad", &[ctx.out_grad, ctx.inputs[0]], attrs)?;
    Ok(vec![Some(dx)])
}

fn grad_gap(ctx: &mut GradCtx<'_>) -> Result<Vec<Option<TensorId>>> {
    let dx = ctx.op("gap_grad", &[ctx.out_grad, ctx.inputs[0]], Attrs::new())?;
    Ok(vec![Some(dx)])
}

// ---- Flops ----------------------------------------------------------------------

fn flops_conv2d(ins: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    // 2 · |out| · ci · kh · kw.
    2.0 * out.volume() as f64 * (ins[1].dim(0) * ins[1].dim(2) * ins[1].dim(3)) as f64
}

fn flops_conv2d_bwd(ins: &[Shape], out: &Shape, attrs: &Attrs) -> f64 {
    // Symmetric cost to the forward pass.
    flops_conv2d(ins, out, attrs).max(2.0 * ins[0].volume() as f64)
}

fn flops_conv1d(ins: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    2.0 * out.volume() as f64 * (ins[1].dim(0) * ins[1].dim(2)) as f64
}

fn flops_pool(_: &[Shape], out: &Shape, attrs: &Attrs) -> f64 {
    let window = attrs.int_or("window", 2).max(1) as f64;
    out.volume() as f64 * window * window
}

fn flops_vol(ins: &[Shape], out: &Shape, _: &Attrs) -> f64 {
    ins.iter().map(|s| s.volume()).max().unwrap_or(out.volume()) as f64
}

/// Returns the convolution/pooling operator definitions.
pub fn defs() -> Vec<OpDef> {
    vec![
        OpDef {
            name: "conv1d",
            category: OpCategory::Convolution,
            infer_shape: shape_conv1d,
            tdl: Some(tdl_conv1d),
            gradient: Some(grad_conv1d),
            flops: flops_conv1d,
        },
        OpDef {
            name: "conv1d_bwd_data",
            category: OpCategory::Convolution,
            infer_shape: shape_conv1d_bwd_data,
            tdl: Some(tdl_conv1d_bwd_data),
            gradient: None,
            flops: flops_conv1d,
        },
        OpDef {
            name: "conv1d_bwd_filter",
            category: OpCategory::Convolution,
            infer_shape: shape_conv1d_bwd_filter,
            tdl: Some(tdl_conv1d_bwd_filter),
            gradient: None,
            flops: flops_conv1d,
        },
        OpDef {
            name: "conv2d",
            category: OpCategory::Convolution,
            infer_shape: shape_conv2d,
            tdl: Some(tdl_conv2d),
            gradient: Some(grad_conv2d),
            flops: flops_conv2d,
        },
        OpDef {
            name: "conv2d_bwd_data",
            category: OpCategory::Convolution,
            infer_shape: shape_conv2d_bwd_data,
            tdl: Some(tdl_conv2d_bwd_data),
            gradient: None,
            flops: flops_conv2d_bwd,
        },
        OpDef {
            name: "conv2d_bwd_filter",
            category: OpCategory::Convolution,
            infer_shape: shape_conv2d_bwd_filter,
            tdl: Some(tdl_conv2d_bwd_filter),
            gradient: None,
            flops: flops_conv2d_bwd,
        },
        OpDef {
            name: "pool2d",
            category: OpCategory::Convolution,
            infer_shape: shape_pool2d,
            tdl: Some(tdl_pool2d),
            gradient: Some(grad_pool2d),
            flops: flops_pool,
        },
        OpDef {
            name: "pool2d_grad",
            category: OpCategory::Convolution,
            infer_shape: shape_pool2d_grad,
            tdl: Some(tdl_pool2d_grad),
            gradient: None,
            flops: flops_pool,
        },
        OpDef {
            name: "global_avg_pool",
            category: OpCategory::Reduction,
            infer_shape: shape_gap,
            tdl: Some(tdl_gap),
            gradient: Some(grad_gap),
            flops: flops_vol,
        },
        OpDef {
            name: "gap_grad",
            category: OpCategory::Reduction,
            infer_shape: shape_gap_grad,
            tdl: Some(tdl_gap_grad),
            gradient: None,
            flops: flops_vol,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_tdl::{discover_strategies, InputRequirement};

    #[test]
    fn conv2d_shape_with_stride_and_pad() {
        let data = Shape::new(vec![2, 3, 8, 8]);
        let filt = Shape::new(vec![3, 16, 3, 3]);
        let attrs = Attrs::new().with_int("stride", 2).with_int("pad", 1);
        let out = shape_conv2d(&[data, filt], &attrs).unwrap();
        assert_eq!(out.dims(), &[2, 16, 4, 4]);
    }

    #[test]
    fn conv2d_shape_rejects_channel_mismatch() {
        let data = Shape::new(vec![2, 3, 8, 8]);
        let filt = Shape::new(vec![4, 16, 3, 3]);
        assert!(shape_conv2d(&[data, filt], &Attrs::new()).is_err());
    }

    #[test]
    fn conv2d_tdl_has_seven_strategies() {
        // b, co, y, x output splits + ci, ky, kx reduction splits.
        let desc = tdl_conv2d(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        assert_eq!(s.len(), 7);
        // Channel reduction strategy splits both data (dim 1) and filters
        // (dim 0) — Fig. 2(b).
        let ci = s.iter().find(|st| st.id == "reduce:ci").unwrap();
        assert!(matches!(ci.inputs[0], InputRequirement::Split { dim: 1, .. }));
        assert!(matches!(ci.inputs[1], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn conv2d_bwd_filter_has_batch_reduction() {
        let desc = tdl_conv2d_bwd_filter(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        let batch = s.iter().find(|st| st.id == "reduce:b").expect("batch reduction strategy");
        assert!(batch.output.is_reduce());
        // Both dY and X are split along their batch dimension.
        assert!(matches!(batch.inputs[0], InputRequirement::Split { dim: 0, .. }));
        assert!(matches!(batch.inputs[1], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn strided_bwd_data_spatial_split_works() {
        let attrs = Attrs::new().with_int("stride", 2).with_int("pad", 1);
        let desc = tdl_conv2d_bwd_data(&[], &attrs).unwrap();
        let s = discover_strategies(&desc).unwrap();
        let h_split = s.iter().find(|st| st.id == "split:h").unwrap();
        // dY is split along its spatial dim with a halo.
        match &h_split.inputs[0] {
            InputRequirement::Split { dim: 2, halo } => assert!(!halo.is_zero()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pool_max_uses_max_reducer() {
        let desc = tdl_pool2d(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        let red = s.iter().find(|st| st.output.is_reduce()).unwrap();
        match &red.output {
            tofu_tdl::OutputPartition::Reduce { reducer } => {
                assert_eq!(*reducer, Reducer::Max)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn gap_grad_spatial_dims_replicate_outgrad() {
        let desc = tdl_gap_grad(&[], &Attrs::new()).unwrap();
        let s = discover_strategies(&desc).unwrap();
        // Splitting h (dim 2): dOut (b, c) is untouched -> replicated.
        assert_eq!(s[2].inputs[0], InputRequirement::Replicated);
        // Splitting b: dOut splits along batch.
        assert!(matches!(s[0].inputs[0], InputRequirement::Split { dim: 0, .. }));
    }

    #[test]
    fn bwd_shapes_roundtrip_forward() {
        let data = Shape::new(vec![2, 3, 8, 8]);
        let filt = Shape::new(vec![3, 16, 3, 3]);
        let attrs = Attrs::new().with_int("stride", 2).with_int("pad", 1);
        let out = shape_conv2d(&[data.clone(), filt.clone()], &attrs).unwrap();
        let d_data = shape_conv2d_bwd_data(
            &[out.clone(), filt.clone()],
            &attrs.clone().with_int("in_h", 8).with_int("in_w", 8),
        )
        .unwrap();
        assert_eq!(d_data, data);
        let d_filt = shape_conv2d_bwd_filter(
            &[out, data],
            &attrs.with_int("kh", 3).with_int("kw", 3),
        )
        .unwrap();
        assert_eq!(d_filt, filt);
    }
}
