//! Operator attribute maps (the NNVM-style `attrs` dictionary).

use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute (stride, axis, window, ...).
    Int(i64),
    /// Floating attribute (epsilon, learning rate, ...).
    Float(f64),
    /// String attribute (mode switches).
    Str(String),
    /// Integer-list attribute (shapes, multi-axis arguments).
    IntVec(Vec<i64>),
}

/// An ordered attribute dictionary attached to a graph node.
///
/// # Examples
///
/// ```
/// use tofu_graph::Attrs;
///
/// let attrs = Attrs::new().with_int("stride", 2).with_int("pad", 1);
/// assert_eq!(attrs.int("stride"), Some(2));
/// assert_eq!(attrs.int_or("dilation", 1), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attrs(BTreeMap<String, AttrValue>);

impl Attrs {
    /// Creates an empty attribute map.
    pub fn new() -> Attrs {
        Attrs::default()
    }

    /// Adds an integer attribute (builder style).
    pub fn with_int(mut self, key: &str, value: i64) -> Attrs {
        self.0.insert(key.to_string(), AttrValue::Int(value));
        self
    }

    /// Adds a float attribute (builder style).
    pub fn with_float(mut self, key: &str, value: f64) -> Attrs {
        self.0.insert(key.to_string(), AttrValue::Float(value));
        self
    }

    /// Adds a string attribute (builder style).
    pub fn with_str(mut self, key: &str, value: &str) -> Attrs {
        self.0.insert(key.to_string(), AttrValue::Str(value.to_string()));
        self
    }

    /// Adds an integer-list attribute (builder style).
    pub fn with_ints(mut self, key: &str, value: Vec<i64>) -> Attrs {
        self.0.insert(key.to_string(), AttrValue::IntVec(value));
        self
    }

    /// Reads an integer attribute.
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.0.get(key) {
            Some(AttrValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads an integer attribute with a default.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        self.int(key).unwrap_or(default)
    }

    /// Reads a float attribute.
    pub fn float(&self, key: &str) -> Option<f64> {
        match self.0.get(key) {
            Some(AttrValue::Float(v)) => Some(*v),
            Some(AttrValue::Int(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Reads a string attribute.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.0.get(key) {
            Some(AttrValue::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Reads an integer-list attribute.
    pub fn ints(&self, key: &str) -> Option<&[i64]> {
        match self.0.get(key) {
            Some(AttrValue::IntVec(v)) => Some(v),
            _ => None,
        }
    }

    /// True when no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(key, value)` pairs in canonical (sorted-key) order —
    /// the order [`fmt::Display`] renders and serializers must follow.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Inserts one attribute value under a key (used by deserializers; the
    /// `with_*` builders are the ergonomic path).
    pub fn set(&mut self, key: &str, value: AttrValue) {
        self.0.insert(key.to_string(), value);
    }
}

impl fmt::Display for Attrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                AttrValue::Int(x) => write!(f, "{k}={x}")?,
                AttrValue::Float(x) => write!(f, "{k}={x}")?,
                AttrValue::Str(x) => write!(f, "{k}={x:?}")?,
                AttrValue::IntVec(x) => write!(f, "{k}={x:?}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let a = Attrs::new()
            .with_int("axis", 1)
            .with_float("eps", 1e-5)
            .with_str("mode", "max")
            .with_ints("dims", vec![2, 3]);
        assert_eq!(a.int("axis"), Some(1));
        assert_eq!(a.float("eps"), Some(1e-5));
        assert_eq!(a.str("mode"), Some("max"));
        assert_eq!(a.ints("dims"), Some(&[2, 3][..]));
        assert_eq!(a.int("missing"), None);
        assert_eq!(a.int_or("missing", 7), 7);
        // Int promotes to float but not vice versa.
        assert_eq!(a.float("axis"), Some(1.0));
        assert_eq!(a.int("eps"), None);
        assert!(!a.is_empty());
        assert!(Attrs::new().is_empty());
    }

    #[test]
    fn display_renders_all_kinds() {
        let a = Attrs::new().with_int("axis", 1).with_str("mode", "max");
        let s = a.to_string();
        assert!(s.contains("axis=1"));
        assert!(s.contains("mode=\"max\""));
    }
}
