//! Fail-fast cooperative abort.
//!
//! One [`AbortToken`] is shared by every worker of a run. The first worker
//! that fails — a kernel error, a tripped integrity check, a panic, an
//! injected fault — *trips* the token with a structured [`AbortCause`];
//! every other worker polls the token between schedule steps and inside its
//! receive loop (at [`RunOptions::abort_poll`](crate::RunOptions::abort_poll)
//! granularity), so a dead peer stops the whole run within milliseconds
//! instead of stalling healthy workers until `recv_timeout`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use tofu_graph::NodeId;

/// Why the run aborted: the first failure, as recorded by the worker that
/// tripped the token.
#[derive(Debug, Clone)]
pub struct AbortCause {
    /// Worker that failed first.
    pub worker: usize,
    /// Node that worker was executing, if it got that far.
    pub node: Option<NodeId>,
    /// Position of that node in the worker's serial schedule.
    pub pos: Option<usize>,
    /// One-line description of the failure.
    pub summary: String,
    /// When the token tripped (for detection-latency measurement).
    pub at: Instant,
}

#[derive(Debug)]
struct Inner {
    tripped: AtomicBool,
    cause: Mutex<Option<AbortCause>>,
}

/// Shared poison flag plus first-failure cause. Cloning is cheap (an `Arc`).
#[derive(Debug, Clone)]
pub struct AbortToken {
    inner: Arc<Inner>,
}

impl Default for AbortToken {
    fn default() -> Self {
        AbortToken::new()
    }
}

impl AbortToken {
    /// A fresh, untripped token.
    pub fn new() -> AbortToken {
        AbortToken {
            inner: Arc::new(Inner {
                tripped: AtomicBool::new(false),
                cause: Mutex::new(None),
            }),
        }
    }

    /// Trips the token with `cause`. The first trip wins; later trips (from
    /// workers failing as a *consequence* of the first) are ignored. Returns
    /// whether this call was the first.
    pub fn trip(&self, cause: AbortCause) -> bool {
        // The cause is written under the lock *before* the flag is raised, so
        // any worker that observes `tripped` also observes a cause.
        let mut slot = self.inner.cause.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(cause);
        drop(slot);
        self.inner.tripped.store(true, Ordering::Release);
        true
    }

    /// Cheap poll: has any worker failed?
    pub fn is_tripped(&self) -> bool {
        self.inner.tripped.load(Ordering::Acquire)
    }

    /// The first failure, once tripped.
    pub fn cause(&self) -> Option<AbortCause> {
        self.inner.cause.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cause(worker: usize) -> AbortCause {
        AbortCause { worker, node: None, pos: None, summary: "boom".into(), at: Instant::now() }
    }

    #[test]
    fn first_trip_wins() {
        let t = AbortToken::new();
        assert!(!t.is_tripped());
        assert!(t.cause().is_none());
        assert!(t.trip(cause(3)));
        assert!(!t.trip(cause(5)), "second trip must not override the first");
        assert!(t.is_tripped());
        assert_eq!(t.cause().unwrap().worker, 3);
    }

    #[test]
    fn clones_share_state() {
        let t = AbortToken::new();
        let u = t.clone();
        t.trip(cause(1));
        assert!(u.is_tripped());
        assert_eq!(u.cause().unwrap().worker, 1);
    }
}
