//! Per-device memory accounting.
//!
//! Wraps the graph crate's static memory planner: a device's footprint is
//! its persistent tensors (weight shards and inputs), the planner's peak of
//! transient buffers under its serial sub-schedule, and one extra optimizer
//! history copy per weight — the `3W` rule of §7.1 (weight + gradient +
//! history; the gradient is a graph tensor and already in the plan).

use tofu_graph::{memplan, Graph, NodeId, TensorKind};

use crate::machine::Machine;

/// Memory summary of one device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceMemory {
    /// Peak bytes (persistent + transient + optimizer history).
    pub peak_bytes: u64,
    /// Persistent (weights + inputs) bytes.
    pub persistent_bytes: u64,
    /// Extra optimizer-history bytes.
    pub optimizer_bytes: u64,
}

impl DeviceMemory {
    /// Peak in gigabytes.
    pub fn peak_gb(&self) -> f64 {
        self.peak_bytes as f64 / 1e9
    }

    /// True when this device fits the machine's capacity.
    pub fn fits(&self, machine: &Machine) -> bool {
        self.peak_bytes <= machine.mem_capacity
    }
}

/// Computes one device's memory from its sub-schedule.
///
/// `buffer_reuse` models the §6 control-dependency optimization: with it the
/// memory planner reuses freed buffers along the worker's serial schedule;
/// without it every transient allocation is simultaneously live.
pub fn device_memory(
    g: &Graph,
    schedule: &[NodeId],
    buffer_reuse: bool,
    optimizer_copies: f64,
) -> DeviceMemory {
    let plan = memplan::plan_memory_for_schedule(g, schedule, buffer_reuse);
    // Optimizer history: one extra copy per weight shard this device *owns*
    // (consumed by its compute nodes; weight shards read through a
    // `multi_fetch` belong to another device).
    let mut weight_bytes = 0u64;
    let mut seen: Vec<usize> = Vec::new();
    for &id in schedule {
        let node = g.node(id);
        if node.op == "multi_fetch" {
            continue;
        }
        for &t in &node.inputs {
            if g.tensor(t).kind == TensorKind::Weight && !seen.contains(&t.0) {
                seen.push(t.0);
                weight_bytes += g.tensor(t).shape.bytes();
            }
        }
    }
    let optimizer_bytes = (weight_bytes as f64 * optimizer_copies) as u64;
    DeviceMemory {
        peak_bytes: plan.total_bytes() + optimizer_bytes,
        persistent_bytes: plan.persistent_bytes,
        optimizer_bytes,
    }
}

/// Memory of every device in a device-tagged graph.
pub fn per_device_memory(
    g: &Graph,
    device_of: &[usize],
    gpus: usize,
    buffer_reuse: bool,
    optimizer_copies: f64,
) -> Vec<DeviceMemory> {
    (0..gpus)
        .map(|d| {
            let schedule: Vec<NodeId> =
                g.node_ids().filter(|n| device_of[n.0] == d).collect();
            device_memory(g, &schedule, buffer_reuse, optimizer_copies)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::Attrs;
    use tofu_tensor::Shape;

    #[test]
    fn optimizer_history_counts_weights_once() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![4, 8]));
        let w = g.add_weight("w", Shape::new(vec![8, 8]));
        let a = g.add_op("matmul", "m1", &[x, w], Attrs::new()).unwrap();
        let _b = g.add_op("matmul", "m2", &[a, w], Attrs::new()).unwrap();
        let schedule: Vec<NodeId> = g.node_ids().collect();
        let mem = device_memory(&g, &schedule, true, 1.0);
        assert_eq!(mem.optimizer_bytes, 8 * 8 * 4);
        assert!(mem.peak_bytes > mem.optimizer_bytes);
    }

    #[test]
    fn reuse_reduces_peak() {
        let mut g = Graph::new();
        let mut t = g.add_input("x", Shape::new(vec![1 << 16]));
        for i in 0..6 {
            t = g.add_op("relu", &format!("r{i}"), &[t], Attrs::new()).unwrap();
        }
        let schedule: Vec<NodeId> = g.node_ids().collect();
        let with = device_memory(&g, &schedule, true, 0.0);
        let without = device_memory(&g, &schedule, false, 0.0);
        assert!(without.peak_bytes > with.peak_bytes);
    }

    #[test]
    fn fits_respects_capacity() {
        let machine = Machine::p2_8xlarge();
        let small = DeviceMemory { peak_bytes: 1 << 30, persistent_bytes: 0, optimizer_bytes: 0 };
        let big = DeviceMemory {
            peak_bytes: 20 * (1 << 30),
            persistent_bytes: 0,
            optimizer_bytes: 0,
        };
        assert!(small.fits(&machine));
        assert!(!big.fits(&machine));
    }

    #[test]
    fn per_device_split_accounts_separately() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new(vec![1 << 16]));
        let _a = g.add_op("relu", "a", &[x], Attrs::new()).unwrap();
        let _b = g.add_op("tanh", "b", &[x], Attrs::new()).unwrap();
        let mems = per_device_memory(&g, &[0, 1], 2, true, 0.0);
        assert_eq!(mems.len(), 2);
        assert!(mems[0].peak_bytes > 0);
        assert!(mems[1].peak_bytes > 0);
    }
}
