//! Dumps a unified Chrome-trace for a model: partition-search counters,
//! the simulator's predicted per-device timeline, and the real runtime's
//! measured timeline, all in one file so chrome://tracing (or Perfetto)
//! shows predicted and measured lanes side by side per device.
//!
//! Usage: `trace_dump [--model mlp|wresnet|both] [--workers N]`
//! Writes `TRACE_<model>.json`, then re-parses its own output and fails
//! (exit 1) unless the trace is well-formed: non-empty, search events
//! present, and both a runtime and a sim process lane per device.

use tofu_bench::feeds;
use tofu_core::recursive::{partition_with_obs, PartitionOptions};
use tofu_core::{generate, GenOptions, ShardedGraph};
use tofu_graph::Graph;
use tofu_models::{mlp, wresnet, MlpConfig, WResNetConfig};
use tofu_obs::chrome::chrome_trace;
use tofu_obs::json::{self, num_map, Json};
use tofu_obs::{Collector, PID_RUNTIME_BASE, PID_SEARCH, PID_SIM_BASE};
use tofu_runtime::{run_with_options, RunOptions};
use tofu_sim::{simulate_traced, Machine};

fn dump(tag: &str, g: &Graph, workers: usize) -> Result<String, String> {
    let obs = Collector::new();
    let opts = PartitionOptions { workers, ..Default::default() };
    let plan = partition_with_obs(g, &opts, Some(&obs))
        .map_err(|e| format!("{tag}: partition failed: {e}"))?;
    let sharded: ShardedGraph = generate(g, &plan, &GenOptions::default())
        .map_err(|e| format!("{tag}: generate failed: {e}"))?;

    // Predicted timeline: simulated clock, one "(predicted)" lane per device.
    simulate_traced(
        &sharded.graph,
        &sharded.device_of_node,
        &sharded.device_of_tensor,
        &Machine::p2_8xlarge(),
        false,
        Some(&obs),
    );

    // Measured timeline: the same sharded graph on the threaded runtime.
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        shard_feeds.extend(sharded.scatter(t, &v).map_err(|e| format!("{tag}: scatter: {e}"))?);
    }
    let run_opts = RunOptions { collector: Some(obs.clone()), ..Default::default() };
    run_with_options(&sharded, &shard_feeds, &run_opts)
        .map_err(|e| format!("{tag}: runtime run failed: {e}"))?;

    let mut doc = chrome_trace(&obs.events());
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("totals".to_string(), num_map(&obs.totals())));
    }
    let path = format!("TRACE_{tag}.json");
    std::fs::write(&path, doc.to_json() + "\n").map_err(|e| format!("write {path}: {e}"))?;
    validate(&path, workers)?;
    Ok(path)
}

/// Re-reads the file just written and checks it is a usable trace.
fn validate(path: &str, workers: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: missing traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }
    let pids: Vec<f64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(Json::as_f64))
        .collect();
    if !pids.contains(&(PID_SEARCH as f64)) {
        return Err(format!("{path}: no partition-search events (pid {PID_SEARCH})"));
    }
    for d in 0..workers {
        for (base, what) in [(PID_RUNTIME_BASE, "runtime"), (PID_SIM_BASE, "sim")] {
            let pid = (base + d as u32) as f64;
            if !pids.contains(&pid) {
                return Err(format!("{path}: no {what} events for device {d} (pid {pid})"));
            }
        }
    }
    let totals = doc.get("totals").ok_or_else(|| format!("{path}: missing totals"))?;
    let explored = totals.get("dp/states_explored").and_then(Json::as_f64).unwrap_or(0.0);
    if explored <= 0.0 {
        return Err(format!("{path}: dp/states_explored missing or zero"));
    }
    println!("{path}: {} events, {} dp states explored — ok", events.len(), explored);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pick = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let model = pick("--model", "both");
    let workers: usize = pick("--workers", "2").parse().expect("--workers takes a number");

    let mut failures = Vec::new();
    if model == "mlp" || model == "both" {
        let m = mlp(&MlpConfig {
            batch: 64,
            dims: vec![256, 256],
            classes: 64,
            with_updates: true,
        })
        .expect("mlp builds");
        match dump("mlp", &m.graph, workers) {
            Ok(path) => println!("wrote {path}"),
            Err(e) => failures.push(e),
        }
    }
    if model == "wresnet" || model == "both" {
        let m = wresnet(&WResNetConfig {
            layers: 50,
            width: 1,
            batch: 8,
            image: 16,
            classes: 8,
            with_updates: true,
        })
        .expect("wresnet builds");
        match dump("wresnet", &m.graph, workers) {
            Ok(path) => println!("wrote {path}"),
            Err(e) => failures.push(e),
        }
    }
    if !(model == "mlp" || model == "wresnet" || model == "both") {
        eprintln!("unknown --model {model} (expected mlp|wresnet|both)");
        std::process::exit(2);
    }
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
