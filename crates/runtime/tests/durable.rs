//! Durable-checkpoint crash-restart tests: a simulated whole-process crash
//! drops every byte of in-memory state, and a fresh runtime must discover
//! the newest *valid* checkpoint on disk (skipping corrupt candidates with a
//! typed reason), reshard it onto the current fleet — possibly at a
//! different width — and finish bit-identical to an undisturbed run resumed
//! from the same cut. Every injected disk corruption must be detected at
//! recovery, never silently resumed from.

use std::collections::BTreeMap;
use std::sync::Arc;

use tofu_core::{PartitionOptions, SearchCaches};
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    resume_from_snapshot, run_with_durable_recovery, run_with_options, BlobStore,
    CheckpointPolicy, CrashPoint, DirStore, DiskFault, DurableOptions, DurableReport, FaultPlan,
    MemStore, RejectReason, RunOptions, RuntimeError,
};
use tofu_tensor::Tensor;

/// Batch 24 splits evenly at every width these tests restart at (2, 3, 4).
fn model() -> tofu_models::BuiltModel {
    mlp(&MlpConfig { batch: 24, dims: vec![12, 12], classes: 6, with_updates: true }).unwrap()
}

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

/// A cadence that yields several barriers, so checkpoints 1 and 2 both
/// exist and a third one still gets committed after the restart.
fn cadence(g: &Graph) -> usize {
    (g.num_nodes() / 6).max(1)
}

fn checkpointed(g: &Graph, faults: FaultPlan) -> RunOptions {
    RunOptions {
        faults,
        checkpoint: Some(CheckpointPolicy::every_original(cadence(g))),
        ..Default::default()
    }
}

/// The spec's bit-identity baseline: an undisturbed run at the restart
/// width, resumed from the recovered snapshot when there is one (the only
/// meaningful baseline across a width change), from scratch otherwise.
fn baseline_values(
    report: &DurableReport,
    full_feeds: &[(TensorId, Tensor)],
) -> BTreeMap<TensorId, Tensor> {
    let clean = RunOptions::default();
    match &report.snapshot {
        Some(snap) => resume_from_snapshot(&report.sharded, &[], &clean, snap)
            .expect("baseline resume")
            .values,
        None => {
            let mut sf = Vec::new();
            for (t, v) in full_feeds {
                sf.extend(report.sharded.scatter(*t, v).unwrap());
            }
            run_with_options(&report.sharded, &sf, &clean).expect("baseline run").values
        }
    }
}

fn assert_bit_identical(got: &BTreeMap<TensorId, Tensor>, want: &BTreeMap<TensorId, Tensor>) {
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "restarted run holds different tensors"
    );
    for (t, w) in want {
        let g = &got[t];
        assert_eq!(g.shape(), w.shape(), "tensor {t:?} changed shape");
        let gb: Vec<u32> = g.data().iter().map(|x| x.to_bits()).collect();
        let wb: Vec<u32> = w.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, wb, "tensor {t:?} is not bit-identical to the baseline");
    }
}

fn manifests(store: &dyn BlobStore) -> Vec<String> {
    store.list().unwrap().into_iter().filter(|n| n.ends_with(".manifest")).collect()
}

#[test]
fn clean_run_persists_commits_and_respects_retention() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let store: Arc<MemStore> = Arc::new(MemStore::default());
    let durable = DurableOptions::new(store.clone());
    let report = run_with_durable_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &durable,
        &mut caches,
    )
    .expect("clean durable run");
    assert!(report.crashed.is_none());
    assert_eq!(report.resumed_from, None, "nothing on disk to resume from");
    assert!(report.rejected.is_empty());
    assert!(report.written >= 3, "expected several durable commits, got {}", report.written);
    assert!(report.written_bytes > 0);
    assert!(report.gc_removed > 0, "retention must have pruned superseded checkpoints");
    // Retention holds: only the newest `retain` manifests survive the run.
    assert_eq!(manifests(&*store).len(), durable.retain);

    let mut sf = Vec::new();
    for (t, v) in &full_feeds {
        sf.extend(report.sharded.scatter(*t, v).unwrap());
    }
    let plain = run_with_options(&report.sharded, &sf, &RunOptions::default())
        .expect("plain baseline");
    assert_bit_identical(&report.output.values, &plain.values);
}

#[test]
fn crash_after_commit_resumes_from_that_checkpoint() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let durable = DurableOptions {
        crash: Some(CrashPoint::AfterCommit(2)),
        ..DurableOptions::new(Arc::new(MemStore::default()))
    };
    let report = run_with_durable_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &durable,
        &mut caches,
    )
    .expect("crash-restart run");
    assert!(report.crashed.is_some(), "the first incarnation must have died");
    assert_eq!(report.resumed_from, Some(2), "checkpoint 2 committed before the crash");
    assert!(report.rejected.is_empty(), "nothing was corrupt: {:?}", report.rejected);
    assert!(report.restore_bytes > 0);
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn crash_before_commit_falls_back_to_previous_checkpoint() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let durable = DurableOptions {
        crash: Some(CrashPoint::BeforeCommit(2)),
        ..DurableOptions::new(Arc::new(MemStore::default()))
    };
    let report = run_with_durable_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &durable,
        &mut caches,
    )
    .expect("crash-restart run");
    // Checkpoint 2's shards hit the disk but its manifest — the commit
    // point — never did: the orphans are invisible, not "rejected".
    assert_eq!(report.resumed_from, Some(1));
    assert!(report.rejected.is_empty(), "orphan shards are not candidates: {:?}", report.rejected);
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn crash_before_first_commit_restarts_from_scratch() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let durable = DurableOptions {
        crash: Some(CrashPoint::BeforeCommit(1)),
        ..DurableOptions::new(Arc::new(MemStore::default()))
    };
    let report = run_with_durable_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &durable,
        &mut caches,
    )
    .expect("crash-restart run");
    assert_eq!(report.resumed_from, None, "no checkpoint ever committed");
    assert!(report.snapshot.is_none());
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn restart_at_a_different_width_is_bit_identical() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let mut caches = SearchCaches::default();
    // Shrink 4 → 2 and grow 2 → 4: the durable checkpoint stores full
    // tensors keyed by original ids, so the restart reshards either way.
    for (before, after) in [(4usize, 2usize), (2, 4)] {
        let part = PartitionOptions { workers: before, ..Default::default() };
        let durable = DurableOptions {
            crash: Some(CrashPoint::AfterCommit(2)),
            restart_workers: Some(after),
            ..DurableOptions::new(Arc::new(MemStore::default()))
        };
        let report = run_with_durable_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &checkpointed(&m.graph, FaultPlan::none()),
            &durable,
            &mut caches,
        )
        .unwrap_or_else(|e| panic!("{before}->{after}: crash-restart run failed: {e}"));
        assert_eq!(report.width, after, "{before}->{after}: restarted at the new width");
        assert_eq!(report.sharded.workers, after);
        assert_eq!(report.resumed_from, Some(2));
        assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
    }
}

/// One end-to-end scenario per disk-fault family: the doomed incarnation's
/// write of checkpoint 2 is corrupted, the process dies right after that
/// commit, and recovery must detect the corruption with the right typed
/// reason, fall back (to checkpoint 1, or to 2 itself when only a forged
/// newer manifest is bogus), and still finish bit-identical.
#[test]
fn every_disk_fault_family_is_detected_and_recovered_exactly() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    struct Case {
        fault: DiskFault,
        expect_resume: usize,
        expect_rejected_ckpt: u64,
        check: fn(&RejectReason) -> bool,
        label: &'static str,
    }
    let cases = [
        Case {
            fault: DiskFault::TornWrite { ckpt: 2, shard: 0, keep: 9 },
            expect_resume: 1,
            expect_rejected_ckpt: 2,
            check: |r| matches!(r, RejectReason::SizeMismatch { .. }),
            label: "torn-write",
        },
        Case {
            fault: DiskFault::BitFlip { ckpt: 2, shard: 0, bit: 123 },
            expect_resume: 1,
            expect_rejected_ckpt: 2,
            check: |r| matches!(r, RejectReason::ShardCorrupt { .. }),
            label: "bit-flip",
        },
        Case {
            fault: DiskFault::MissingShard { ckpt: 2, shard: 1 },
            expect_resume: 1,
            expect_rejected_ckpt: 2,
            check: |r| matches!(r, RejectReason::MissingShard { .. }),
            label: "missing-shard",
        },
        Case {
            // The manifest committed but a shard it names vanished later.
            fault: DiskFault::StaleManifest { ckpt: 2 },
            expect_resume: 1,
            expect_rejected_ckpt: 2,
            check: |r| matches!(r, RejectReason::MissingShard { .. }),
            label: "stale-manifest",
        },
        Case {
            // A forged copy of checkpoint 2's manifest under ordinal 3:
            // recovery must reject the impostor and resume from the real 2.
            fault: DiskFault::DuplicateManifest { ckpt: 2 },
            expect_resume: 2,
            expect_rejected_ckpt: 3,
            check: |r| matches!(r, RejectReason::IdMismatch { name: 3, body: 2 }),
            label: "duplicate-manifest",
        },
    ];
    for case in cases {
        let durable = DurableOptions {
            crash: Some(CrashPoint::AfterCommit(2)),
            ..DurableOptions::new(Arc::new(MemStore::default()))
        };
        let report = run_with_durable_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &checkpointed(&m.graph, FaultPlan::none().with_disk(case.fault)),
            &durable,
            &mut caches,
        )
        .unwrap_or_else(|e| panic!("{}: crash-restart run failed: {e}", case.label));
        assert_eq!(
            report.resumed_from,
            Some(case.expect_resume),
            "{}: wrong resume checkpoint",
            case.label
        );
        assert_eq!(report.rejected.len(), 1, "{}: exactly one candidate rejected", case.label);
        assert_eq!(report.rejected[0].ckpt, case.expect_rejected_ckpt, "{}", case.label);
        assert!(
            (case.check)(&report.rejected[0].reason),
            "{}: wrong rejection reason: {}",
            case.label,
            report.rejected[0].reason
        );
        assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
    }
}

#[test]
fn dir_store_survives_a_crash_through_the_real_filesystem() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 3, ..Default::default() };
    let mut caches = SearchCaches::default();
    let root = std::env::temp_dir()
        .join(format!("tofu-durable-test-{}-dirstore", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(DirStore::open(&root).expect("open DirStore"));
    let durable = DurableOptions {
        crash: Some(CrashPoint::AfterCommit(2)),
        ..DurableOptions::new(store)
    };
    let report = run_with_durable_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &durable,
        &mut caches,
    )
    .expect("crash-restart through DirStore");
    assert_eq!(report.resumed_from, Some(2));
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn misconfiguration_is_rejected_up_front() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let invalid = |r: Result<DurableReport, RuntimeError>, what: &str| {
        match r {
            Err(RuntimeError::InvalidOptions(_)) => {}
            other => panic!("{what}: expected InvalidOptions, got {other:?}"),
        }
    };

    // No checkpoint cadence: nothing to persist.
    invalid(
        run_with_durable_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &RunOptions::default(),
            &DurableOptions::new(Arc::new(MemStore::default())),
            &mut caches,
        ),
        "no checkpoint policy",
    );

    // Sharded-step barriers are plan-dependent; durable restart reshards.
    invalid(
        run_with_durable_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &RunOptions { checkpoint: Some(CheckpointPolicy::every(5)), ..Default::default() },
            &DurableOptions::new(Arc::new(MemStore::default())),
            &mut caches,
        ),
        "sharded-step barriers",
    );

    // A crash point past the last barrier: the run would complete.
    invalid(
        run_with_durable_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &checkpointed(&m.graph, FaultPlan::none()),
            &DurableOptions {
                crash: Some(CrashPoint::AfterCommit(1000)),
                ..DurableOptions::new(Arc::new(MemStore::default()))
            },
            &mut caches,
        ),
        "unreachable crash point",
    );

    // Zero restart width.
    invalid(
        run_with_durable_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &checkpointed(&m.graph, FaultPlan::none()),
            &DurableOptions {
                restart_workers: Some(0),
                ..DurableOptions::new(Arc::new(MemStore::default()))
            },
            &mut caches,
        ),
        "zero restart width",
    );
}

#[test]
fn plain_runs_reject_disk_faults() {
    // Disk faults target the durable store; a plain in-memory run has no
    // store to inject them into and must refuse instead of ignoring them.
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 2, ..Default::default() };
    let mut caches = SearchCaches::default();
    let sharded = {
        let plan = tofu_core::partition_cached(&m.graph, &part, &mut caches, None).unwrap();
        tofu_core::generate(&m.graph, &plan, &tofu_core::GenOptions::default()).unwrap()
    };
    let mut sf = Vec::new();
    for (t, v) in &full_feeds {
        sf.extend(sharded.scatter(*t, v).unwrap());
    }
    let opts = checkpointed(
        &m.graph,
        FaultPlan::none().with_disk(DiskFault::MissingShard { ckpt: 1, shard: 0 }),
    );
    match run_with_options(&sharded, &sf, &opts) {
        Err(RuntimeError::InvalidOptions(m)) => {
            assert!(m.contains("durable"), "message should point at the durable path: {m}")
        }
        other => panic!("expected InvalidOptions, got {other:?}"),
    }
}
