//! Deterministic random tensor construction for tests and examples.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{Shape, Tensor};

/// The global seed offset mixed into every [`Tensor::random`] call.
///
/// Reads the `TOFU_SEED` environment variable once (first use wins); unset or
/// unparsable values fall back to `0`, which leaves historical streams
/// untouched. Setting `TOFU_SEED=n` shifts every random tensor in the
/// process deterministically, so a concurrency test that only fails for some
/// data can be replayed bit-for-bit (`TOFU_SEED=7 cargo test ...`).
pub fn global_seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("TOFU_SEED").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(0)
    })
}

impl Tensor {
    /// Creates a tensor with elements drawn uniformly from `[-scale, scale)`
    /// using a fixed seed, so validation runs are reproducible.
    ///
    /// The effective stream is `seed ⊕ TOFU_SEED` (see [`global_seed`]): with
    /// the environment variable unset the historical streams are unchanged,
    /// and with it set the whole process shifts to a new deterministic draw.
    pub fn random(shape: Shape, seed: u64, scale: f32) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed ^ global_seed().rotate_left(17));
        let data = (0..shape.volume()).map(|_| rng.gen_range(-scale..scale)).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Tensor::random(Shape::new(vec![4, 4]), 1, 1.0);
        let b = Tensor::random(Shape::new(vec![4, 4]), 1, 1.0);
        let c = Tensor::random(Shape::new(vec![4, 4]), 2, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_respects_scale() {
        let t = Tensor::random(Shape::new(vec![100]), 3, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn global_seed_is_stable_within_a_process() {
        assert_eq!(global_seed(), global_seed());
    }
}
