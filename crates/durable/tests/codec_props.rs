//! Property tests for the shard and manifest codecs: encode → decode is a
//! byte-exact round trip, and any random truncation or bit flip either
//! leaves decoding byte-identical (impossible once the input actually
//! changed) or yields a typed error — never a panic, never silent
//! acceptance of corrupt bytes.

use proptest::prelude::*;
use tofu_durable::codec::{
    decode_shard, encode_shard, parse_manifest_name, parse_shard_name, shard_name, Manifest,
    ShardEntry, FORMAT_VERSION,
};
use tofu_durable::fnv1a64;
use tofu_tensor::{Shape, Tensor};

fn tensor_from(dims: &[usize], seed: u64) -> Tensor {
    let volume: usize = dims.iter().product();
    let data: Vec<f32> = (0..volume)
        .map(|i| {
            let x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64);
            (x % 2003) as f32 / 17.0 - 50.0
        })
        .collect();
    Tensor::from_vec(Shape::new(dims.to_vec()), data).unwrap()
}

fn manifest_from(ckpt: u64, every: u64, sums: &[u64]) -> Manifest {
    Manifest {
        version: FORMAT_VERSION,
        ckpt,
        every,
        shards: sums
            .iter()
            .enumerate()
            .map(|(i, &sum)| ShardEntry {
                tensor: i as u64 * 2,
                file: shard_name(ckpt, i as u64 * 2),
                bytes: 64 + sum % 4096,
                checksum: sum,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Shard encode → decode reproduces the tensor exactly (bit-for-bit)
    /// and re-encoding reproduces the original bytes.
    #[test]
    fn shard_round_trip(
        dims in prop::collection::vec(1usize..5, 1..4),
        tensor in 0u64..1_000_000,
        seed in 0u64..1_000_000_000,
    ) {
        let t = tensor_from(&dims, seed);
        let blob = encode_shard(tensor, &t);
        let (id, back) = decode_shard(&blob).unwrap();
        prop_assert_eq!(id, tensor);
        prop_assert_eq!(back.shape().dims(), t.shape().dims());
        let same = back
            .data()
            .iter()
            .zip(t.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        prop_assert!(same);
        prop_assert_eq!(encode_shard(id, &back), blob);
    }

    /// Any strict truncation of a shard blob decodes to a typed error —
    /// never a panic, never a wrong tensor.
    #[test]
    fn shard_truncation_is_typed_error(
        dims in prop::collection::vec(1usize..5, 1..4),
        seed in 0u64..1_000_000_000,
        cut in 0usize..1_000_000,
    ) {
        let t = tensor_from(&dims, seed);
        let blob = encode_shard(7, &t);
        let cut = cut % blob.len(); // strictly shorter than the original
        prop_assert!(decode_shard(&blob[..cut]).is_err());
    }

    /// Any single-bit flip of a shard blob either decodes byte-identically
    /// (impossible when the bytes changed, but stated as the contract) or
    /// yields a typed error. It must never silently return a tensor from
    /// corrupted bytes.
    #[test]
    fn shard_bit_flip_detected(
        dims in prop::collection::vec(1usize..5, 1..4),
        seed in 0u64..1_000_000_000,
        bit in 0u64..100_000_000,
    ) {
        let t = tensor_from(&dims, seed);
        let blob = encode_shard(7, &t);
        let mut bad = blob.clone();
        let i = (bit % (bad.len() as u64 * 8)) as usize;
        bad[i / 8] ^= 1 << (i % 8);
        match decode_shard(&bad) {
            Err(_) => {}
            Ok((id, back)) => {
                // Acceptance is only legal if re-encoding reproduces the
                // exact (mutated) input — i.e. the decode was lossless.
                prop_assert_eq!(encode_shard(id, &back), bad);
            }
        }
    }

    /// Manifest encode → decode is the identity, independent of the input
    /// shard order (encoding canonicalizes by tensor id).
    #[test]
    fn manifest_round_trip(
        ckpt in 0u64..100_000,
        every in 1u64..1_000,
        sums in prop::collection::vec(0u64..u64::MAX, 0..12),
    ) {
        let m = manifest_from(ckpt, every, &sums);
        let back = Manifest::decode(&m.encode()).unwrap();
        prop_assert_eq!(back, m);
    }

    /// Truncating or bit-flipping a manifest blob never panics: decode
    /// either returns the original manifest byte-identically or a typed
    /// error.
    #[test]
    fn manifest_corruption_is_typed_error(
        ckpt in 0u64..100_000,
        sums in prop::collection::vec(0u64..u64::MAX, 0..8),
        cut in 0usize..1_000_000,
        bit in 0u64..100_000_000,
    ) {
        let m = manifest_from(ckpt, 4, &sums);
        let blob = m.encode();
        // Strict truncation must fail (the body checksum covers all of it).
        let cut = cut % blob.len();
        prop_assert!(Manifest::decode(&blob[..cut]).is_err());
        // A bit flip must fail or round-trip the mutated bytes exactly.
        let mut bad = blob.clone();
        let i = (bit % (bad.len() as u64 * 8)) as usize;
        bad[i / 8] ^= 1 << (i % 8);
        match Manifest::decode(&bad) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(back.encode(), bad),
        }
    }

    /// Blob names round-trip through their parsers, including ordinals
    /// wider than the zero-padded field.
    #[test]
    fn names_round_trip(ckpt in 0u64..10_000_000_000, tensor in 0u64..100_000_000) {
        use tofu_durable::codec::manifest_name;
        prop_assert_eq!(parse_manifest_name(&manifest_name(ckpt)), Some(ckpt));
        prop_assert_eq!(parse_shard_name(&shard_name(ckpt, tensor)), Some(ckpt));
    }
}

/// NaN and infinity payloads survive the codec bit-exactly — durability
/// must not launder poison values into something the poison guard misses.
#[test]
fn special_values_round_trip_bit_exact() {
    let vals = vec![
        f32::NAN,
        -f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0,
        f32::MIN_POSITIVE / 2.0, // subnormal
    ];
    let t = Tensor::from_vec(Shape::new(vec![vals.len()]), vals.clone()).unwrap();
    let (_, back) = decode_shard(&encode_shard(3, &t)).unwrap();
    for (a, b) in back.data().iter().zip(&vals) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Truncating exactly at the checksum boundary (a torn write that kept the
/// whole payload but lost the trailer) is still a typed error.
#[test]
fn missing_trailer_is_error() {
    let t = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, 2.0]).unwrap();
    let blob = encode_shard(1, &t);
    assert!(decode_shard(&blob[..blob.len() - 8]).is_err());
    assert!(decode_shard(&blob[..blob.len() - 1]).is_err());
    assert!(decode_shard(&[]).is_err());
}

/// The FNV-1a implementation matches the published test vectors.
#[test]
fn fnv_vectors() {
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
}
