//! Elastic degraded-mode recovery tests: permanent device loss must shrink
//! the worker set, reshard the last consistent checkpoint, and finish with
//! output bit-identical to an undisturbed run at the surviving width resumed
//! from the same snapshot — and exhausting the degrade policy must end in a
//! typed `Unrecoverable`, never a hang.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use tofu_core::{PartitionOptions, SearchCaches};
use tofu_graph::{Graph, TensorId, TensorKind};
use tofu_models::{mlp, MlpConfig};
use tofu_runtime::{
    resume_from_snapshot, run_with_elastic_recovery, run_with_options, CheckpointPolicy,
    ElasticPolicy, ElasticReport, Fault, FaultPlan, RecoveryOptions, RunOptions, RuntimeError,
};
use tofu_tensor::Tensor;

/// Batch 840 = lcm(1..8): a feasible split exists at every width the ladder
/// can reach from 8 workers, including the primes 7 and 5.
fn model() -> tofu_models::BuiltModel {
    mlp(&MlpConfig { batch: 840, dims: vec![16, 16], classes: 8, with_updates: true }).unwrap()
}

fn feeds(g: &Graph) -> Vec<(TensorId, Tensor)> {
    let mut out = Vec::new();
    for t in g.tensor_ids() {
        let meta = g.tensor(t);
        if meta.kind == TensorKind::Intermediate {
            continue;
        }
        let v = if meta.name == "labels" {
            let b = meta.shape.dim(0);
            Tensor::from_vec(meta.shape.clone(), (0..b).map(|i| (i % 3) as f32).collect())
                .unwrap()
        } else {
            Tensor::random(meta.shape.clone(), t.0 as u64 + 1, 0.5)
        };
        out.push((t, v));
    }
    out
}

fn checkpointed(g: &Graph, faults: FaultPlan) -> RunOptions {
    RunOptions {
        faults,
        checkpoint: Some(CheckpointPolicy::every_original((g.num_nodes() / 6).max(1))),
        ..Default::default()
    }
}

fn elastic_recovery(max_attempts: usize) -> RecoveryOptions {
    RecoveryOptions {
        max_attempts,
        backoff: Duration::ZERO,
        elastic: Some(ElasticPolicy::default()),
        ..Default::default()
    }
}

/// The spec's baseline: an undisturbed run at the surviving width resumed
/// from the equivalent checkpoint cut (or from scratch when the ladder
/// carried no checkpoint across the shrink).
fn baseline_values(
    report: &ElasticReport,
    full_feeds: &[(TensorId, Tensor)],
) -> BTreeMap<TensorId, Tensor> {
    let clean = RunOptions::default();
    match &report.snapshot {
        Some(snap) => resume_from_snapshot(&report.sharded, &[], &clean, snap)
            .expect("baseline resume")
            .values,
        None => {
            let mut sf = Vec::new();
            for (t, v) in full_feeds {
                sf.extend(report.sharded.scatter(*t, v).unwrap());
            }
            run_with_options(&report.sharded, &sf, &clean).expect("baseline run").values
        }
    }
}

fn assert_bit_identical(got: &BTreeMap<TensorId, Tensor>, want: &BTreeMap<TensorId, Tensor>) {
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "degraded run holds different tensors"
    );
    for (t, w) in want {
        let g = &got[t];
        assert_eq!(g.shape(), w.shape(), "tensor {t:?} changed shape");
        let gb: Vec<u32> = g.data().iter().map(|x| x.to_bits()).collect();
        let wb: Vec<u32> = w.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, wb, "tensor {t:?} is not bit-identical to the baseline");
    }
}

#[test]
fn kill_one_of_eight_shrinks_and_matches_baseline_bit_for_bit() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();
    // Early / mid / late loss relative to the victim's full-width schedule;
    // one warm cache across the loop, like a long-lived job would hold.
    for frac in [0usize, 1, 2] {
        let opts = checkpointed(
            &m.graph,
            FaultPlan::single_permanent(Fault::Kill { worker: 3, pos: frac * 40 }),
        );
        let report = run_with_elastic_recovery(
            &m.graph,
            &full_feeds,
            &part,
            &opts,
            &elastic_recovery(1),
            &mut caches,
        )
        .unwrap_or_else(|e| panic!("kill@{frac}: elastic recovery failed: {e}"));
        assert_eq!(report.widths, vec![8, 7], "kill@{frac}: one shrink");
        assert_eq!(report.lost, vec![3], "kill@{frac}: physical device 3 lost");
        assert_eq!(report.devices, vec![0, 1, 2, 4, 5, 6, 7], "kill@{frac}: survivors");
        assert_eq!(report.plan.workers, 7);
        assert!(report.history.iter().any(|a| a.ok), "kill@{frac}: final attempt succeeded");
        let baseline = baseline_values(&report, &full_feeds);
        assert_bit_identical(&report.output.values, &baseline);
    }
}

#[test]
fn transient_fault_recovers_at_full_width_without_shrinking() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let mut caches = SearchCaches::default();
    let healthy = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &elastic_recovery(1),
        &mut caches,
    )
    .expect("healthy elastic run");
    let report = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::single(Fault::Kill { worker: 1, pos: 30 })),
        &elastic_recovery(2),
        &mut caches,
    )
    .expect("transient fault must not need a shrink");
    assert_eq!(report.widths, vec![4], "no shrink happened");
    assert!(report.lost.is_empty());
    assert_eq!(report.attempts, 2, "one failure, one retry");
    assert_bit_identical(&report.output.values, &healthy.output.values);
}

#[test]
fn multiple_permanent_losses_walk_the_ladder_through_prime_widths() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 8, ..Default::default() };
    let mut caches = SearchCaches::default();

    // Two losses: 8 → 7 → 6.
    let two = checkpointed(
        &m.graph,
        FaultPlan::none()
            .with_permanent(Fault::Kill { worker: 1, pos: 25 })
            .with_permanent(Fault::Kill { worker: 5, pos: 60 }),
    );
    let report =
        run_with_elastic_recovery(&m.graph, &full_feeds, &part, &two, &elastic_recovery(1), &mut caches)
            .expect("two losses survive");
    assert_eq!(report.widths, vec![8, 7, 6]);
    assert_eq!(
        report.lost.iter().collect::<BTreeSet<_>>(),
        [1usize, 5].iter().collect::<BTreeSet<_>>()
    );
    assert_eq!(report.devices, vec![0, 2, 3, 4, 6, 7]);
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));

    // Four losses: 8 → 7 → 6 → 5 → 4, crossing both primes.
    let four = checkpointed(
        &m.graph,
        FaultPlan::none()
            .with_permanent(Fault::Kill { worker: 0, pos: 10 })
            .with_permanent(Fault::Kill { worker: 2, pos: 35 })
            .with_permanent(Fault::Kill { worker: 4, pos: 55 })
            .with_permanent(Fault::Kill { worker: 6, pos: 80 }),
    );
    let report =
        run_with_elastic_recovery(&m.graph, &full_feeds, &part, &four, &elastic_recovery(1), &mut caches)
            .expect("four losses survive");
    assert_eq!(report.widths, vec![8, 7, 6, 5, 4]);
    assert_eq!(
        report.lost.iter().collect::<BTreeSet<_>>(),
        [0usize, 2, 4, 6].iter().collect::<BTreeSet<_>>()
    );
    assert_eq!(report.devices, vec![1, 3, 5, 7]);
    assert_bit_identical(&report.output.values, &baseline_values(&report, &full_feeds));
}

#[test]
fn exhausted_policy_surfaces_typed_unrecoverable() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 2, ..Default::default() };
    let kill = FaultPlan::single_permanent(Fault::Kill { worker: 1, pos: 5 });

    // min_workers forbids dropping below the current width.
    let recovery = RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: Some(ElasticPolicy { min_workers: 2, ..Default::default() }),
        ..Default::default()
    };
    let mut caches = SearchCaches::default();
    let err = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, kill.clone()),
        &recovery,
        &mut caches,
    )
    .unwrap_err();
    match err {
        RuntimeError::Unrecoverable { ref lost, ref widths, .. } => {
            assert_eq!(lost, &vec![1], "names the lost device");
            assert_eq!(widths, &vec![2], "names the attempted width");
        }
        other => panic!("expected Unrecoverable, got {other}"),
    }

    // max_shrink_steps: 0 forbids any shrink at all.
    let recovery = RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: Some(ElasticPolicy { max_shrink_steps: 0, ..Default::default() }),
        ..Default::default()
    };
    let part4 = PartitionOptions { workers: 4, ..Default::default() };
    let err = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part4,
        &checkpointed(&m.graph, FaultPlan::single_permanent(Fault::Kill { worker: 2, pos: 5 })),
        &recovery,
        &mut caches,
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::Unrecoverable { ref lost, .. } if lost == &vec![2]),
        "got {err}"
    );

    // A per-device budget no plan can satisfy is refused up front.
    let recovery = RecoveryOptions {
        max_attempts: 1,
        backoff: Duration::ZERO,
        elastic: Some(ElasticPolicy { per_device_budget: Some(1), ..Default::default() }),
        ..Default::default()
    };
    let err = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::none()),
        &recovery,
        &mut caches,
    )
    .unwrap_err();
    match err {
        RuntimeError::Unrecoverable { ref cause, .. } => {
            assert!(matches!(**cause, RuntimeError::Pool { .. }), "budget breach names the pool")
        }
        other => panic!("expected Unrecoverable over budget, got {other}"),
    }
}

#[test]
fn without_degrade_policy_permanent_loss_is_a_plain_failure() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 2, ..Default::default() };
    let recovery = RecoveryOptions {
        max_attempts: 2,
        backoff: Duration::ZERO,
        elastic: None,
        ..Default::default()
    };
    let mut caches = SearchCaches::default();
    let err = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &checkpointed(&m.graph, FaultPlan::single_permanent(Fault::Kill { worker: 0, pos: 3 })),
        &recovery,
        &mut caches,
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::Failed(ref f) if f.worker == 0), "got {err}");
}

#[test]
fn elastic_requires_plan_independent_barriers() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 2, ..Default::default() };
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::every(4)), // sharded-step barriers
        ..Default::default()
    };
    let mut caches = SearchCaches::default();
    let err = run_with_elastic_recovery(
        &m.graph,
        &full_feeds,
        &part,
        &opts,
        &elastic_recovery(1),
        &mut caches,
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidOptions(_)), "got {err}");
}

#[test]
fn ladder_is_fully_instrumented() {
    let m = model();
    let full_feeds = feeds(&m.graph);
    let part = PartitionOptions { workers: 4, ..Default::default() };
    let collector = tofu_obs::Collector::new();
    let mut opts = checkpointed(
        &m.graph,
        FaultPlan::single_permanent(Fault::Kill { worker: 2, pos: 20 }),
    );
    opts.collector = Some(collector.clone());
    let mut caches = SearchCaches::default();
    run_with_elastic_recovery(&m.graph, &full_feeds, &part, &opts, &elastic_recovery(1), &mut caches)
        .expect("one loss survives");
    let names: Vec<String> = collector.events().into_iter().map(|e| e.name).collect();
    for want in [
        "elastic replan (4 workers)",
        "elastic replan (3 workers)",
        "device 2 lost (permanent)",
        "elastic/surviving_workers",
    ] {
        assert!(names.iter().any(|n| n == want), "missing event {want:?} in {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("reshard checkpoint")),
        "missing reshard span in {names:?}"
    );
    let totals = collector.totals();
    assert_eq!(totals.get("elastic/replans").copied(), Some(1.0), "one shrink replan counted");
    assert!(totals.get("elastic/reshard_bytes").copied().unwrap_or(0.0) > 0.0);
}
