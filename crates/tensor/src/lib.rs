//! Dense tensor substrate for the Tofu reproduction.
//!
//! This crate provides the numeric foundation that the rest of the workspace
//! builds on: [`Shape`] arithmetic, a row-major dense [`Tensor`] of `f32`
//! values, and naive-but-correct CPU kernels for every operator registered in
//! `tofu-graph` (element-wise math, matrix multiplication, 1-D and 2-D
//! convolution, pooling, reductions, softmax, and the slicing/concatenation
//! primitives that partitioned graphs use to move data between workers).
//!
//! The kernels exist to *validate* partitioned execution — Tofu's claim is
//! that a partitioned dataflow graph computes exactly what the original graph
//! computes — not to be fast. Throughput numbers in the evaluation come from
//! the cost model in `tofu-sim`, never from these kernels.
//!
//! # Examples
//!
//! ```
//! use tofu_tensor::{Shape, Tensor};
//!
//! let a = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
//! let b = Tensor::full(Shape::new(vec![2, 2]), 1.0);
//! let c = a.add(&b).unwrap();
//! assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod elementwise;
mod error;
mod linalg;
mod norm;
mod random;
mod reduce;
mod shape;
mod tensor;

pub use conv::{Conv1dParams, Conv2dParams, PoolKind, PoolParams};
pub use error::TensorError;
pub use random::global_seed;
pub use reduce::ReduceKind;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
