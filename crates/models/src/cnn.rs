//! A small stride-1 CNN for exact numeric validation of partitioned
//! convolution execution (halo exchange, channel reductions, padding
//! materialization).

use tofu_graph::{autodiff, Attrs, Graph};
use tofu_tensor::Shape;

use crate::BuiltModel;

/// Configuration of the validation CNN.
#[derive(Debug, Clone, Copy)]
pub struct SmallCnnConfig {
    /// Mini-batch size.
    pub batch: usize,
    /// Input channels.
    pub channels: usize,
    /// Image side.
    pub image: usize,
    /// Convolution channels per layer.
    pub conv_channels: usize,
    /// Number of conv layers.
    pub conv_layers: usize,
    /// Classes.
    pub classes: usize,
}

impl Default for SmallCnnConfig {
    fn default() -> Self {
        SmallCnnConfig {
            batch: 4,
            channels: 2,
            image: 8,
            conv_channels: 8,
            conv_layers: 2,
            classes: 4,
        }
    }
}

/// Builds the CNN: `conv3x3(pad 1) -> relu` blocks, global average pooling,
/// a linear classifier and softmax cross-entropy, plus the backward pass.
pub fn small_cnn(cfg: &SmallCnnConfig) -> tofu_graph::Result<BuiltModel> {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new(vec![cfg.batch, cfg.channels, cfg.image, cfg.image]));
    let labels = g.add_input("labels", Shape::new(vec![cfg.batch]));
    let mut weights = Vec::new();
    let mut t = x;
    let mut cin = cfg.channels;
    for i in 0..cfg.conv_layers {
        let w = g.add_weight(
            &format!("conv{i}/w"),
            Shape::new(vec![cin, cfg.conv_channels, 3, 3]),
        );
        weights.push(w);
        t = g.add_op(
            "conv2d",
            &format!("conv{i}"),
            &[t, w],
            Attrs::new().with_int("pad", 1),
        )?;
        t = g.add_op("relu", &format!("relu{i}"), &[t], Attrs::new())?;
        cin = cfg.conv_channels;
    }
    let pooled = g.add_op("global_avg_pool", "gap", &[t], Attrs::new())?;
    let wfc = g.add_weight("fc/w", Shape::new(vec![cin, cfg.classes]));
    weights.push(wfc);
    let logits = g.add_op("matmul", "fc", &[pooled, wfc], Attrs::new())?;
    let loss = g.add_op("softmax_ce", "loss", &[logits, labels], Attrs::new())?;
    let info = autodiff::backward(&mut g, loss, &weights)?;
    let grads: Vec<_> =
        weights.iter().filter_map(|&w| info.grad(w).map(|gw| (w, gw))).collect();
    Ok(BuiltModel { graph: g, loss, weights, inputs: vec![x, labels], grads, batch: cfg.batch })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofu_graph::Executor;
    use tofu_tensor::Tensor;

    #[test]
    fn builds_and_executes() {
        let cfg = SmallCnnConfig::default();
        let m = small_cnn(&cfg).unwrap();
        let mut exec = Executor::new();
        for t in m.graph.tensor_ids() {
            let meta = m.graph.tensor(t);
            if meta.kind != tofu_graph::TensorKind::Intermediate {
                let v = if meta.name == "labels" {
                    Tensor::from_vec(
                        meta.shape.clone(),
                        (0..cfg.batch).map(|i| (i % cfg.classes) as f32).collect(),
                    )
                    .unwrap()
                } else {
                    Tensor::random(meta.shape.clone(), t.0 as u64, 0.4)
                };
                exec.feed(t, v);
            }
        }
        let out = exec.run(&m.graph).unwrap();
        let loss = out[&m.loss].data()[0];
        assert!(loss.is_finite() && loss > 0.0);
        // Every weight gradient is populated.
        for &(_, gw) in &m.grads {
            assert!(out[&gw].data().iter().any(|&v| v != 0.0));
        }
    }

    #[test]
    fn deeper_variant_builds() {
        let m = small_cnn(&SmallCnnConfig { conv_layers: 4, ..Default::default() }).unwrap();
        assert!(m.weights.len() == 5);
    }
}
