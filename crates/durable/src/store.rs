//! Blob stores: the durability boundary.
//!
//! Everything above this layer deals in named blobs; everything below it is
//! the filesystem. [`DirStore`] is the real thing — every `put` goes through
//! write-temp → fsync → atomic-rename → fsync-parent so a blob is either
//! fully present under its final name or absent, never half-written under
//! the name recovery will look for. [`MemStore`] keeps the same contract in
//! a `BTreeMap` for fast, hermetic tests.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A flat namespace of durable blobs.
///
/// Implementations must make `put` atomic (readers never observe a partial
/// blob under `name`) and durable (the data survives a process crash once
/// `put` returns). Overwrites replace the previous blob atomically.
pub trait BlobStore: Send + Sync {
    /// Atomically and durably store `bytes` under `name`.
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Read the blob named `name` in full. `NotFound` if absent.
    fn get(&self, name: &str) -> io::Result<Vec<u8>>;
    /// List all blob names, sorted ascending.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Delete the blob named `name`. Deleting an absent blob is not an error.
    fn delete(&self, name: &str) -> io::Result<()>;
}

fn check_name(name: &str) -> io::Result<()> {
    let ok = !name.is_empty()
        && !name.starts_with(".tmp.")
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(io::ErrorKind::InvalidInput, format!("invalid blob name {name:?}")))
    }
}

/// A directory-backed [`BlobStore`] with atomic, durable writes.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) the directory at `root` as a blob store.
    pub fn open(root: impl AsRef<Path>) -> io::Result<DirStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn sync_root(&self) -> io::Result<()> {
        // Persist the directory entry itself (the rename) — on Linux a
        // directory can be opened read-only and fsynced like a file.
        File::open(&self.root)?.sync_all()
    }
}

impl BlobStore for DirStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        check_name(name)?;
        let tmp = self.root.join(format!(".tmp.{name}"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(name))?;
        self.sync_root()
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        check_name(name)?;
        fs::read(self.root.join(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                // A crash can leave .tmp. files behind; they were never
                // committed, so they are invisible to readers.
                if !name.starts_with(".tmp.") && entry.file_type()?.is_file() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        match fs::remove_file(self.root.join(name)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

/// An in-memory [`BlobStore`] for tests: same atomic-overwrite contract,
/// no actual durability.
#[derive(Debug, Default)]
pub struct MemStore {
    blobs: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Create an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl BlobStore for MemStore {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        check_name(name)?;
        self.blobs.lock().unwrap().insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        check_name(name)?;
        self.blobs
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {name:?}")))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.blobs.lock().unwrap().keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        self.blobs.lock().unwrap().remove(name);
        Ok(())
    }
}
