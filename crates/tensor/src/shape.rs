//! Tensor shapes and index arithmetic.

use std::fmt;

use crate::{Result, TensorError};

/// The extents of a tensor along each dimension, in row-major order.
///
/// A rank-0 shape (no dimensions) denotes a scalar with volume 1.
///
/// # Examples
///
/// ```
/// use tofu_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from per-dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates a rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`; use [`Shape::try_dim`] for a fallible
    /// variant.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Returns the extent of dimension `axis`, or an error if out of range.
    pub fn try_dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange { axis, rank: self.rank() })
    }

    /// Returns the per-dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the size in bytes assuming 4-byte (`f32`) elements.
    pub fn bytes(&self) -> u64 {
        self.volume() as u64 * 4
    }

    /// Returns row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index rank or any coordinate is out of
    /// range.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.rank()).rev() {
            debug_assert!(index[axis] < self.0[axis], "index out of bounds");
            off += index[axis] * stride;
            stride *= self.0[axis];
        }
        off
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut index = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            index[axis] = offset % self.0[axis];
            offset /= self.0[axis];
        }
        index
    }

    /// Returns a shape with `axis` replaced by `extent`.
    pub fn with_dim(&self, axis: usize, extent: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let mut dims = self.0.clone();
        dims[axis] = extent;
        Ok(Shape(dims))
    }

    /// Splits `axis` into `parts` equal extents, erroring when not divisible.
    pub fn split_dim(&self, axis: usize, parts: usize) -> Result<Shape> {
        let extent = self.try_dim(axis)?;
        if parts == 0 || extent % parts != 0 {
            return Err(TensorError::Incompatible(format!(
                "cannot split extent {extent} of axis {axis} into {parts} parts"
            )));
        }
        self.with_dim(axis, extent / parts)
    }

    /// Iterates over every multi-dimensional index of this shape in row-major
    /// order.
    pub fn indices(&self) -> IndexIter {
        IndexIter { shape: self.0.clone(), next: Some(vec![0; self.rank()]), empty: self.volume() == 0 }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Row-major iterator over all indices of a [`Shape`].
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
    empty: bool,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.empty {
            return None;
        }
        let current = self.next.take()?;
        // Compute the successor index, carrying from the innermost axis.
        let mut succ = current.clone();
        let mut axis = self.shape.len();
        loop {
            if axis == 0 {
                // Overflowed past the outermost axis: iteration is complete.
                self.next = None;
                break;
            }
            axis -= 1;
            succ[axis] += 1;
            if succ[axis] < self.shape[axis] {
                self.next = Some(succ);
                break;
            }
            succ[axis] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.bytes(), 96);
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        for flat in 0..s.volume() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn index_iterator_covers_all_positions_in_order() {
        let s = Shape::new(vec![2, 3]);
        let all: Vec<_> = s.indices().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn index_iterator_empty_shape() {
        let s = Shape::new(vec![2, 0, 3]);
        assert_eq!(s.indices().count(), 0);
    }

    #[test]
    fn index_iterator_scalar_yields_one_empty_index() {
        let all: Vec<_> = Shape::scalar().indices().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn with_dim_and_split() {
        let s = Shape::new(vec![8, 6]);
        assert_eq!(s.with_dim(0, 4).unwrap(), Shape::new(vec![4, 6]));
        assert_eq!(s.split_dim(1, 2).unwrap(), Shape::new(vec![8, 3]));
        assert!(s.split_dim(1, 4).is_err());
        assert!(s.with_dim(2, 1).is_err());
    }

    #[test]
    fn try_dim_errors_out_of_range() {
        let s = Shape::new(vec![2]);
        assert_eq!(s.try_dim(0).unwrap(), 2);
        assert!(s.try_dim(1).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }
}
