//! Runtime scaling sweep: shard-parallel throughput of `tofu-runtime` at
//! 1/2/4/8 workers for an MLP and a small WResNet, written to
//! `BENCH_runtime.json` so later changes have a perf trajectory to beat.
//!
//! The numbers measure the *runtime*, not the partitioner: the partition
//! search runs once per (model, workers) outside the timed region, and the
//! run itself uses [`IntegrityLevel::Fast`] — the production configuration
//! the zero-copy transport optimizes (the fault suites exercise `Full`).
//! Worker threads only help when the host has cores to run them — the JSON
//! records `host_cpus` so a single-core container's flat curve is not
//! mistaken for a runtime regression.
//!
//! Besides wall-clock, each row records the per-op runtime overhead
//! (`us_per_op`) and the transport copy accounting
//! (`bytes_copied_per_message`, zero on the zero-copy fast path). The run
//! exits non-zero when either regresses against the committed
//! `BENCH_runtime.json`, which is read *before* being overwritten; baselines
//! that predate the columns fall back to `seconds_per_iter / nodes` and an
//! average payload size per message respectively.

use std::time::Instant;

use tofu_bench::{bench_report, feeds, write_report, Json};
use tofu_core::{generate, partition, GenOptions, PartitionOptions, ShardedGraph};
use tofu_graph::Graph;
use tofu_models::{mlp, wresnet, MlpConfig, WResNetConfig};
use tofu_obs::json::parse;
use tofu_runtime::{run_with_options, IntegrityLevel, RunOptions};

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const WARMUP: usize = 1;
const ITERS: usize = 5;
/// Per-op overhead wobbles hard on a shared single-core host — the
/// millisecond-scale MLP rows see ±30-50% run-to-run scheduling noise — so
/// wall-clock only fails above this factor. Transport regressions don't get
/// the allowance: bytes-copied-per-message is deterministic and gated
/// strictly against the baseline.
const US_PER_OP_TOLERANCE: f64 = 2.0;

struct Row {
    model: &'static str,
    workers: usize,
    seconds_per_iter: f64,
    samples_per_sec: f64,
    comm_bytes: u64,
    nodes: usize,
    us_per_op: f64,
    messages: u64,
    transport_copy_bytes: u64,
    bytes_copied_per_message: f64,
    exact: bool,
}

fn measure(model: &'static str, g: &Graph, batch: usize, workers: usize) -> Option<Row> {
    let plan = match partition(g, &PartitionOptions { workers, ..Default::default() }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{model} w={workers}: partition failed: {e}");
            return None;
        }
    };
    let sharded: ShardedGraph = match generate(g, &plan, &GenOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{model} w={workers}: generate failed: {e}");
            return None;
        }
    };
    let mut shard_feeds = Vec::new();
    for (t, v) in feeds(g) {
        shard_feeds.extend(sharded.scatter(t, &v).expect("scatter"));
    }
    let opts = RunOptions { integrity: IntegrityLevel::Fast, ..Default::default() };
    let mut best = f64::INFINITY;
    let mut comm_bytes = 0;
    let mut messages = 0;
    let mut copied = 0;
    for i in 0..WARMUP + ITERS {
        let t0 = Instant::now();
        let out = run_with_options(&sharded, &shard_feeds, &opts).expect("runtime run");
        let dt = t0.elapsed().as_secs_f64();
        comm_bytes = out.trace.comm_bytes();
        messages = out.trace.links.iter().map(|l| l.messages).sum();
        copied = out.trace.workers.iter().map(|w| w.transport_copy_bytes).sum();
        if i >= WARMUP {
            best = best.min(dt);
        }
    }
    let nodes = sharded.graph.num_nodes();
    Some(Row {
        model,
        workers,
        seconds_per_iter: best,
        samples_per_sec: batch as f64 / best,
        comm_bytes,
        nodes,
        us_per_op: best / nodes as f64 * 1e6,
        messages,
        transport_copy_bytes: copied,
        bytes_copied_per_message: if messages > 0 { copied as f64 / messages as f64 } else { 0.0 },
        exact: sharded.exact,
    })
}

/// The committed baseline for `(model, workers)`, as
/// `(us_per_op, bytes_copied_per_message)`. Baselines written before these
/// columns existed derive them: per-op overhead from `seconds_per_iter /
/// nodes`, and per-message copy bytes from the average payload size (the old
/// transport copied every payload into an owned `Vec` at send).
fn baseline(doc: &Json, model: &str, workers: usize, messages: u64) -> Option<(f64, f64)> {
    let rows = doc.get("results")?.as_array()?;
    let row = rows.iter().find(|r| {
        r.get("model").and_then(Json::as_str) == Some(model)
            && r.get("workers").and_then(Json::as_f64) == Some(workers as f64)
    })?;
    let us_per_op = match row.get("us_per_op").and_then(Json::as_f64) {
        Some(v) => v,
        None => {
            let s = row.get("seconds_per_iter").and_then(Json::as_f64)?;
            let n = row.get("nodes").and_then(Json::as_f64)?;
            s / n * 1e6
        }
    };
    let copied = match row.get("bytes_copied_per_message").and_then(Json::as_f64) {
        Some(v) => v,
        None => {
            let comm = row.get("comm_bytes").and_then(Json::as_f64)?;
            if messages > 0 {
                comm / messages as f64
            } else {
                0.0
            }
        }
    };
    Some((us_per_op, copied))
}

fn main() {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let committed = std::fs::read_to_string("BENCH_runtime.json")
        .ok()
        .and_then(|s| parse(&s).ok());
    let mlp_model = mlp(&MlpConfig { batch: 64, dims: vec![256, 256], classes: 64, with_updates: true })
        .expect("mlp builds");
    let wres_model = wresnet(&WResNetConfig {
        layers: 50,
        width: 1,
        batch: 8,
        image: 16,
        classes: 8,
        with_updates: true,
    })
    .expect("wresnet builds");

    let mut rows: Vec<Row> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    for (name, model, batch) in [
        ("mlp-256x2 (batch 64)", &mlp_model, 64usize),
        ("wresnet-50-1 (batch 8)", &wres_model, 8),
    ] {
        println!("\n{name} — best of {ITERS} iterations after {WARMUP} warmup");
        println!(
            "{:<8} {:>12} {:>14} {:>12} {:>7} {:>10} {:>9} {:>12} {:>6}",
            "workers", "s/iter", "samples/s", "comm bytes", "nodes", "us/op", "messages", "copied B/msg", "exact"
        );
        println!("{}", "-".repeat(98));
        for workers in WORKERS {
            if let Some(r) = measure(name, &model.graph, batch, workers) {
                println!(
                    "{:<8} {:>12.6} {:>14.1} {:>12} {:>7} {:>10.3} {:>9} {:>12.1} {:>6}",
                    r.workers,
                    r.seconds_per_iter,
                    r.samples_per_sec,
                    r.comm_bytes,
                    r.nodes,
                    r.us_per_op,
                    r.messages,
                    r.bytes_copied_per_message,
                    r.exact
                );
                if let Some((base_us, base_copied)) =
                    committed.as_ref().and_then(|d| baseline(d, r.model, r.workers, r.messages))
                {
                    if r.us_per_op > base_us * US_PER_OP_TOLERANCE {
                        regressions.push(format!(
                            "{} w={}: us_per_op {:.3} exceeds baseline {:.3} (x{:.2} allowed)",
                            r.model, r.workers, r.us_per_op, base_us, US_PER_OP_TOLERANCE
                        ));
                    }
                    if r.bytes_copied_per_message > base_copied {
                        regressions.push(format!(
                            "{} w={}: bytes_copied_per_message {:.1} exceeds baseline {:.1}",
                            r.model, r.workers, r.bytes_copied_per_message, base_copied
                        ));
                    }
                }
                rows.push(r);
            }
        }
    }

    let results = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("model", Json::from(r.model)),
                ("workers", Json::from(r.workers)),
                ("seconds_per_iter", Json::from(r.seconds_per_iter)),
                ("samples_per_sec", Json::from(r.samples_per_sec)),
                ("comm_bytes", Json::from(r.comm_bytes)),
                ("nodes", Json::from(r.nodes)),
                ("us_per_op", Json::from(r.us_per_op)),
                ("messages", Json::from(r.messages)),
                ("transport_copy_bytes", Json::from(r.transport_copy_bytes)),
                ("bytes_copied_per_message", Json::from(r.bytes_copied_per_message)),
                ("exact", Json::Bool(r.exact)),
            ])
        })
        .collect();
    let doc = bench_report(
        "runtime_scaling",
        vec![
            ("host_cpus", Json::from(cpus)),
            ("warmup", Json::from(WARMUP)),
            ("iters", Json::from(ITERS)),
        ],
        results,
    );
    write_report("BENCH_runtime.json", &doc);
    println!("({} rows, host_cpus={cpus})", rows.len());
    if !regressions.is_empty() {
        eprintln!("\nruntime_scaling REGRESSED vs committed BENCH_runtime.json:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
