//! Binary shard and manifest codecs with end-to-end checksums.
//!
//! A durable checkpoint is a set of *shard* blobs (one per tensor, binary)
//! plus one *manifest* blob (checksummed JSON) that names every shard and
//! records its expected size and checksum. The manifest is written last and
//! is the commit point: a checkpoint without a readable, self-consistent
//! manifest does not exist as far as recovery is concerned.
//!
//! Both codecs are designed to fail loudly. Every decode path is
//! bounds-checked and returns a typed [`CodecError`]; no input — truncated,
//! bit-flipped, or adversarial — may cause a panic or an over-allocation.

use std::fmt;

use tofu_obs::json::{parse, Json};
use tofu_tensor::{Shape, Tensor};

/// Magic prefix of the shard binary format (`TFSH` = "Tofu shard").
pub const SHARD_MAGIC: [u8; 4] = *b"TFSH";
/// Current shard/manifest format version.
pub const FORMAT_VERSION: u32 = 1;
/// Upper bound on tensor rank accepted by the decoder. Real graphs use rank
/// ≤ 4; the bound keeps a corrupt header from requesting a huge dims read.
pub const MAX_RANK: u32 = 16;

/// 64-bit FNV-1a over raw bytes — same constants as the runtime's
/// per-payload `payload_checksum`, but byte- rather than f32-oriented so it
/// covers headers and JSON text too.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed decode failure. Every corrupt input maps to exactly one of these;
/// decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the declared structure did (torn write).
    Truncated {
        /// Bytes required to finish the current field.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The magic prefix is not `TFSH`.
    BadMagic,
    /// The format version is newer than this decoder understands.
    UnsupportedVersion(u32),
    /// The declared shape is unusable (rank too large, or volume does not
    /// match the payload length implied by the blob size).
    BadShape(String),
    /// The trailing checksum does not match the bytes that precede it.
    ChecksumMismatch {
        /// Checksum recorded in the blob.
        stored: u64,
        /// Checksum recomputed over the payload actually read.
        actual: u64,
    },
    /// The manifest JSON is unreadable or structurally wrong.
    BadManifest(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated: need {need} more bytes, have {have}")
            }
            CodecError::BadMagic => write!(f, "bad magic (not a TFSH shard)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadShape(d) => write!(f, "bad shape: {d}"),
            CodecError::ChecksumMismatch { stored, actual } => {
                write!(f, "checksum mismatch: stored {stored:016x}, actual {actual:016x}")
            }
            CodecError::BadManifest(d) => write!(f, "bad manifest: {d}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(CodecError::Truncated { need: n - have, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// Encode one tensor shard.
///
/// Layout (all little-endian):
/// `TFSH | version:u32 | tensor:u64 | rank:u32 | dims:u64×rank |
///  payload:f32-bits×volume | fnv1a64 over everything before it:u64`.
pub fn encode_shard(tensor: u64, t: &Tensor) -> Vec<u8> {
    let dims = t.shape().dims();
    let mut out = Vec::with_capacity(4 + 4 + 8 + 4 + 8 * dims.len() + 4 * t.data().len() + 8);
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&tensor.to_le_bytes());
    out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode one tensor shard, validating magic, version, shape bounds, exact
/// blob length and the trailing checksum. Returns the tensor id recorded in
/// the header alongside the reconstructed tensor.
pub fn decode_shard(bytes: &[u8]) -> CodecResult<(u64, Tensor)> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != SHARD_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let tensor = r.u64()?;
    let rank = r.u32()?;
    if rank > MAX_RANK {
        return Err(CodecError::BadShape(format!("rank {rank} exceeds limit {MAX_RANK}")));
    }
    let mut dims = Vec::with_capacity(rank as usize);
    for _ in 0..rank {
        let d = r.u64()?;
        if d > u32::MAX as u64 {
            return Err(CodecError::BadShape(format!("dimension {d} out of range")));
        }
        dims.push(d as usize);
    }
    // Validate the declared volume against the bytes actually present
    // *before* allocating the payload, so a corrupt header cannot request
    // an absurd allocation.
    let remaining = bytes.len().saturating_sub(r.pos).saturating_sub(8);
    let volume: usize = dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d)).ok_or_else(
        || CodecError::BadShape("volume overflows usize".to_string()),
    )?;
    if volume.checked_mul(4) != Some(remaining) {
        return Err(CodecError::BadShape(format!(
            "volume {volume} does not match the {remaining} payload bytes present"
        )));
    }
    let payload = r.take(volume * 4)?;
    let stored = r.u64()?;
    let actual = fnv1a64(&bytes[..bytes.len() - 8]);
    if stored != actual {
        return Err(CodecError::ChecksumMismatch { stored, actual });
    }
    let mut data = Vec::with_capacity(volume);
    for c in payload.chunks_exact(4) {
        data.push(f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    }
    let t = Tensor::from_vec(Shape::new(dims), data)
        .map_err(|e| CodecError::BadShape(e.to_string()))?;
    Ok((tensor, t))
}

/// One shard as recorded in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Tensor id the shard stores.
    pub tensor: u64,
    /// Blob name of the shard.
    pub file: String,
    /// Exact encoded size in bytes.
    pub bytes: u64,
    /// `fnv1a64` over the full encoded shard blob.
    pub checksum: u64,
}

/// A decoded checkpoint manifest: the authoritative record of which shards
/// make up checkpoint `ckpt` and what each must hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version (currently always [`FORMAT_VERSION`]).
    pub version: u32,
    /// Checkpoint ordinal this manifest commits.
    pub ckpt: u64,
    /// Checkpoint cadence (original steps between barriers) the run used.
    pub every: u64,
    /// Every shard of the checkpoint, sorted by tensor id.
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    /// Encode to the on-disk form: a first line holding the 16-hex-digit
    /// FNV-1a of the JSON body, then the body itself. Shards are sorted by
    /// tensor id so the encoding is deterministic.
    pub fn encode(&self) -> Vec<u8> {
        let mut shards = self.shards.clone();
        shards.sort_by_key(|s| s.tensor);
        let body = Json::obj(vec![
            ("version", Json::Num(self.version as f64)),
            ("ckpt", Json::Num(self.ckpt as f64)),
            ("every", Json::Num(self.every as f64)),
            (
                "shards",
                Json::Arr(
                    shards
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("tensor", Json::Num(s.tensor as f64)),
                                ("file", Json::Str(s.file.clone())),
                                ("bytes", Json::Num(s.bytes as f64)),
                                ("checksum", Json::Str(format!("{:016x}", s.checksum))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_json();
        let mut out = format!("{:016x}\n", fnv1a64(body.as_bytes())).into_bytes();
        out.extend_from_slice(body.as_bytes());
        out
    }

    /// Decode and validate a manifest blob: the leading checksum line must
    /// match the body, and the body must be well-formed JSON with every
    /// required field in range.
    pub fn decode(bytes: &[u8]) -> CodecResult<Manifest> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CodecError::BadManifest(format!("not utf-8: {e}")))?;
        let (sum_line, body) = text
            .split_once('\n')
            .ok_or_else(|| CodecError::BadManifest("missing checksum line".to_string()))?;
        let stored = u64::from_str_radix(sum_line.trim(), 16)
            .map_err(|_| CodecError::BadManifest("unparseable checksum line".to_string()))?;
        let actual = fnv1a64(body.as_bytes());
        if stored != actual {
            return Err(CodecError::ChecksumMismatch { stored, actual });
        }
        let j = parse(body).map_err(CodecError::BadManifest)?;
        let version = field_u64(&j, "version")? as u32;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let ckpt = field_u64(&j, "ckpt")?;
        let every = field_u64(&j, "every")?;
        if every == 0 {
            return Err(CodecError::BadManifest("zero cadence".to_string()));
        }
        let arr = j
            .get("shards")
            .and_then(|s| s.as_array())
            .ok_or_else(|| CodecError::BadManifest("missing shards array".to_string()))?;
        let mut shards = Vec::with_capacity(arr.len());
        for s in arr {
            let file = s
                .get("file")
                .and_then(|f| f.as_str())
                .ok_or_else(|| CodecError::BadManifest("shard missing file".to_string()))?
                .to_string();
            let checksum = s
                .get("checksum")
                .and_then(|c| c.as_str())
                .and_then(|c| u64::from_str_radix(c, 16).ok())
                .ok_or_else(|| CodecError::BadManifest("shard missing checksum".to_string()))?;
            shards.push(ShardEntry {
                tensor: field_u64(s, "tensor")?,
                file,
                bytes: field_u64(s, "bytes")?,
                checksum,
            });
        }
        let sorted = shards.windows(2).all(|w| w[0].tensor < w[1].tensor);
        if !sorted {
            return Err(CodecError::BadManifest("shards not sorted by tensor id".to_string()));
        }
        Ok(Manifest { version, ckpt, every, shards })
    }
}

fn field_u64(j: &Json, name: &str) -> CodecResult<u64> {
    let v = j
        .get(name)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| CodecError::BadManifest(format!("missing numeric field {name:?}")))?;
    if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64) {
        return Err(CodecError::BadManifest(format!("field {name:?} out of range: {v}")));
    }
    Ok(v as u64)
}

/// Blob name of checkpoint `ckpt`'s manifest.
pub fn manifest_name(ckpt: u64) -> String {
    format!("ckpt-{ckpt:08}.manifest")
}

/// Blob name of the shard storing tensor `tensor` of checkpoint `ckpt`.
pub fn shard_name(ckpt: u64, tensor: u64) -> String {
    format!("ckpt-{ckpt:08}-t{tensor:07}.shard")
}

/// Parse a manifest blob name back to its checkpoint ordinal.
pub fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".manifest")?.parse().ok()
}

/// Parse a shard blob name back to its checkpoint ordinal.
pub fn parse_shard_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".shard")?;
    let (ckpt, _tensor) = rest.split_once("-t")?;
    ckpt.parse().ok()
}
